"""Command-line entry point for the experiment harness.

Runs one or more of the paper's figures (or the ablations) outside pytest and
prints the same tables the benchmarks print, optionally writing CSV::

    python -m repro.harness figure7 figure8
    python -m repro.harness --quick --csv-dir results/ all
    python -m repro.harness --list
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import re

from repro.harness import experiments
from repro.harness.config import DEFAULT_CONFIG, PAPER_SCALE_CONFIG, QUICK_CONFIG, ExperimentConfig
from repro.obs.explain import inject_explain_flows
from repro.obs.flight import FlightRecorder, maybe_dump_flight
from repro.harness.report import format_rows, rows_to_csv
from repro.obs.export import write_metrics_json, write_trace
from repro.obs.metrics import MetricsLog, install_metrics_log
from repro.obs.trace import HARNESS_PID, Tracer, install_tracer

#: Mapping from CLI experiment name to (driver, description).
EXPERIMENTS: Dict[str, tuple] = {
    "figure7": (experiments.run_figure7, "reachable view, insertion-ratio sweep"),
    "figure8": (experiments.run_figure8, "reachable view, deletion-ratio sweep"),
    "figure9": (experiments.run_figure9, "region query, insertion-ratio sweep"),
    "figure10": (experiments.run_figure10, "region query, deletion-ratio sweep"),
    "figure11": (experiments.run_figure11, "scaling links, insertions (dense vs sparse)"),
    "figure12": (experiments.run_figure12, "scaling links, deleting 20% (dense vs sparse)"),
    "figure13": (experiments.run_figure13, "scaling query-processor nodes"),
    "figure14": (experiments.run_figure14, "aggregate selections on the path query"),
    "churn": (
        experiments.run_churn_recovery,
        "node crashes mid-stream: recovery-policy comparison",
    ),
    "chaos": (
        experiments.run_chaos,
        "seeded fault injection (links, storms, kills) gated by parity",
    ),
    "batch-throughput": (
        experiments.run_batch_throughput,
        "batch-first pipeline vs tuple-at-a-time (BDD ops, purge messages)",
    ),
    "elastic": (
        experiments.run_elastic_scaling,
        "scale a running cluster N -> 2N -> N mid-stream (moved state, misroutes)",
    ),
    "ablation-minship": (experiments.run_ablation_minship_batch, "MinShip batch-size sweep"),
    "ablation-encoding": (
        experiments.run_ablation_provenance_encoding,
        "BDD vs sum-of-products provenance encoding",
    ),
    "ablation-centralized": (
        experiments.run_ablation_centralized_maintenance,
        "distributed incremental vs centralized recompute",
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the evaluation figures of Liu et al., ICDE 2009.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true", help="smallest (smoke-test) scale")
    scale.add_argument(
        "--paper-scale", action="store_true", help="the paper's original data sizes (slow)"
    )
    parser.add_argument(
        "--csv-dir", type=Path, default=None, help="also write one CSV file per experiment"
    )
    batching = parser.add_argument_group("update batching")
    batching.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="max updates per injected/coalesced message (1 = tuple-at-a-time)",
    )
    batching.add_argument(
        "--batch-ports",
        type=str,
        default=None,
        metavar="PORT[,PORT...]",
        help=(
            "restrict batch-wise handling to these ports "
            "(base, seed, edge, view, purge); default: all ports"
        ),
    )
    batching.add_argument(
        "--no-batching",
        action="store_true",
        help="run the historical tuple-at-a-time pipeline (same as --batch-size 1)",
    )
    backend = parser.add_argument_group("execution backend")
    backend.add_argument(
        "--backend",
        choices=("sim", "process"),
        default=None,
        help=(
            "where node handlers run: 'sim' on this interpreter thread "
            "(default), 'process' across real OS worker processes with "
            "bit-identical results"
        ),
    )
    backend.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-process count for --backend process (default: one per CPU core)",
    )
    kernel = parser.add_argument_group("BDD kernel")
    kernel.add_argument(
        "--bdd-gc-threshold",
        type=float,
        default=None,
        metavar="R",
        help=(
            "dead-node fraction of the BDD table that triggers a compacting "
            "GC in the absorption strategies (0 disables automatic GC; "
            "default 0.25)"
        ),
    )
    elastic = parser.add_argument_group("elastic placement")
    elastic.add_argument(
        "--per-node",
        action="store_true",
        help="append per-node traffic/state rows (shows skew before/after rebalancing)",
    )
    elastic.add_argument(
        "--virtual-nodes",
        type=int,
        default=None,
        metavar="V",
        help="virtual nodes per processor on the consistent-hash ring",
    )
    churn = parser.add_argument_group("churn experiment")
    churn.add_argument(
        "--churn-cycles",
        type=int,
        default=None,
        help="crash/recover cycles injected by the churn experiment",
    )
    churn.add_argument(
        "--churn-downtime",
        type=float,
        default=None,
        help="fraction of each churn slot a crashed node stays down (0..1)",
    )
    churn.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="deliveries between checkpoints under checkpoint+replay recovery",
    )
    chaos = parser.add_argument_group("chaos plane")
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="S",
        help="seed for the chaos plan and the power-law chaos workload",
    )
    chaos.add_argument(
        "--chaos-profile",
        choices=("none", "link", "storm", "full", "degraded", "kill"),
        default=None,
        help="named fault profile swept by the chaos experiment (default: full)",
    )
    chaos.add_argument(
        "--chaos-links",
        type=int,
        default=None,
        metavar="N",
        help="total links in the power-law chaos workload",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "record a Chrome trace-event file of the run (open in Perfetto / "
            "chrome://tracing); a .jsonl suffix writes one event per line"
        ),
    )
    obs.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write one metrics-registry snapshot per experiment phase as JSON",
    )
    obs.add_argument(
        "--explain",
        type=str,
        default=None,
        metavar='"view(args...)"',
        help=(
            "explain one view tuple of the first requested experiment "
            "(default figure7): its minimal derivation products, owning "
            "nodes, and — with --trace — the message path as flow arrows; "
            "'auto' picks the first view tuple"
        ),
    )
    obs.add_argument(
        "--explain-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the explanation as JSON (requires --explain)",
    )
    obs.add_argument(
        "--flight-dump",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "where the always-on flight recorder dumps its ring buffers on a "
            "crash-purge, budget overrun or harness error (default: "
            "flight_dump.json in the working directory)"
        ),
    )
    obs.add_argument(
        "--no-flight",
        action="store_true",
        help="disable the always-on flight recorder (it is free when idle)",
    )
    return parser


def _select_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.quick:
        config = QUICK_CONFIG
    elif args.paper_scale:
        config = PAPER_SCALE_CONFIG
    else:
        config = DEFAULT_CONFIG
    overrides = {}
    if args.no_batching:
        overrides["batch_size"] = 1
    elif args.batch_size is not None:
        if args.batch_size < 1:
            raise SystemExit("--batch-size must be >= 1")
        overrides["batch_size"] = args.batch_size
    if args.batch_ports is not None:
        ports = tuple(port.strip() for port in args.batch_ports.split(",") if port.strip())
        known = {"base", "seed", "edge", "view", "purge"}
        unknown = [port for port in ports if port not in known]
        if unknown:
            raise SystemExit(
                f"unknown port(s) {', '.join(unknown)}; choose from {', '.join(sorted(known))}"
            )
        overrides["batch_ports"] = ports
    if args.per_node:
        overrides["per_node"] = True
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
        if args.backend != "process":
            raise SystemExit("--workers requires --backend process")
        overrides["workers"] = args.workers
    if args.bdd_gc_threshold is not None:
        if not 0.0 <= args.bdd_gc_threshold <= 1.0:
            raise SystemExit("--bdd-gc-threshold must be within [0, 1]")
        overrides["bdd_gc_threshold"] = args.bdd_gc_threshold
    if args.virtual_nodes is not None:
        if args.virtual_nodes < 1:
            raise SystemExit("--virtual-nodes must be >= 1")
        overrides["virtual_nodes"] = args.virtual_nodes
    if args.churn_cycles is not None:
        overrides["churn_cycles"] = args.churn_cycles
    if args.churn_downtime is not None:
        overrides["churn_downtime"] = args.churn_downtime
    if args.checkpoint_interval is not None:
        overrides["churn_checkpoint_interval"] = args.checkpoint_interval
    if args.chaos_seed is not None:
        overrides["chaos_seed"] = args.chaos_seed
    if args.chaos_profile is not None:
        overrides["chaos_profile"] = args.chaos_profile
    if args.chaos_links is not None:
        if args.chaos_links < 12:
            raise SystemExit("--chaos-links must be >= 12")
        overrides["chaos_links"] = args.chaos_links
    if overrides:
        config = replace(config, **overrides)
    return config


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or (not args.experiments and args.explain is None):
        print("Available experiments:")
        for name, (_, description) in EXPERIMENTS.items():
            print(f"  {name:22s} {description}")
        print("  all                    run every experiment above")
        return 0
    if args.explain_json is not None and args.explain is None:
        parser.error("--explain-json requires --explain")

    requested: List[str] = []
    for name in args.experiments:
        # ``fig11`` and friends are accepted as shorthand for ``figure11``.
        alias = re.sub(r"^fig(?=\d+$)", "figure", name)
        if name == "all":
            requested.extend(EXPERIMENTS)
        elif name in EXPERIMENTS:
            requested.append(name)
        elif alias in EXPERIMENTS:
            requested.append(alias)
        else:
            parser.error(f"unknown experiment {name!r}; use --list to see the choices")
    if not requested and args.explain is not None:
        requested = ["figure7"]

    config = _select_config(args)
    print(f"# configuration: {config.describe()}")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)

    tracer = None
    flight = None
    if args.trace is not None:
        tracer = Tracer()
        install_tracer(tracer)
    elif not args.no_flight:
        # The always-on flight recorder: bounded rings, dumped only when
        # something goes wrong (crash-purge, budget overrun, harness error).
        flight = FlightRecorder(dump_path=args.flight_dump or Path("flight_dump.json"))
        install_tracer(flight)
    metrics_log = None
    if args.metrics_json is not None:
        metrics_log = MetricsLog()
        install_metrics_log(metrics_log)

    explanation = None
    try:
        try:
            if args.explain is not None:
                explanation = experiments.run_explain(
                    config, args.explain, experiment=requested[0]
                )
                print()
                print(explanation.render_text())
                if args.explain_json is not None:
                    args.explain_json.write_text(
                        json.dumps(explanation.as_json(), indent=2, sort_keys=True) + "\n"
                    )
                    print(f"(wrote explanation: {args.explain_json})")
            else:
                for name in requested:
                    driver, description = EXPERIMENTS[name]
                    span = None
                    if tracer is not None:
                        span = tracer.begin(HARNESS_PID, f"experiment:{name}", "harness")
                    try:
                        rows = driver(config)
                    finally:
                        if span is not None:
                            tracer.end(span)
                    print()
                    print(format_rows(rows, title=f"{name}: {description}"))
                    if args.csv_dir is not None:
                        target = args.csv_dir / f"{name}.csv"
                        target.write_text(rows_to_csv(rows))
                        print(f"(wrote {target})")
        except BaseException as exc:
            dumped = maybe_dump_flight(f"harness: {type(exc).__name__}: {exc}")
            if dumped is not None:
                print(f"(flight recorder dumped to {dumped})", file=sys.stderr)
            raise
    finally:
        if tracer is not None:
            install_tracer(None)
            write_trace(tracer, args.trace)
            print(f"(wrote trace: {args.trace}, {len(tracer.events)} events)")
        if flight is not None:
            install_tracer(None)
        if metrics_log is not None:
            install_metrics_log(None)
            write_metrics_json(metrics_log, args.metrics_json)
            print(
                f"(wrote metrics: {args.metrics_json}, "
                f"{len(metrics_log.records)} snapshots)"
            )
    if explanation is not None and args.trace is not None:
        injected = inject_explain_flows(explanation, args.trace)
        if injected:
            print(f"(injected {injected} explain flow events into {args.trace})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
