"""Experiment harness: one driver per table/figure of the paper's evaluation.

* :mod:`repro.harness.config` — scaled-down default experiment sizes (the
  simulator is pure Python; EXPERIMENTS.md records the scaling);
* :mod:`repro.harness.experiments` — `run_figure7` ... `run_figure14` plus the
  ablations, each returning a list of result rows;
* :mod:`repro.harness.report` — table formatting matching the figures' series.
"""

from repro.harness.config import ExperimentConfig, DEFAULT_CONFIG, QUICK_CONFIG
from repro.harness.experiments import (
    run_ablation_centralized_maintenance,
    run_ablation_minship_batch,
    run_ablation_provenance_encoding,
    run_batch_throughput,
    run_chaos,
    run_churn_recovery,
    run_elastic_scaling,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_figure14,
)
from repro.harness.report import format_rows, rows_to_csv

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "QUICK_CONFIG",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_ablation_minship_batch",
    "run_ablation_provenance_encoding",
    "run_ablation_centralized_maintenance",
    "run_batch_throughput",
    "run_chaos",
    "run_churn_recovery",
    "run_elastic_scaling",
    "format_rows",
    "rows_to_csv",
]
