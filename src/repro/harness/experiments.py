"""Per-figure experiment drivers (Section 7 of the paper).

Each ``run_figureN`` function reproduces one figure: it sweeps the figure's
x-axis, runs every compared scheme over identical workloads, and returns one
flat result row per (scheme, x) point carrying the paper's four metrics:

* ``per_tuple_provenance_B`` — per-tuple provenance overhead (bytes),
* ``communication_MB`` — communication overhead (MB),
* ``state_MB`` — state within operators (MB),
* ``convergence_time_s`` — convergence time (simulated seconds).

Runs that exceed the configured wall-clock or event budget are reported with
``converged = False`` — the analogue of the paper's "did not complete within 5
minutes" data points.
"""

from __future__ import annotations

import random
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.baselines.centralized import CentralizedRecursiveEvaluator
from repro.baselines.networkx_ref import reachable_pairs
from repro.data.batch import BatchPolicy
from repro.engine.executor import DistributedViewExecutor
from repro.engine.strategy import ExecutionStrategy
from repro.fault import RecoveryPolicy, fault_tolerant_executor
from repro.harness.config import DEFAULT_CONFIG, ExperimentConfig
from repro.net.latency import ClusterLatencyModel
from repro.obs.trace import HARNESS_PID, current_tracer
from repro.net.simulator import SimulationBudgetExceeded, SimulationError
from repro.queries.builder import build_executor
from repro.queries.reachability import reachability_plan
from repro.queries.regions import region_plan
from repro.queries.shortest_path import (
    AGGSEL_MULTI,
    AGGSEL_NONE,
    AGGSEL_SINGLE,
    shortest_path_plan,
)
from repro.placement import elastic_executor
from repro.workloads.churn import generate_churn
from repro.workloads.hotspot import generate_hotspot
from repro.workloads.sensors import SensorField, SensorWorkload
from repro.workloads.topology import (
    TransitStubConfig,
    generate_topology,
    topology_with_link_budget,
)
from repro.workloads.updates import deletion_sample, insertion_prefix

Row = Dict[str, object]

#: Scheme sets compared in the paper's figures.
INSERTION_SCHEMES = (
    "DRed",
    "Relative Eager",
    "Relative Lazy",
    "Absorption Eager",
    "Absorption Lazy",
)
DELETION_SCHEMES = ("DRed", "Relative Lazy", "Absorption Eager", "Absorption Lazy")
#: The paper's Figures 9/10 also include Absorption Eager; at this
#: reproduction's pure-Python constants the eager scheme on the (dense)
#: sensor proximity graph exceeds any reasonable wall-clock budget, so the
#: default region sweep compares DRed with Absorption Lazy and the
#: eager-vs-lazy contrast is carried by the networking figures (7, 8, 11, 12).
REGION_SCHEMES = ("DRed", "Absorption Lazy")
SCALING_SCHEMES = ("Absorption Eager", "Absorption Lazy")
PROCESSOR_SCHEMES = ("DRed", "Absorption Lazy")


def _topology(config: ExperimentConfig, dense: bool = True):
    return generate_topology(
        TransitStubConfig(
            transit_nodes_per_domain=config.transit_nodes_per_domain,
            stubs_per_transit=config.stubs_per_transit,
            nodes_per_stub=config.nodes_per_stub,
            dense=dense,
            seed=config.seed,
        )
    )


def _batch_policy(config: ExperimentConfig) -> BatchPolicy:
    """The batching knobs of ``config`` as a :class:`BatchPolicy`."""
    if config.batch_size <= 1:
        return BatchPolicy.tuple_at_a_time()
    ports = frozenset(config.batch_ports) if config.batch_ports is not None else None
    return BatchPolicy(max_batch=config.batch_size, ports=ports)


def _strategy(scheme, config: ExperimentConfig) -> ExecutionStrategy:
    """Resolve a scheme label, applying the config's BDD-kernel knobs."""
    strategy = ExecutionStrategy.by_name(scheme) if isinstance(scheme, str) else scheme
    return strategy.with_kernel_options(gc_threshold=config.bdd_gc_threshold)


def _executor(
    plan,
    scheme: str,
    config: ExperimentConfig,
    node_count: Optional[int] = None,
    batch_policy: Optional[BatchPolicy] = None,
    **extra,
) -> DistributedViewExecutor:
    return _build_with_backend(
        config,
        plan,
        _strategy(scheme, config),
        node_count=node_count or config.node_count,
        max_events=config.max_events,
        max_wall_seconds=config.max_wall_seconds,
        experiment=plan.name,
        batch_policy=batch_policy or _batch_policy(config),
        **extra,
    )


def _build_with_backend(config: ExperimentConfig, plan, strategy, **kwargs):
    """``build_executor`` honouring the config's backend selection.

    Plans the process backend cannot ship (closure-captured plan variants) and
    strategies it cannot host fall back to the in-process simulator with a
    warning rather than failing the whole figure sweep.
    """
    if config.backend == "process":
        try:
            return build_executor(
                plan, strategy, backend="process", workers=config.workers or None, **kwargs
            )
        except SimulationError as exc:
            print(
                f"# note: {plan.name}/{getattr(strategy, 'label', strategy)} "
                f"falls back to the in-process backend ({exc})",
                file=sys.stderr,
            )
    return build_executor(plan, strategy, **kwargs)


def _base_row(figure: str, scheme: str, **parameters: object) -> Row:
    row: Row = {"figure": figure, "scheme": scheme}
    row.update(parameters)
    tracer = current_tracer()
    if tracer.enabled:
        # Every driver starts a (figure, scheme, x) point through here, so
        # one instant on the harness track marks each sweep point in a trace.
        point = ",".join(f"{k}={v}" for k, v in parameters.items())
        tracer.instant(HARNESS_PID, f"fig{figure}[{scheme}] {point}", "harness")
    return row


def _metric_row(
    row: Row,
    per_tuple_provenance: float,
    communication_mb: float,
    state_mb: float,
    convergence_s: float,
    converged: bool = True,
    **extra: object,
) -> Row:
    row.update(
        {
            "per_tuple_provenance_B": round(per_tuple_provenance, 2),
            "communication_MB": round(communication_mb, 6),
            "state_MB": round(state_mb, 6),
            "convergence_time_s": round(convergence_s, 6),
            "converged": converged,
        }
    )
    row.update(extra)
    return row


def _censored_row(row: Row, executor: DistributedViewExecutor) -> Row:
    """Row for a run cut off by the budget (reported like the paper's '>5 min')."""
    stats = executor.network.stats
    return _metric_row(
        row,
        per_tuple_provenance=stats.per_tuple_provenance_bytes,
        communication_mb=stats.communication_mb,
        state_mb=executor.state_bytes() / 1_000_000.0,
        convergence_s=stats.convergence_time,
        converged=False,
    )


# ---------------------------------------------------------------------------
# Figure 7: reachable, insertion-only workload
# ---------------------------------------------------------------------------

def run_figure7(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = INSERTION_SCHEMES
) -> List[Row]:
    """Reachable-view computation as links are inserted (insertion-ratio sweep)."""
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    rows: List[Row] = []
    for scheme in schemes:
        executor = _executor(reachability_plan(), scheme, config)
        cumulative_mb = 0.0
        cumulative_time = 0.0
        inserted = 0
        try:
            for ratio in config.insertion_ratios:
                prefix = insertion_prefix(links, ratio)
                batch = prefix[inserted:]
                inserted = len(prefix)
                phase = executor.insert_edges(batch, label=f"insert@{ratio}")
                cumulative_mb += phase.communication_mb
                cumulative_time += phase.convergence_time_s
                rows.append(
                    _metric_row(
                        _base_row("7", scheme, insertion_ratio=ratio, links=inserted),
                        per_tuple_provenance=executor.metrics.mean_per_tuple_provenance_bytes,
                        communication_mb=cumulative_mb,
                        state_mb=phase.state_mb,
                        convergence_s=cumulative_time,
                        view_size=phase.view_size,
                    )
                )
        except SimulationBudgetExceeded:
            rows.append(
                _censored_row(
                    _base_row("7", scheme, insertion_ratio="(budget exceeded)", links=inserted),
                    executor,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: reachable, insertions followed by deletions
# ---------------------------------------------------------------------------

def run_figure8(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = DELETION_SCHEMES
) -> List[Row]:
    """Reachable-view maintenance as links are deleted (deletion-ratio sweep)."""
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    rows: List[Row] = []
    for scheme in schemes:
        executor = _executor(reachability_plan(), scheme, config)
        try:
            executor.insert_edges(links, label="preload")
        except SimulationBudgetExceeded:
            rows.append(_censored_row(_base_row("8", scheme, deletion_ratio="preload"), executor))
            continue
        cumulative_mb = 0.0
        cumulative_time = 0.0
        already_deleted: set = set()
        try:
            for ratio in config.deletion_ratios:
                target = deletion_sample(links, ratio, seed=config.seed)
                batch = [t for t in target if t not in already_deleted]
                already_deleted.update(batch)
                phase = executor.delete_edges(batch, label=f"delete@{ratio}")
                cumulative_mb += phase.communication_mb
                cumulative_time += phase.convergence_time_s
                rows.append(
                    _metric_row(
                        _base_row(
                            "8", scheme, deletion_ratio=ratio, deleted=len(already_deleted)
                        ),
                        per_tuple_provenance=phase.per_tuple_provenance_bytes,
                        communication_mb=cumulative_mb,
                        state_mb=phase.state_mb,
                        convergence_s=cumulative_time,
                        view_size=phase.view_size,
                    )
                )
        except SimulationBudgetExceeded:
            rows.append(
                _censored_row(_base_row("8", scheme, deletion_ratio="(budget exceeded)"), executor)
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 9 and 10: the sensor-region query
# ---------------------------------------------------------------------------

def _sensor_workload(config: ExperimentConfig) -> SensorWorkload:
    field = SensorField.grid(
        side_metres=config.sensor_field_side,
        spacing_metres=config.sensor_spacing,
        proximity_radius=config.sensor_proximity_radius,
        seed_groups=config.sensor_seed_groups,
        rng_seed=config.seed,
    )
    return SensorWorkload(field)


def _sensor_trigger_order(workload: SensorWorkload, config: ExperimentConfig) -> List[str]:
    """Seeds first (always triggered), then the other sensors in a seeded shuffle."""
    field = workload.field
    rng = random.Random(config.seed)
    others = [s for s in field.sensor_ids if not field.is_seed(s)]
    rng.shuffle(others)
    return list(field.seed_sensors) + others


def run_figure9(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = REGION_SCHEMES
) -> List[Row]:
    """Region-query computation as sensors are triggered (insertion-ratio sweep)."""
    rows: List[Row] = []
    for scheme in schemes:
        workload = _sensor_workload(config)
        order = _sensor_trigger_order(workload, config)
        executor = _executor(region_plan(), scheme, config)
        cumulative_mb = 0.0
        cumulative_time = 0.0
        triggered = 0
        try:
            for ratio in config.insertion_ratios:
                target = round(len(order) * ratio)
                batch = order[triggered:target]
                triggered = target
                delta = workload.trigger_many(batch)
                phase = executor.apply_mixed(
                    edge_inserts=delta.proximity_inserts,
                    seed_inserts=delta.seed_inserts,
                    label=f"trigger@{ratio}",
                )
                cumulative_mb += phase.communication_mb
                cumulative_time += phase.convergence_time_s
                rows.append(
                    _metric_row(
                        _base_row("9", scheme, insertion_ratio=ratio, triggered=triggered),
                        per_tuple_provenance=executor.metrics.mean_per_tuple_provenance_bytes,
                        communication_mb=cumulative_mb,
                        state_mb=phase.state_mb,
                        convergence_s=cumulative_time,
                        view_size=phase.view_size,
                    )
                )
        except SimulationBudgetExceeded:
            rows.append(
                _censored_row(_base_row("9", scheme, insertion_ratio="(budget exceeded)"), executor)
            )
    return rows


def run_figure10(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = REGION_SCHEMES
) -> List[Row]:
    """Region-query maintenance as triggered sensors are untriggered (deletion sweep)."""
    rows: List[Row] = []
    for scheme in schemes:
        workload = _sensor_workload(config)
        order = _sensor_trigger_order(workload, config)
        executor = _executor(region_plan(), scheme, config)
        delta = workload.trigger_many(order)
        try:
            executor.apply_mixed(
                edge_inserts=delta.proximity_inserts,
                seed_inserts=delta.seed_inserts,
                label="preload",
            )
        except SimulationBudgetExceeded:
            rows.append(_censored_row(_base_row("10", scheme, deletion_ratio="preload"), executor))
            continue
        # Untrigger ordinary (non-seed) sensors in a deterministic shuffled order.
        rng = random.Random(config.seed + 1)
        untrigger_order = [s for s in order if not workload.field.is_seed(s)]
        rng.shuffle(untrigger_order)
        cumulative_mb = 0.0
        cumulative_time = 0.0
        untriggered = 0
        try:
            for ratio in config.deletion_ratios:
                target = round(len(untrigger_order) * ratio)
                batch = untrigger_order[untriggered:target]
                untriggered = target
                delta = workload.untrigger_many(batch)
                phase = executor.apply_mixed(
                    edge_deletes=delta.proximity_deletes,
                    seed_deletes=delta.seed_deletes,
                    label=f"untrigger@{ratio}",
                )
                cumulative_mb += phase.communication_mb
                cumulative_time += phase.convergence_time_s
                rows.append(
                    _metric_row(
                        _base_row("10", scheme, deletion_ratio=ratio, untriggered=untriggered),
                        per_tuple_provenance=phase.per_tuple_provenance_bytes,
                        communication_mb=cumulative_mb,
                        state_mb=phase.state_mb,
                        convergence_s=cumulative_time,
                        view_size=phase.view_size,
                    )
                )
        except SimulationBudgetExceeded:
            rows.append(
                _censored_row(_base_row("10", scheme, deletion_ratio="(budget exceeded)"), executor)
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 11 and 12: scaling the number of links (dense vs sparse)
# ---------------------------------------------------------------------------

def run_figure11(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = SCALING_SCHEMES
) -> List[Row]:
    """Insertion workload while scaling total links, dense vs sparse topologies."""
    rows: List[Row] = []
    for dense in (True, False):
        seen_sizes: set = set()
        for budget in config.link_budgets:
            topology = topology_with_link_budget(budget, dense=dense, seed=config.seed)
            if topology.directed_link_count in seen_sizes:
                continue  # two budgets snapped to the same generatable topology
            seen_sizes.add(topology.directed_link_count)
            links = topology.link_tuples()
            for scheme in schemes:
                label = f"{'Dense' if dense else 'Sparse'}"
                executor = _executor(reachability_plan(), scheme, config)
                row = _base_row(
                    "11",
                    f"{scheme.split()[-1]} {label}",
                    links=len(links),
                    density=label.lower(),
                )
                try:
                    phase = executor.insert_edges(links, label="insert")
                except SimulationBudgetExceeded:
                    rows.append(_censored_row(row, executor))
                    continue
                rows.append(
                    _metric_row(
                        row,
                        per_tuple_provenance=phase.per_tuple_provenance_bytes,
                        communication_mb=phase.communication_mb,
                        state_mb=phase.state_mb,
                        convergence_s=phase.convergence_time_s,
                        view_size=phase.view_size,
                    )
                )
    return rows


def run_figure12(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = SCALING_SCHEMES
) -> List[Row]:
    """Deleting 20 % of links while scaling total links, dense vs sparse topologies."""
    rows: List[Row] = []
    for dense in (True, False):
        seen_sizes: set = set()
        for budget in config.link_budgets:
            topology = topology_with_link_budget(budget, dense=dense, seed=config.seed)
            if topology.directed_link_count in seen_sizes:
                continue  # two budgets snapped to the same generatable topology
            seen_sizes.add(topology.directed_link_count)
            links = topology.link_tuples()
            deletions = deletion_sample(links, 0.2, seed=config.seed)
            for scheme in schemes:
                label = f"{'Dense' if dense else 'Sparse'}"
                executor = _executor(reachability_plan(), scheme, config)
                row = _base_row(
                    "12",
                    f"{scheme.split()[-1]} {label}",
                    links=len(links),
                    density=label.lower(),
                )
                try:
                    executor.insert_edges(links, label="preload")
                    phase = executor.delete_edges(deletions, label="delete20")
                except SimulationBudgetExceeded:
                    rows.append(_censored_row(row, executor))
                    continue
                rows.append(
                    _metric_row(
                        row,
                        per_tuple_provenance=phase.per_tuple_provenance_bytes,
                        communication_mb=phase.communication_mb,
                        state_mb=phase.state_mb,
                        convergence_s=phase.convergence_time_s,
                        view_size=phase.view_size,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 13: scaling the number of query-processor nodes
# ---------------------------------------------------------------------------

def run_figure13(
    config: ExperimentConfig = DEFAULT_CONFIG, schemes: Sequence[str] = PROCESSOR_SCHEMES
) -> List[Row]:
    """Insert-all-then-delete-20% of the reachable workload at varying cluster sizes."""
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    deletions = deletion_sample(links, 0.2, seed=config.seed)
    rows: List[Row] = []
    for processors in config.processor_counts:
        latency = ClusterLatencyModel(primary_cluster_size=min(processors, 16))
        for scheme in schemes:
            executor = _build_with_backend(
                config,
                reachability_plan(),
                scheme,
                node_count=processors,
                latency_model=latency,
                max_events=config.max_events,
                max_wall_seconds=config.max_wall_seconds,
                experiment="figure13",
            )
            row = _base_row("13", scheme, processors=processors)
            try:
                insert_phase = executor.insert_edges(links, label="insert")
                delete_phase = executor.delete_edges(deletions, label="delete20")
            except SimulationBudgetExceeded:
                rows.append(_censored_row(row, executor))
                continue
            total_mb = insert_phase.communication_mb + delete_phase.communication_mb
            rows.append(
                _metric_row(
                    row,
                    per_tuple_provenance=executor.metrics.mean_per_tuple_provenance_bytes,
                    communication_mb=total_mb,
                    state_mb=delete_phase.state_mb,
                    convergence_s=insert_phase.convergence_time_s
                    + delete_phase.convergence_time_s,
                    per_node_communication_MB=round(total_mb / processors, 6),
                    per_node_state_MB=round(delete_phase.state_mb / processors, 6),
                    view_size=delete_phase.view_size,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 14: aggregate selections on the shortest-path query
# ---------------------------------------------------------------------------

def run_figure14(
    config: ExperimentConfig = DEFAULT_CONFIG,
    scheme: str = "Absorption Lazy",
) -> List[Row]:
    """Multi vs single vs no aggregate selection, dense and sparse topologies."""
    rows: List[Row] = []
    modes = (
        ("Multi AggSel", AGGSEL_MULTI),
        ("Single AggSel", AGGSEL_SINGLE),
        ("No AggSel", AGGSEL_NONE),
    )
    for dense in (True, False):
        topology = _topology(config, dense=dense)
        links = topology.cost_link_tuples()
        density = "dense" if dense else "sparse"
        for label, mode in modes:
            plan = shortest_path_plan(
                aggregate_selection=mode,
                max_hops=config.path_hop_bound if mode == AGGSEL_NONE else None,
            )
            executor = _executor(plan, scheme, config)
            row = _base_row("14", label, density=density, links=len(links))
            try:
                phase = executor.insert_edges(links, label="insert")
            except SimulationBudgetExceeded:
                rows.append(_censored_row(row, executor))
                continue
            rows.append(
                _metric_row(
                    row,
                    per_tuple_provenance=phase.per_tuple_provenance_bytes,
                    communication_mb=phase.communication_mb,
                    state_mb=phase.state_mb,
                    convergence_s=phase.convergence_time_s,
                    view_size=phase.view_size,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Churn: node crashes mid-workload, compared across recovery policies
# ---------------------------------------------------------------------------

def run_churn_recovery(
    config: ExperimentConfig = DEFAULT_CONFIG,
    scheme: str = "Absorption Lazy",
) -> List[Row]:
    """Crash/recover nodes mid-insertion-stream and compare recovery policies.

    A failure-free run of the insertion workload establishes the convergence
    horizon and the communication baseline; the same workload is then re-run
    with a seeded churn scenario (``config.churn_cycles`` crash/recover pairs
    scaled onto that horizon) under each recovery policy.  Every row reports
    the paper's convergence-time and bytes-shipped metrics plus whether the
    final view still equals the networkx ground truth.
    """
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    truth = reachable_pairs((link["src"], link["dst"]) for link in links)
    rows: List[Row] = []

    baseline = fault_tolerant_executor(
        reachability_plan(),
        scheme,
        node_count=config.node_count,
        checkpoint_interval=0,
        retain_wal_entries=False,  # no crashes: the log is never replayed
        max_events=config.max_events,
        max_wall_seconds=config.max_wall_seconds,
        experiment="churn",
    )
    try:
        phase = baseline.insert_edges(links, label="insert")
    except SimulationBudgetExceeded:
        return [_censored_row(_base_row("churn", scheme, policy="no-failure"), baseline)]
    horizon = phase.convergence_time_s
    rows.append(
        _metric_row(
            _base_row("churn", scheme, policy="no-failure", crashes=0),
            per_tuple_provenance=phase.per_tuple_provenance_bytes,
            communication_mb=phase.communication_mb,
            state_mb=phase.state_mb,
            convergence_s=phase.convergence_time_s,
            view_correct=baseline.view_values() == truth,
            view_size=phase.view_size,
        )
    )

    scenario = generate_churn(
        node_count=config.node_count,
        cycles=config.churn_cycles,
        downtime=config.churn_downtime,
        seed=config.seed,
    ).scaled(horizon)
    for policy in (RecoveryPolicy.CHECKPOINT_REPLAY, RecoveryPolicy.PROVENANCE_PURGE):
        interval = (
            config.churn_checkpoint_interval
            if policy is RecoveryPolicy.CHECKPOINT_REPLAY
            else 0
        )
        executor = fault_tolerant_executor(
            reachability_plan(),
            scheme,
            recovery_policy=policy,
            checkpoint_interval=interval,
            node_count=config.node_count,
            max_events=config.max_events,
            max_wall_seconds=config.max_wall_seconds,
            experiment="churn",
        )
        scenario.apply(executor)
        row = _base_row("churn", scheme, policy=policy.value, crashes=scenario.crash_count)
        try:
            phase = executor.insert_edges(links, label="insert")
        except SimulationBudgetExceeded:
            rows.append(_censored_row(row, executor))
            continue
        stats = executor.fault_stats()
        rows.append(
            _metric_row(
                row,
                per_tuple_provenance=phase.per_tuple_provenance_bytes,
                communication_mb=phase.communication_mb,
                state_mb=phase.state_mb,
                convergence_s=phase.convergence_time_s,
                view_correct=executor.view_values() == truth,
                view_size=phase.view_size,
                wal_entries=stats["wal_entries"],
                checkpoints=stats["checkpoints_taken"],
                checkpoint_KB=round(stats["checkpoint_bytes"] / 1000.0, 1),
                dropped_messages=stats["dropped_messages"],
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Elastic: scale a running cluster from N to 2N processors (and back down)
# ---------------------------------------------------------------------------

def _per_node_rows(executor, scheme: str, stage: str) -> List[Row]:
    """Per-node traffic/state rows for the current phase (the skew view)."""
    state = executor.per_node_state_bytes()
    rows: List[Row] = []
    for entry in executor.network.stats.per_node_rows():
        node = entry["node"]
        if not executor.network.is_active(node):
            continue
        row: Row = {"figure": "elastic", "scheme": scheme, "stage": stage}
        row.update(entry)
        row["state_KB"] = round(state.get(node, 0) / 1000.0, 2)
        rows.append(row)
    return rows


def run_elastic_scaling(
    config: ExperimentConfig = DEFAULT_CONFIG,
    scheme: str = "Absorption Eager",
) -> List[Row]:
    """Scale a *running* cluster from N to 2N processors and back down.

    Extends Figure 13 from static comparison to dynamic scaling: two static
    reference runs (N and 2N processors) bracket an elastic run that starts
    at N processors, admits N more spread across the insertion stream
    (consistent-hash migration moving ≈ 1/(N+1) of the state per join), runs
    a load-aware rebalance against the hotspot skew, and decommissions the
    added processors again spread across the deletion stream.  The elastic
    rows additionally report the placement subsystem's own costs: moved
    state bytes (checkpoint-codec measured) and misrouted batches (stale-
    epoch deliveries bounced to the current owner).  ``config.per_node``
    appends per-node traffic/state rows before and after the rebalance so
    the hotspot skew is visible.
    """
    workload = generate_hotspot(
        spokes=config.hotspot_spokes,
        hubs=config.hotspot_hubs,
        hub_bias=config.hotspot_bias,
        extra_links=config.hotspot_extra_links,
        seed=config.seed,
    )
    links = workload.link_tuples()
    deletions = deletion_sample(links, config.elastic_deletion_ratio, seed=config.seed)
    truth_inserted = reachable_pairs(workload.edge_pairs())
    deleted = set(deletions)
    remaining = [l for l in links if l not in deleted]
    truth_remaining = reachable_pairs((l["src"], l["dst"]) for l in remaining)
    n = config.node_count
    rows: List[Row] = []

    # Static reference points (the figure-13-style endpoints).
    insert_horizon = None
    delete_horizon = None
    for processors in (n, 2 * n):
        executor = _executor(reachability_plan(), scheme, config, node_count=processors)
        row = _base_row("elastic", scheme, phase="static", processors=str(processors))
        try:
            insert_phase = executor.insert_edges(links, label="insert")
            delete_phase = executor.delete_edges(deletions, label="delete")
        except SimulationBudgetExceeded:
            rows.append(_censored_row(row, executor))
            continue
        if processors == n:
            insert_horizon = insert_phase.convergence_time_s
            delete_horizon = delete_phase.convergence_time_s
        rows.append(
            _metric_row(
                row,
                per_tuple_provenance=executor.metrics.mean_per_tuple_provenance_bytes,
                communication_mb=insert_phase.communication_mb
                + delete_phase.communication_mb,
                state_mb=delete_phase.state_mb,
                convergence_s=insert_phase.convergence_time_s
                + delete_phase.convergence_time_s,
                view_correct=executor.view_values() == truth_remaining,
                view_size=delete_phase.view_size,
            )
        )
    if insert_horizon is None:
        return rows

    executor = elastic_executor(
        reachability_plan(),
        scheme,
        node_count=n,
        virtual_nodes=config.virtual_nodes,
        # Same two-cluster latency shape as the static 2N reference run, so
        # admitted processors join the primary cluster rather than paying the
        # inter-cluster penalty the static comparison does not pay.
        latency_model=ClusterLatencyModel(primary_cluster_size=min(2 * n, 16)),
        max_events=config.max_events,
        max_wall_seconds=config.max_wall_seconds,
        experiment="elastic",
        batch_policy=_batch_policy(config),
    )
    # Scale out: admit N processors spread across the insertion stream.
    for index in range(n):
        at_time = insert_horizon * (0.15 + 0.6 * index / max(n - 1, 1))
        executor.schedule_add_node(at_time)
    row = _base_row("elastic", scheme, phase="scale-out", processors=f"{n}->{2 * n}")
    try:
        insert_phase = executor.insert_edges(links, label="scale-out")
    except SimulationBudgetExceeded:
        rows.append(_censored_row(row, executor))
        return rows
    if config.per_node:
        rows.extend(_per_node_rows(executor, scheme, stage="before-rebalance"))
    rebalance_report = executor.rebalance()
    if config.per_node:
        rows.extend(_per_node_rows(executor, scheme, stage="after-rebalance"))
    stats = executor.placement_stats()
    rows.append(
        _metric_row(
            row,
            per_tuple_provenance=insert_phase.per_tuple_provenance_bytes,
            communication_mb=insert_phase.communication_mb,
            state_mb=insert_phase.state_mb,
            convergence_s=insert_phase.convergence_time_s,
            view_correct=executor.view_values() == truth_inserted,
            view_size=insert_phase.view_size,
            moved_state_KB=round(stats["moved_state_bytes"] / 1000.0, 2),
            misrouted_batches=stats["misrouted_batches"],
            misrouted_updates=stats["misrouted_updates"],
            stale_epoch_messages=executor.network.stats.stale_epoch_messages,
            epoch=stats["epoch"],
            rebalanced=rebalance_report is not None,
        )
    )

    # Scale in: decommission the admitted processors across the deletion stream.
    out_stats = stats
    for index in range(n):
        at_time = executor.network.now + (delete_horizon or insert_horizon) * (
            0.15 + 0.6 * index / max(n - 1, 1)
        )
        executor.schedule_remove_node(n + index, at_time)
    row = _base_row("elastic", scheme, phase="scale-in", processors=f"{2 * n}->{n}")
    try:
        delete_phase = executor.delete_edges(deletions, label="scale-in")
    except SimulationBudgetExceeded:
        rows.append(_censored_row(row, executor))
        return rows
    stats = executor.placement_stats()
    rows.append(
        _metric_row(
            row,
            per_tuple_provenance=delete_phase.per_tuple_provenance_bytes,
            communication_mb=delete_phase.communication_mb,
            state_mb=delete_phase.state_mb,
            convergence_s=delete_phase.convergence_time_s,
            view_correct=executor.view_values() == truth_remaining,
            view_size=delete_phase.view_size,
            moved_state_KB=round(
                (stats["moved_state_bytes"] - out_stats["moved_state_bytes"]) / 1000.0, 2
            ),
            misrouted_batches=stats["misrouted_batches"] - out_stats["misrouted_batches"],
            misrouted_updates=stats["misrouted_updates"] - out_stats["misrouted_updates"],
            stale_epoch_messages=executor.network.stats.stale_epoch_messages,
            epoch=stats["epoch"],
        )
    )
    if config.per_node:
        rows.extend(_per_node_rows(executor, scheme, stage="after-scale-in"))
    return rows


# ---------------------------------------------------------------------------
# Chaos: the full fault plane, gated by parity against a fault-free reference
# ---------------------------------------------------------------------------

CHAOS_SCHEMES = ("Absorption Eager", "Absorption Lazy")


def run_chaos(
    config: ExperimentConfig = DEFAULT_CONFIG,
    schemes: Sequence[str] = CHAOS_SCHEMES,
) -> List[Row]:
    """The combined chaos workload, verified against a fault-free reference.

    One power-law (preferential-attachment) reachability workload — bulk
    insert, hub-skewed mixed churn, deletion storm — is run three ways:

    * **sim parity rows** (one per scheme): the configured chaos profile
      (link faults + crash storms + doomed recoveries + scaling storms) on
      the :class:`~repro.chaos.executor.ChaosExecutor`, asserted bit-identical
      (final view *and* canonical provenance) to a fault-free run;
    * **process parity row**: the ``kill`` profile — real worker SIGKILLs at
      virtual-time points plus link chaos — on the process backend, compared
      against the same fault-free sim reference;
    * **degraded row**: the ``degraded`` profile, whose recovery failures
      exceed the supervisor budget on purpose; the row shows the run
      *finishing* with stale-tagged views instead of crashing.
    """
    import tempfile

    from repro.chaos.parity import verify_process_parity, verify_sim_parity
    from repro.chaos.plan import ChaosPlan
    from repro.workloads.chaos import generate_chaos_workload

    workload = generate_chaos_workload(config.chaos_links, seed=config.chaos_seed)
    chaos_plan = ChaosPlan.profile(config.chaos_profile, seed=config.chaos_seed)
    rows: List[Row] = []
    for scheme in schemes:
        row = _base_row(
            "chaos", scheme, backend="sim", links=workload.total_links
        )
        try:
            report = verify_sim_parity(
                reachability_plan(),
                scheme,
                chaos_plan,
                workload,
                node_count=config.node_count,
                max_events=config.max_events,
            )
        except SimulationBudgetExceeded:
            row.update({"parity_passed": False, "converged": False})
            rows.append(row)
            continue
        row.update(report.as_row())
        rows.append(row)

    # Real SIGKILLs on the process backend, same fault-free reference.
    kill_plan = ChaosPlan.profile("kill", seed=config.chaos_seed)
    row = _base_row(
        "chaos", schemes[0], backend="process", links=workload.total_links
    )
    with tempfile.TemporaryDirectory(prefix="chaos-wal-") as wal_dir:
        try:
            report = verify_process_parity(
                reachability_plan(),
                schemes[0],
                kill_plan,
                workload,
                wal_dir=wal_dir,
                node_count=config.node_count,
                workers=config.workers or 3,
                max_events=config.max_events,
            )
            row.update(report.as_row())
        except (SimulationBudgetExceeded, SimulationError) as exc:
            row.update({"parity_passed": False, "converged": False, "error": str(exc)})
    rows.append(row)

    rows.append(_run_chaos_degraded(config, schemes[0], workload))
    return rows


def _run_chaos_degraded(config: ExperimentConfig, scheme: str, workload) -> Row:
    """The graceful-degradation row: budget exhaustion serves stale views."""
    from repro.chaos.executor import chaos_executor
    from repro.chaos.parity import apply_workload, schedule_chaos
    from repro.chaos.plan import ChaosPlan

    plan = ChaosPlan.profile("degraded", seed=config.chaos_seed)
    executor = chaos_executor(
        reachability_plan(),
        scheme,
        chaos_plan=plan,
        node_count=config.node_count,
        max_events=config.max_events,
        max_wall_seconds=config.max_wall_seconds,
    )
    row = _base_row("chaos", scheme, backend="sim", links=workload.total_links)
    # Degradation needs no reference horizon; scale the storm onto a guess
    # (the workload converges well past it either way).
    schedule_chaos(executor, plan, horizon=1.0)
    try:
        apply_workload(executor, workload)
    except SimulationBudgetExceeded:
        return _censored_row(row, executor)
    view, staleness = executor.view_with_staleness()
    row.update(executor.chaos_stats())
    row.update(
        {
            "parity_passed": "(n/a: degraded by design)",
            "view_size": len(view),
            "stale_partitions": len(staleness),
            "stale_since": [round(info.since, 4) for info in staleness.values()],
            "converged": True,
        }
    )
    return row


# ---------------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ---------------------------------------------------------------------------

def run_ablation_minship_batch(
    config: ExperimentConfig = DEFAULT_CONFIG,
    batch_sizes: Sequence[int] = (1, 5, 25, 100),
) -> List[Row]:
    """How the MinShip batching window trades bandwidth against freshness (Section 5)."""
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    rows: List[Row] = []
    for batch_size in batch_sizes:
        strategy = ExecutionStrategy.absorption_eager(batch_size=batch_size)
        executor = build_executor(
            reachability_plan(),
            strategy,
            node_count=config.node_count,
            max_events=config.max_events,
            max_wall_seconds=config.max_wall_seconds,
            experiment="ablation-minship",
        )
        row = _base_row("ablation-minship", strategy.label, batch_size=batch_size)
        try:
            phase = executor.insert_edges(links, label="insert")
        except SimulationBudgetExceeded:
            rows.append(_censored_row(row, executor))
            continue
        rows.append(
            _metric_row(
                row,
                per_tuple_provenance=phase.per_tuple_provenance_bytes,
                communication_mb=phase.communication_mb,
                state_mb=phase.state_mb,
                convergence_s=phase.convergence_time_s,
            )
        )
    return rows


def run_ablation_provenance_encoding(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Row]:
    """BDD vs minimised sum-of-products encoding sizes for the same provenance."""
    from repro.bdd.expr import BoolExpr

    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    executor = _executor(reachability_plan(), "Absorption Lazy", config)
    executor.insert_edges(links, label="insert")
    bdd_total = 0
    dnf_total = 0
    tuples = 0
    for node in executor.nodes:
        for view_tuple in node.fixpoint.view_tuples():
            annotation = node.fixpoint.annotation_of(view_tuple)
            bdd_total += annotation.size_bytes()
            dnf_total += BoolExpr.from_products(annotation.iter_products()).size_bytes()
            tuples += 1
    rows = [
        {
            "figure": "ablation-encoding",
            "encoding": "BDD (reduced ordered)",
            "tuples": tuples,
            "total_KB": round(bdd_total / 1000.0, 3),
            "mean_per_tuple_B": round(bdd_total / max(tuples, 1), 2),
        },
        {
            "figure": "ablation-encoding",
            "encoding": "minimised sum-of-products",
            "tuples": tuples,
            "total_KB": round(dnf_total / 1000.0, 3),
            "mean_per_tuple_B": round(dnf_total / max(tuples, 1), 2),
        },
    ]
    return rows


def run_ablation_centralized_maintenance(
    config: ExperimentConfig = DEFAULT_CONFIG,
) -> List[Row]:
    """Distributed incremental maintenance vs centralized recomputation per deletion."""
    topology = _topology(config, dense=True)
    links = topology.link_tuples()
    deletions = deletion_sample(links, 0.2, seed=config.seed)

    executor = _executor(reachability_plan(), "Absorption Lazy", config)
    executor.insert_edges(links, label="preload")
    start = time.perf_counter()
    phase = executor.delete_edges(deletions, label="delete")
    incremental_wall = time.perf_counter() - start

    evaluator = CentralizedRecursiveEvaluator(reachability_plan())
    live = [l for l in links if l not in set(deletions)]
    start = time.perf_counter()
    recomputed = evaluator.evaluate(live)
    recompute_wall = time.perf_counter() - start
    assert {t.values for t in recomputed} == executor.view_values()

    return [
        {
            "figure": "ablation-centralized",
            "approach": "distributed incremental (Absorption Lazy)",
            "deletions": len(deletions),
            "communication_MB": round(phase.communication_mb, 6),
            "convergence_time_s": round(phase.convergence_time_s, 6),
            "wall_seconds": round(incremental_wall, 3),
            "view_size": phase.view_size,
        },
        {
            "figure": "ablation-centralized",
            "approach": "centralized recompute from scratch",
            "deletions": len(deletions),
            "communication_MB": 0.0,
            "convergence_time_s": float("nan"),
            "wall_seconds": round(recompute_wall, 3),
            "view_size": len(recomputed),
        },
    ]


def run_batch_throughput(
    config: ExperimentConfig = DEFAULT_CONFIG,
    schemes: Sequence[str] = ("Absorption Lazy", "Absorption Eager"),
) -> List[Row]:
    """Batch-first pipeline vs tuple-at-a-time on the figure-11/12 workload.

    Runs each scheme twice over the largest figure-11/12 dense topology —
    once with the configured batch policy, once with the historical
    one-update-per-message pipeline — inserting every link (the figure-11
    workload) and then deleting ``config.batch_deletion_ratio`` of them (the
    figure-12 topology at a figure-8-style deletion ratio).  Reported per
    run, for the *deletion* phase (the maintenance phase figure 12 reports):

    * ``bdd_apply_ops`` — BDD apply work: binary-apply plus restriction
      steps performed by the shared manager (restriction is the
      zero-out-the-variable apply of Section 4);
    * ``purge_messages`` — purge-port wire messages (the broadcast
      deletion traffic batching coalesces);
    * ``messages`` / ``communication_MB`` / ``wall_seconds`` / ``view_size``.

    The paired rows are what the batch-throughput benchmark asserts over:
    >= 2x fewer BDD apply ops and purge messages with batching on, with
    identical final views.
    """
    budget = max(config.link_budgets)
    topology = topology_with_link_budget(budget, dense=True, seed=config.seed)
    links = topology.link_tuples()
    deletions = deletion_sample(links, config.batch_deletion_ratio, seed=config.seed)
    policies = (
        ("batched", _batch_policy(config)),
        ("tuple-at-a-time", BatchPolicy.tuple_at_a_time()),
    )
    rows: List[Row] = []
    for scheme in schemes:
        for pipeline, policy in policies:
            executor = _executor(
                reachability_plan(), scheme, config, batch_policy=policy
            )
            row = _base_row(
                "batch-throughput",
                scheme,
                pipeline=pipeline,
                links=len(links),
                deletions=len(deletions),
            )
            wall_start = time.perf_counter()
            try:
                executor.insert_edges(links, label="preload")
                before = executor.store.cache_stats()
                phase = executor.delete_edges(deletions, label="delete")
            except SimulationBudgetExceeded:
                rows.append(_censored_row(row, executor))
                continue
            after = executor.store.cache_stats()
            stats = executor.network.stats
            rows.append(
                _metric_row(
                    row,
                    per_tuple_provenance=phase.per_tuple_provenance_bytes,
                    communication_mb=phase.communication_mb,
                    state_mb=phase.state_mb,
                    convergence_s=phase.convergence_time_s,
                    bdd_apply_ops=(
                        (after["apply_calls"] - before["apply_calls"])
                        + (after["restrict_calls"] - before["restrict_calls"])
                    ),
                    purge_messages=stats.message_counts_by_port.get("purge", 0),
                    messages=stats.total_messages,
                    coalesced_deliveries=executor.network.coalesced_deliveries,
                    wall_seconds=round(time.perf_counter() - wall_start, 3),
                    view_size=phase.view_size,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Explain: derivation provenance of one view tuple (the --explain path)
# ---------------------------------------------------------------------------

#: Experiments whose workload the explain driver can rebuild deterministically
#: (all reachability-plan figures sharing the transit-stub topology).
_EXPLAINABLE_PLANS = {
    "figure7": reachability_plan,
    "figure8": reachability_plan,
    "figure11": reachability_plan,
    "figure12": reachability_plan,
    "figure13": reachability_plan,
}


def run_explain(
    config: ExperimentConfig = DEFAULT_CONFIG,
    target: str = "auto",
    experiment: str = "figure7",
    scheme: str = "Absorption Lazy",
):
    """Load an experiment's insertion workload and explain one view tuple.

    Rebuilds the experiment's (seeded, deterministic) dense topology, runs the
    full insertion phase under ``scheme``, and returns the
    :class:`~repro.obs.explain.Explanation` of ``target`` — a
    ``"relation(arg, ...)"`` string, or ``"auto"`` for the lexicographically
    first view tuple (handy for smoke tests).  Works on whichever backend the
    config selects; the process backend aggregates per-worker answers.
    """
    plan_factory = _EXPLAINABLE_PLANS.get(experiment)
    if plan_factory is None:
        raise SystemExit(
            f"--explain supports {sorted(_EXPLAINABLE_PLANS)}; got {experiment!r}"
        )
    topology = _topology(config, dense=True)
    executor = _executor(plan_factory(), scheme, config)
    try:
        executor.insert_edges(topology.link_tuples(), label="explain-load")
        if target == "auto":
            view = executor.view()
            if not view:
                raise SystemExit("the view is empty; nothing to explain")
            target = min(view, key=lambda t: t.key)
        return executor.explain(target)
    finally:
        executor.close()
