"""Experiment sizing.

The paper runs on a 100-node GT-ITM topology (≈400 directed links), a
100 m x 100 m sensor grid, and 12-24 physical query processors.  The
reproduction's engine is a pure-Python discrete-event simulation, so the
default benchmark configuration scales the *data* down while keeping every
structural parameter (transit-stub shape, dense/sparse ratio, seed-group
count, processor counts) so the comparative shapes of the figures are
preserved.  ``DEFAULT_CONFIG`` is what the ``benchmarks/`` suite runs;
``PAPER_SCALE_CONFIG`` reproduces the paper's sizes for anyone willing to wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the per-figure experiment drivers."""

    #: Query-processor cluster size (the paper's default is 12).
    node_count: int = 12
    #: Transit-stub shape: nodes per stub (the paper uses 8 -> 100 routers; the
    #: default benchmark scale uses 2 -> 28 routers, see EXPERIMENTS.md).
    nodes_per_stub: int = 2
    #: Stubs per transit router.
    stubs_per_transit: int = 3
    #: Transit routers per transit domain.
    transit_nodes_per_domain: int = 4
    #: Insertion ratios swept by Figures 7 and 9.
    insertion_ratios: Tuple[float, ...] = (0.5, 0.75, 1.0)
    #: Deletion ratios swept by Figures 8 and 10.
    deletion_ratios: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
    #: Directed-link budgets swept by Figures 11 and 12 (paper: 100..800).
    #: Each budget snaps to the nearest generatable transit-stub topology;
    #: budgets that snap to the same topology are deduplicated by the driver.
    link_budgets: Tuple[int, ...] = (60, 110)
    #: Processor counts swept by Figure 13 (paper: up to 24).
    processor_counts: Tuple[int, ...] = (4, 8, 12, 16, 24)
    #: Sensor-grid side length in metres (paper: 100 m x 100 m field).
    sensor_field_side: float = 40.0
    sensor_spacing: float = 10.0
    #: Proximity radius k in metres (paper: 20 m over a 100 m field; the
    #: default benchmark grid is smaller, and 15 m keeps each sensor's
    #: neighbourhood (~8 sensors) proportionally comparable).
    sensor_proximity_radius: float = 15.0
    sensor_seed_groups: int = 5
    #: Hop bound used by the shortest-path query when AggSel is disabled.
    path_hop_bound: int = 5
    #: Random seed shared by every generator (reproducibility).
    seed: int = 7
    #: Hard cap on simulated events per run (guards non-terminating schemes).
    max_events: int = 3_000_000
    #: Wall-clock budget per run in seconds; runs that exceed it are reported
    #: as "did not converge", mirroring the paper's ">5 minutes" data points.
    max_wall_seconds: float = 60.0
    #: Crash/recover cycles injected by the churn experiment.
    churn_cycles: int = 1
    #: Fraction of each churn cycle's slot a crashed node stays down.
    churn_downtime: float = 0.3
    #: Deliveries between periodic checkpoints under checkpoint+replay.
    churn_checkpoint_interval: int = 20
    #: Maximum updates per injected/coalesced message (1 = tuple-at-a-time).
    batch_size: int = 64
    #: Ports handled batch-wise at the nodes; ``None`` batches every port.
    batch_ports: Optional[Tuple[str, ...]] = None
    #: Base-deletion fraction used by the batch-throughput experiment (the
    #: figure-12 topology with a figure-8-style deletion ratio).
    batch_deletion_ratio: float = 0.4
    #: Virtual nodes per processor on the elastic consistent-hash ring.
    virtual_nodes: int = 64
    #: Base-deletion fraction used by the elastic experiment's scale-in phase.
    elastic_deletion_ratio: float = 0.3
    #: Hotspot workload shape for the elastic experiment (hub-and-spoke link
    #: stream with ``hotspot_bias`` of the extra links touching a hub).
    hotspot_spokes: int = 10
    hotspot_hubs: int = 2
    hotspot_bias: float = 0.8
    hotspot_extra_links: int = 20
    #: Append per-node traffic/state rows to experiment reports (skew view).
    per_node: bool = False
    #: Dead-node fraction of the BDD node table that triggers a compacting
    #: garbage collection in the absorption strategies' annotation kernel
    #: (0 disables automatic GC; see ``BDDManager``).
    bdd_gc_threshold: float = 0.25
    #: Execution backend: ``"sim"`` runs every node handler on this
    #: interpreter thread; ``"process"`` shards the nodes across real OS
    #: worker processes with bit-identical results (see ``repro.parallel``).
    backend: str = "sim"
    #: Worker-process count for the process backend (0 = one per CPU core).
    workers: int = 0
    #: Seed for the chaos experiment's fault plan AND its power-law workload.
    chaos_seed: int = 11
    #: Named chaos profile swept by the ``chaos`` experiment's sim parity
    #: rows (``none``, ``link``, ``storm``, ``full``, ``degraded``, ``kill``).
    chaos_profile: str = "full"
    #: Power-law workload size (total directed links) for the chaos runs.
    #: Reachability views grow ~quadratically in the hub-heavy chaos graph,
    #: and every parity row pays for a reference run *plus* a chaos run, so
    #: the default stays modest; ``PAPER_SCALE_CONFIG`` carries the 10-100x
    #: topology-scale sweep.
    chaos_links: int = 48

    def describe(self) -> str:
        """One-line description used in benchmark output headers."""
        batching = (
            f"batch<= {self.batch_size}" if self.batch_size > 1 else "tuple-at-a-time"
        )
        backend = "in-process"
        if self.backend == "process":
            workers = self.workers or "per-core"
            backend = f"process x{workers}"
        return (
            f"{self.node_count} processors, {self.nodes_per_stub} nodes/stub, "
            f"{batching}, {backend}, seed={self.seed}"
        )


#: Default, laptop-friendly configuration used by the pytest benchmarks.
DEFAULT_CONFIG = ExperimentConfig()

#: Very small configuration for smoke tests of the harness itself.
QUICK_CONFIG = ExperimentConfig(
    node_count=6,
    nodes_per_stub=2,
    stubs_per_transit=2,
    insertion_ratios=(0.5, 1.0),
    deletion_ratios=(0.5, 1.0),
    link_budgets=(30, 40),
    processor_counts=(4, 8),
    sensor_field_side=30.0,
    max_events=1_000_000,
    max_wall_seconds=30.0,
    hotspot_spokes=8,
    hotspot_extra_links=12,
    chaos_links=48,
)

#: The paper's own scale (slow in pure Python; provided for completeness).
PAPER_SCALE_CONFIG = ExperimentConfig(
    nodes_per_stub=8,
    link_budgets=(100, 200, 400, 800),
    sensor_field_side=100.0,
    max_wall_seconds=600.0,
    chaos_links=400,
)
