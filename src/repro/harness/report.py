"""Formatting of experiment result rows.

Every experiment driver returns a list of flat dictionaries (one per scheme
per x-axis point).  ``format_rows`` renders them as an aligned text table —
the same series the paper plots — and ``rows_to_csv`` produces a CSV string
for further processing/plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Sequence

Row = Dict[str, object]


def _columns(rows: Sequence[Row]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_rows(rows: Sequence[Row], title: str = "") -> str:
    """Render rows as an aligned text table (empty string for no rows)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = _columns(rows)
    rendered = [[_render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(line)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render rows as CSV text (header row first).

    Serialized through the stdlib :mod:`csv` writer so values containing
    commas, quotes or newlines (e.g. ``processors="8->16"``-style labels or
    parenthesised budget markers) are quoted correctly instead of corrupting
    the column structure.
    """
    if not rows:
        return ""
    columns = _columns(rows)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_render(row.get(column, "")) for column in columns])
    return buffer.getvalue()


def print_figure(rows: Sequence[Row], title: str) -> None:
    """Print a figure's table to stdout (used by benchmarks and examples)."""
    print()
    print(format_rows(rows, title=title))
    print()


def format_kernel_stats(stats: Dict[str, object], label: str = "") -> str:
    """One-line rendering of annotation-kernel telemetry.

    Accepts either a :meth:`repro.bdd.manager.BDDManager.gc_stats` mapping or
    the flattened ``kernel_*`` columns of a phase row; used by
    ``scripts/perf_check.py`` and ad-hoc diagnostics.
    """

    def pick(*names: str, default: object = 0) -> object:
        for name in names:
            if name in stats:
                return stats[name]
        return default

    parts = [
        f"table={pick('table_size', 'kernel_table_size')}",
        f"peak={pick('peak_table_size', 'kernel_peak_table')}",
        f"reclaimed={pick('nodes_reclaimed', 'kernel_reclaimed')}",
        f"gc_passes={pick('gc_passes', 'kernel_gc_passes')}",
        f"gc_pause={float(pick('gc_pause_s', 'kernel_gc_pause_s')):.4f}s",
        f"kernel={float(pick('kernel_time_s')):.4f}s",
        f"routing={float(pick('routing_time_s')):.4f}s",
        f"operator={float(pick('operator_time_s')):.4f}s",
        f"net={float(pick('net_time_s')):.4f}s",
    ]
    prefix = f"{label}: " if label else ""
    return prefix + " ".join(parts)
