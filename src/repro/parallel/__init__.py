"""Shared-nothing multi-core execution backend.

The simulated cluster of :mod:`repro.net.simulator` runs every node handler on
one interpreter thread; this package runs the *same* engine across real OS
processes while keeping the run **bit-identical** to the single-process
backend:

* :mod:`repro.parallel.envelope` — the pickled command/result wire protocol
  (annotations cross the queues through the manager-independent BDD codec);
* :mod:`repro.parallel.worker` — the per-process worker runtime: a slice of
  the cluster's nodes, its own ``BDDManager``, operators, tracer, metrics and
  optional command WAL;
* :mod:`repro.parallel.scheduler` — :class:`ProcessCoordinator`, the
  deterministic virtual-clock scheduler that dispatches deliveries to workers
  only when no still-running handler could affect their position in the
  ``(time, seq)`` total order;
* :mod:`repro.parallel.backend` — :class:`ProcessExecutor`, the drop-in
  :class:`~repro.engine.executor.DistributedViewExecutor` running over a
  worker pool (``build_executor(..., backend="process", workers=N)``).
"""

from repro.parallel.backend import ProcessExecutor
from repro.parallel.scheduler import ProcessCoordinator

__all__ = ["ProcessExecutor", "ProcessCoordinator"]
