"""The per-process worker runtime of the shared-nothing backend.

Each worker owns a contiguous *slice of the cluster* — every node whose id
hashes to it — with its **own** provenance store (one ``BDDManager`` per
process), its own operators, router telemetry, tracer, metrics registry and
optional command WAL.  Nothing is shared with the coordinator or with other
workers; the only communication is the pickled command/result protocol of
:mod:`repro.parallel.envelope`.

The worker is deliberately *passive*: it never advances virtual time and
never talks to a peer worker.  Handlers call ``network.send`` exactly as they
do in-process, but here the network is :class:`WorkerNetwork` — a stub that
records each send into an outbox which rides back to the coordinator on the
command's result.  The coordinator replays those sends into its own event
queue, which is the single source of ``(time, seq)`` ordering truth.
"""

from __future__ import annotations

import os
import signal
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.data.update import Update
from repro.engine.routing import RoutingStats
from repro.engine.runtime import ProcessorNode
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer, install_tracer
from repro.operators.ship import MinShipOperator, ShipMode
from repro.parallel.envelope import WorkerInit, decode_updates, encode_updates


class _WorkerStats:
    """The slice of ``NetworkStats`` a node actually writes through its transport.

    Pure per-command accumulators — the coordinator folds the deltas into the
    real :class:`~repro.net.stats.NetworkStats` when it applies the result, so
    totals are identical to the in-process run (both are order-insensitive
    sums).
    """

    __slots__ = ("provenance_bytes", "provenance_annotations")

    def __init__(self) -> None:
        self.provenance_bytes = 0
        self.provenance_annotations = 0

    def record_provenance(self, annotation_bytes: int, count: int = 1) -> None:
        self.provenance_bytes += annotation_bytes
        self.provenance_annotations += count

    def take(self):
        taken = (self.provenance_bytes, self.provenance_annotations)
        self.provenance_bytes = 0
        self.provenance_annotations = 0
        return taken


class WorkerNetwork:
    """The :class:`~repro.net.transport.Transport` a worker's nodes send through.

    ``send`` does no scheduling at all: it encodes the batch's annotations
    through the store codec and appends one outbox entry.  The coordinator —
    the only holder of the virtual clock — turns outbox entries back into
    queue events with the exact semantics of ``SimulatedNetwork.send``.
    """

    def __init__(self, node_count: int, store, tracer=None) -> None:
        self.node_count = node_count
        self._store = store
        self.stats = _WorkerStats()
        self.tracer = tracer
        #: Static process runs never change placement: epoch stays 0, exactly
        #: like a ``SimulatedNetwork`` without an epoch provider.
        self.current_epoch = 0
        self.outbox: List[tuple] = []

    def active_nodes(self) -> List[int]:
        return list(range(self.node_count))

    def send(
        self,
        src: int,
        dst: int,
        port: str,
        updates: Sequence[Update],
        size_bytes: int,
        at_time: Optional[float] = None,
    ) -> None:
        if at_time is None:
            raise RuntimeError("worker-side sends must carry an explicit at_time")
        self.outbox.append(
            (src, dst, port, encode_updates(self._store, updates), size_bytes, at_time)
        )

    def take_outbox(self) -> List[tuple]:
        taken = self.outbox
        self.outbox = []
        return taken


class _ResultChannel:
    """``put`` adapter over the worker's private result pipe.

    Results travel over a per-worker ``mp.Pipe`` rather than a shared
    ``mp.Queue``: queue writers share one cross-process lock and a feeder
    thread, so a chaos SIGKILL could freeze the lock mid-release and wedge
    every other worker.  ``Connection.send`` runs synchronously on this
    worker's own pipe — nothing shared, nothing to poison.
    """

    __slots__ = ("conn",)

    def __init__(self, conn) -> None:
        self.conn = conn

    def put(self, item) -> None:
        self.conn.send(item)


class Worker:
    """One worker process: a node slice plus its private engine substrate."""

    def __init__(self, init: WorkerInit, result_queue) -> None:
        self.init = init
        self.wid = init.wid
        self.result_queue = result_queue
        #: The worker's recorder: a full Tracer when the run is traced, a
        #: bounded FlightRecorder when the coordinator runs one, else None.
        #: Both share the recording surface the hot paths use.
        self.tracer = None
        self.flight = None
        recorder = None
        if init.traced:
            self.tracer = recorder = Tracer()
        elif init.flight:
            from repro.obs.flight import FlightRecorder

            self.flight = recorder = FlightRecorder()
        if recorder is not None:
            install_tracer(recorder)
        self._recorder = recorder
        self.store = init.strategy.create_store()
        self.routing_stats = RoutingStats()
        self.network = WorkerNetwork(init.node_count, self.store, tracer=recorder)
        self.nodes: Dict[int, ProcessorNode] = {
            node_id: ProcessorNode(
                node_id,
                init.plan,
                init.strategy,
                self.store,
                init.partitioner,
                self.network,
                batch_policy=init.batch_policy,
                routing_stats=self.routing_stats,
            )
            for node_id in init.owned_nodes()
        }
        self.deliveries = 0
        self.updates_handled = 0
        self.busy_seconds = 0.0
        self.wal = None
        if init.wal_path is not None:
            from repro.fault.worker_wal import CommandLog

            self.wal = CommandLog(init.wal_path)
        self.registry = self._build_registry()

    def _build_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.register_probe(
            "kernel", lambda: self.store.kernel_stats() or {}
        )

        def fixpoint_probe():
            rollup = None
            for node in self.nodes.values():
                histogram = node.fixpoint.delta_histogram
                if rollup is None:
                    rollup = Histogram(histogram.name)
                rollup.merge(histogram)
            return rollup.as_flat() if rollup is not None else {}

        registry.register_probe("fixpoint", fixpoint_probe)
        registry.register_probe(
            "work",
            lambda: {
                "deliveries": self.deliveries,
                "updates": self.updates_handled,
                "busy_seconds": round(self.busy_seconds, 6),
                "nodes": len(self.nodes),
            },
        )
        if self.wal is not None:
            registry.register_probe("wal", lambda: {"appended": self.wal.appended})
        return registry

    # -- command execution -------------------------------------------------------
    def deliver(self, command, emit: bool = True, log: bool = True) -> None:
        """Run one handler; ship its outbox and telemetry back as the result."""
        _, delivery_id, node_id, port, updates, now = command
        node = self.nodes[node_id]
        decoded = decode_updates(self.store, updates)
        tracer = self._recorder
        span = None
        if tracer is not None:
            span = tracer.begin(
                node_id, f"deliver:{port}", "net", sim_ts=now,
                args={"updates": len(decoded), "worker": self.wid},
            )
            tracer.set_node_context(node_id)
        wall_start = perf_counter()
        try:
            node.handle(port, decoded, now)
        finally:
            handler_seconds = perf_counter() - wall_start
            if tracer is not None:
                tracer.clear_node_context()
                tracer.end(span)
        self.deliveries += 1
        self.updates_handled += len(decoded)
        self.busy_seconds += handler_seconds
        outbox = self.network.take_outbox()
        prov_bytes, prov_count = self.network.stats.take()
        if log and self.wal is not None:
            self.wal.append(command)
        if emit:
            self.result_queue.put(
                ("result", delivery_id, self.wid, outbox,
                 handler_seconds, prov_bytes, prov_count)
            )

    def flush(self, command, emit: bool = True, log: bool = True) -> None:
        """Timer tick for every eager MinShip this worker hosts, in node order."""
        _, rpc_id, now = command
        segments = []
        released_total = 0
        wall_start = perf_counter()
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if not (isinstance(node.ship, MinShipOperator) and node.ship.mode is ShipMode.EAGER):
                continue
            released = node.flush_ship(now)
            outbox = self.network.take_outbox()
            if outbox:
                segments.append((node_id, outbox))
            released_total += released
        self.busy_seconds += perf_counter() - wall_start
        prov_bytes, prov_count = self.network.stats.take()
        if log and self.wal is not None:
            self.wal.append(command)
        if emit:
            self.result_queue.put(
                ("rpc", rpc_id, self.wid,
                 (segments, released_total, prov_bytes, prov_count))
            )

    def clear_join_left(self, command, emit: bool = True, log: bool = True) -> None:
        _, rpc_id, node_id = command
        self.nodes[node_id].join.clear_left()
        if log and self.wal is not None:
            self.wal.append(command)
        if emit:
            self.result_queue.put(("rpc", rpc_id, self.wid, None))

    # -- quiescent reads -----------------------------------------------------------
    def views(self, rpc_id) -> None:
        payload = {
            node_id: frozenset(node.view_tuples()) for node_id, node in self.nodes.items()
        }
        self.result_queue.put(("rpc", rpc_id, self.wid, payload))

    def view_annotations(self, rpc_id) -> None:
        """Canonical (manager-independent) eager provenance of the local view slice."""
        from repro.provenance.tracker import canonical_annotation

        payload = {}
        for node in self.nodes.values():
            for tuple_, annotation in node.fixpoint.provenance.items():
                payload[tuple_] = canonical_annotation(self.store, annotation)
        self.result_queue.put(("rpc", rpc_id, self.wid, payload))

    def state_bytes(self, rpc_id) -> None:
        payload = {node_id: node.state_bytes() for node_id, node in self.nodes.items()}
        self.result_queue.put(("rpc", rpc_id, self.wid, payload))

    def kernel_stats(self, rpc_id) -> None:
        self.result_queue.put(("rpc", rpc_id, self.wid, self.store.kernel_stats()))

    def collect(self, rpc_id, force: bool) -> None:
        self.store.collect(force=force)
        self.result_queue.put(("rpc", rpc_id, self.wid, None))

    def metrics(self, rpc_id) -> None:
        self.result_queue.put(("rpc", rpc_id, self.wid, self.registry.materialize()))

    def routing(self, rpc_id) -> None:
        snapshot = self.routing_stats.snapshot(self.init.partitioner)
        self.result_queue.put(("rpc", rpc_id, self.wid, snapshot))

    def explain(self, rpc_id, target) -> None:
        """Canonical minimal products of one view tuple, if a local node holds it."""
        from repro.provenance.tracker import canonical_annotation

        payload = None
        for node in self.nodes.values():
            annotation = node.view_annotation(target)
            if annotation is not None:
                payload = canonical_annotation(self.store, annotation)
                break
        self.result_queue.put(("rpc", rpc_id, self.wid, payload))

    def flight_snapshot(self, rpc_id) -> None:
        """Non-destructive snapshot of the flight-recorder rings (post-mortem read)."""
        if self.flight is None:
            self.result_queue.put(("rpc", rpc_id, self.wid, None))
            return
        self.result_queue.put(
            ("rpc", rpc_id, self.wid,
             (self.flight.snapshot_records(), self.flight._t0, os.getpid()))
        )

    def trace(self, rpc_id) -> None:
        """Drain this worker's trace events (with clock origin and real pid)."""
        if self.tracer is None:
            self.result_queue.put(("rpc", rpc_id, self.wid, None))
            return
        events = self.tracer.events
        tracks = sorted(self.tracer._tracks)
        self.tracer.events = []
        self.result_queue.put(
            ("rpc", rpc_id, self.wid, (events, tracks, self.tracer._t0, os.getpid()))
        )

    def replay(self, rpc_id, unacked_deliveries, unacked_rpcs, doom_after=None) -> None:
        """Rebuild state from the command WAL after a respawn.

        Every logged command re-executes (handlers are deterministic, so the
        rebuilt state is bit-identical); results are suppressed except for
        logged-but-unacked commands — deliveries whose regenerated outboxes
        the coordinator is still waiting for, and the flush/clear RPC the
        worker died under (re-emitted with its original rpc id, exactly once).
        Replayed commands are not re-logged.

        ``doom_after`` is the chaos plane's double-fault hook: after replaying
        that many WAL entries (or at the end, for shorter WALs) the worker
        kills itself with SIGKILL *before* acknowledging the replay, so the
        coordinator observes a worker that died during recovery.  The suicide
        is self-inflicted rather than coordinator-sent so the death lands at
        a deterministic point between sends, never mid-``send`` — the result
        pipe is left whole, not torn.
        """
        found = set()
        replayed = 0
        for command in type(self.wal).replay(self.wal.path) if self.wal else ():
            op = command[0]
            if op == "deliver":
                delivery_id = command[1]
                emit = delivery_id in unacked_deliveries
                if emit:
                    found.add(delivery_id)
                self.deliver(command, emit=emit, log=False)
            elif op == "flush":
                emit = command[1] in unacked_rpcs
                if emit:
                    found.add(command[1])
                self.flush(command, emit=emit, log=False)
            elif op == "clear_join_left":
                emit = command[1] in unacked_rpcs
                if emit:
                    found.add(command[1])
                self.clear_join_left(command, emit=emit, log=False)
            replayed += 1
            if doom_after is not None and replayed >= doom_after:
                self._chaos_self_kill()
        if doom_after is not None:
            # The WAL was shorter than the doom point; die anyway — a doomed
            # attempt must never acknowledge the replay.
            self._chaos_self_kill()
        if os.environ.get("REPRO_CHAOS_DEBUG"):
            import sys

            print(
                f"[chaos-debug pid={os.getpid()}] worker {self.wid} replay done "
                f"rpc_id={rpc_id} replayed={replayed} found={len(found)}",
                file=sys.stderr,
                flush=True,
            )
        self.result_queue.put(("rpc", rpc_id, self.wid, found))

    def _chaos_self_kill(self) -> None:
        """Die by SIGKILL between sends — the private result pipe stays whole."""
        os.kill(os.getpid(), signal.SIGKILL)

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, command) -> bool:
        """Execute one command; returns False when the worker should exit."""
        op = command[0]
        if op == "deliver":
            self.deliver(command)
        elif op == "flush":
            self.flush(command)
        elif op == "clear_join_left":
            self.clear_join_left(command)
        elif op == "views":
            self.views(command[1])
        elif op == "view_annotations":
            self.view_annotations(command[1])
        elif op == "state_bytes":
            self.state_bytes(command[1])
        elif op == "kernel_stats":
            self.kernel_stats(command[1])
        elif op == "collect":
            self.collect(command[1], command[2])
        elif op == "metrics":
            self.metrics(command[1])
        elif op == "routing":
            self.routing(command[1])
        elif op == "trace":
            self.trace(command[1])
        elif op == "explain":
            self.explain(command[1], command[2])
        elif op == "flight":
            self.flight_snapshot(command[1])
        elif op == "replay":
            self.replay(command[1], command[2], command[3], command[4])
        elif op == "shutdown":
            return False
        else:
            raise RuntimeError(f"unknown worker command {op!r}")
        return True


def worker_main(init: WorkerInit, command_queue, result_conn) -> None:
    """Entry point of a spawned worker process (must stay module-level picklable)."""
    result_queue = _ResultChannel(result_conn)
    try:
        worker = Worker(init, result_queue)
    except BaseException:
        result_queue.put(("error", None, init.wid, traceback.format_exc()))
        return
    if os.environ.get("REPRO_CHAOS_DEBUG"):
        import sys

        print(
            f"[chaos-debug pid={os.getpid()}] worker {init.wid} booted",
            file=sys.stderr,
            flush=True,
        )
    while True:
        command = command_queue.get()
        try:
            if not worker.dispatch(command):
                break
        except BaseException:
            ref_id = command[1] if len(command) > 1 else None
            result_queue.put(("error", ref_id, init.wid, traceback.format_exc()))
    if worker.wal is not None:
        worker.wal.close()
