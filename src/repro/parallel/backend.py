"""``ProcessExecutor`` — the multi-core drop-in for ``DistributedViewExecutor``.

Same constructor surface, same workload API, same metrics; the difference is
*where handlers run*.  The simulated nodes are sharded across real OS worker
processes (``workers`` of them), each owning a private ``BDDManager``,
operators, tracer, metrics registry and optional command WAL, while the
coordinator keeps the virtual clock and the deterministic ``(time, seq)``
total order (see :mod:`repro.parallel.scheduler` for the bit-identity
argument).  ``build_executor(..., backend="process", workers=N)`` is the
front door.

Constraints of this backend (all raise immediately, never desynchronize):

* the plan/strategy/partitioner must pickle (lambda-captured plan variants
  like ``shortest_path_plan`` do not — the in-process backend still runs
  them);
* static hash placement only (no elastic re-partitioning, simulated node
  faults or control events mid-run — the fault surface of this backend is
  *real*: scheduled worker SIGKILLs with WAL-replay respawn, see
  ``ProcessCoordinator.schedule_worker_kill``);
* runs go to quiescence (``run(until=...)`` is a coordinator-only notion).
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Optional, Set

from repro.data.batch import BatchPolicy
from repro.data.tuples import Tuple
from repro.engine.executor import DistributedViewExecutor
from repro.engine.plan import RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy
from repro.net.latency import LatencyModel
from repro.net.partition import HashPartitioner
from repro.net.simulator import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, current_tracer
from repro.operators.ship import ShipMode
from repro.parallel.envelope import TRACE_PID_STRIDE, WorkerInit
from repro.parallel.scheduler import ProcessCoordinator

#: Backwards-compatible alias; the constant lives in the protocol layer now.
_TRACE_PID_STRIDE = TRACE_PID_STRIDE

#: Kernel-stat keys that take the max when merging workers; everything else
#: numeric sums (table sizes and counters add across disjoint managers).
_KERNEL_MAX_KEYS = frozenset({"gc_max_pause_s"})
_KERNEL_FIRST_KEYS = frozenset({"gc_threshold"})


class _ClusterStore:
    """The executor-facing provenance-store facade of the process backend.

    Nodes never touch this — each worker's nodes use that worker's real
    store.  The executor only needs the kernel-telemetry surface, answered by
    RPC-gathering every worker's manager at quiescent points (which is the
    only time the executor reads it).
    """

    def __init__(self, executor: "ProcessExecutor") -> None:
        self._executor = executor

    #: The executor's phase machinery treats a ``None`` kernel_stats() as
    #: "kernel-less strategy"; workers answer authoritatively.
    def kernel_stats(self) -> Optional[Dict[str, object]]:
        replies = [
            reply
            for reply in self._executor._coordinator.broadcast("kernel_stats")
            if reply is not None
        ]
        if not replies:
            return None
        merged: Dict[str, object] = {}
        for reply in replies:
            for key, value in reply.items():
                if key in _KERNEL_FIRST_KEYS:
                    merged.setdefault(key, value)
                elif key in _KERNEL_MAX_KEYS:
                    merged[key] = max(merged.get(key, value), value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged

    def collect(self, force: bool = False) -> None:
        """A cluster-wide GC pass (each worker collects its own manager)."""
        self._executor._coordinator.broadcast("collect", force)

    @property
    def kernel_clock(self) -> float:
        return 0.0


class _ClusterRoutingStats:
    """Routing telemetry summed across the workers plus the coordinator side."""

    def __init__(self, executor: "ProcessExecutor") -> None:
        self._executor = executor

    def snapshot(self, partitioner) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for reply in self._executor._coordinator.broadcast("routing"):
            for key, value in reply.items():
                merged[key] = merged.get(key, 0) + value
        # The coordinator's own partitioner serves the injection path
        # (owner resolution in ``_inject_batches``); fold its counters in so
        # the totals match what the in-process run attributes to routing.
        for key, value in partitioner.routing_stats().items():
            merged[key] = merged.get(key, 0) + value
        return merged


class _NodeProxy:
    """The thin slice of ``ProcessorNode`` cross-process components touch.

    Only the DRed coordinator reaches into nodes mid-protocol — and only to
    clear join-left state between over-deletion and re-derivation.  Everything
    else (views, state sizes) goes through the executor's batched RPCs.
    """

    class _JoinProxy:
        def __init__(self, executor: "ProcessExecutor", node_id: int) -> None:
            self._executor = executor
            self._node_id = node_id

        def clear_left(self) -> None:
            coordinator = self._executor._coordinator
            coordinator.rpc(
                coordinator.worker_for(self._node_id), "clear_join_left", self._node_id
            )

    def __init__(self, executor: "ProcessExecutor", node_id: int) -> None:
        self.node_id = node_id
        self.join = _NodeProxy._JoinProxy(executor, node_id)


class ProcessExecutor(DistributedViewExecutor):
    """Runs the distributed view over a pool of shared-nothing worker processes."""

    def __init__(
        self,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        node_count: int = 12,
        latency_model: Optional[LatencyModel] = None,
        partitioner: Optional[HashPartitioner] = None,
        processing_cost: float = 0.00002,
        max_events: int = 5_000_000,
        max_wall_seconds: Optional[float] = None,
        experiment: str = "experiment",
        batch_policy: Optional[BatchPolicy] = None,
        workers: Optional[int] = None,
        wal_dir=None,
    ) -> None:
        if partitioner is not None and type(partitioner) is not HashPartitioner:
            raise SimulationError(
                "the process backend supports static hash placement only "
                f"(got {type(partitioner).__name__})"
            )
        try:
            pickle.dumps((plan, strategy, batch_policy, partitioner))
        except Exception as exc:
            raise SimulationError(
                f"plan {plan.name!r} cannot cross a process boundary ({exc}); "
                "use the in-process backend for it"
            ) from None
        requested = workers or (os.cpu_count() or 1)
        cluster = partitioner.node_count if partitioner is not None else node_count
        self.workers = max(1, min(requested, cluster))
        self._wal_dir = wal_dir
        self._coordinator: Optional[ProcessCoordinator] = None
        super().__init__(
            plan,
            strategy,
            node_count=node_count,
            latency_model=latency_model,
            partitioner=partitioner,
            processing_cost=processing_cost,
            max_events=max_events,
            max_wall_seconds=max_wall_seconds,
            experiment=experiment,
            batch_policy=batch_policy,
        )

    # -- backend hooks ------------------------------------------------------------
    def _create_store(self):
        return _ClusterStore(self)

    def _create_network(self, latency_model, processing_cost, max_events, max_wall_seconds):
        active_recorder = current_tracer()
        init = WorkerInit(
            wid=-1,  # per-worker ids are stamped at spawn
            workers=self.workers,
            node_count=self.partitioner.node_count,
            plan=self.plan,
            strategy=self.strategy,
            batch_policy=self.batch_policy,
            partitioner=self.partitioner,
            traced=isinstance(active_recorder, Tracer),
            flight=bool(getattr(active_recorder, "is_flight_recorder", False)),
        )
        self._coordinator = ProcessCoordinator(
            init,
            wal_dir=self._wal_dir,
            latency_model=latency_model,
            processing_cost=processing_cost,
            max_events=max_events,
            max_wall_seconds=max_wall_seconds,
            batch_policy=self.batch_policy,
        )
        return self._coordinator

    def _create_routing_stats(self):
        return _ClusterRoutingStats(self)

    def _create_nodes(self):
        return [
            _NodeProxy(self, node_id) for node_id in range(self.partitioner.node_count)
        ]

    def _register_engine_probes(self, registry: MetricsRegistry) -> None:
        """The snapshot-then-merge path over the workers' materialized registries.

        Worker probes are process-local callables; each worker evaluates them
        into a picklable frozen registry (``MetricsRegistry.materialize``),
        and the coordinator merges those — per-worker views under ``w<id>.``
        next to the unprefixed cluster aggregate.  The per-phase snapshot in
        ``_run_phase`` triggers this probe, so ``--metrics-json`` carries both.
        """

        def workers_probe():
            merged = MetricsRegistry()
            for wid, materialized in enumerate(self._coordinator.broadcast("metrics")):
                merged.merge(materialized, prefix=f"w{wid}")
                merged.merge(materialized)
            return merged.snapshot()

        registry.register_probe("workers", workers_probe)

    # -- quiescence (flush protocol) -------------------------------------------------
    def _run_to_quiescence(self) -> None:
        eager = self.strategy.uses_provenance and self.strategy.ship_mode is ShipMode.EAGER
        while True:
            self.network.run()
            if not eager:
                break
            if self._coordinator.flush_eager_ships() == 0:
                break

    # -- results (batched per-worker RPCs) ----------------------------------------------
    def _gather_node_map(self, op: str) -> Dict[int, object]:
        result: Dict[int, object] = {}
        for reply in self._coordinator.broadcast(op):
            result.update(reply)
        return result

    def view(self) -> Set[Tuple]:
        result: Set[Tuple] = set()
        for partition in self._gather_node_map("views").values():
            result.update(partition)
        return result

    def view_at(self, node_id: int) -> Set[Tuple]:
        coordinator = self._coordinator
        reply = coordinator.rpc(coordinator.worker_for(node_id), "views")
        return set(reply[node_id])

    def view_annotations(self) -> Dict[Tuple, object]:
        result: Dict[Tuple, object] = {}
        for reply in self._coordinator.broadcast("view_annotations"):
            result.update(reply)
        return result

    def state_bytes(self) -> int:
        return sum(self._gather_node_map("state_bytes").values())

    # -- explain ------------------------------------------------------------------------
    def _explain_products(self, target):
        """Ask every worker for the tuple's canonical products; first hit wins.

        Only the worker hosting the tuple's owner node answers non-``None``,
        and the answer is already manager-independent (the worker runs
        ``canonical_annotation`` against its own store before pickling).
        """
        for reply in self._coordinator.broadcast("explain", target):
            if reply is not None:
                return reply
        return None

    def _collect_flight_rings(self) -> None:
        """Pull worker flight rings into the coordinator recorder pre-dump."""
        from repro.obs.flight import FlightRecorder

        if isinstance(self.tracer, FlightRecorder) and self._coordinator is not None:
            self._coordinator.collect_flight_rings(self.tracer)

    def per_node_state_bytes(self) -> Dict[int, int]:
        return dict(sorted(self._gather_node_map("state_bytes").items()))

    def worker_fault_stats(self) -> Dict[str, int]:
        """Chaos-plane counters: injected kills, respawns, doomed retries."""
        coordinator = self._coordinator
        return {
            "worker_kills": coordinator.worker_kills,
            "worker_respawns": coordinator.worker_respawns,
            "worker_respawn_retries": coordinator.worker_respawn_retries,
        }

    # -- tracing -----------------------------------------------------------------------
    def _run_phase(self, label: str, **workload):
        phase = super()._run_phase(label, **workload)
        # A FlightRecorder is also "enabled" but has no full event buffer to
        # drain — its rings are only collected post-mortem.
        if isinstance(self.tracer, Tracer) and self.tracer.enabled:
            self._drain_worker_traces()
        return phase

    def _drain_worker_traces(self) -> None:
        """Merge every worker's span buffer into the coordinator trace.

        Worker clocks are ``perf_counter`` (CLOCK_MONOTONIC — comparable
        across processes on one host), so shifting by the tracers' origin
        difference aligns the timelines; synthetic tracks get per-worker pids
        and every track is labelled with the worker's real OS pid.
        """
        for wid, reply in enumerate(self._coordinator.broadcast("trace")):
            if reply is None:
                continue
            events, tracks, t0, os_pid = reply
            self.tracer.absorb(
                events,
                tracks,
                t0,
                pid_offset=(wid + 1) * _TRACE_PID_STRIDE,
                label=f"worker {wid}, pid {os_pid}",
            )

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ProcessExecutor(plan={self.plan.name!r}, scheme={self.strategy.label!r}, "
            f"nodes={self.network.node_count}, workers={self.workers})"
        )


__all__ = ["ProcessExecutor"]
