"""The deterministic virtual-clock scheduler driving the worker pool.

:class:`ProcessCoordinator` subclasses :class:`~repro.net.simulator.SimulatedNetwork`
and keeps its entire scheduling state — the ``(arrival, seq)`` heap, per-node
``busy_until``, per-channel FIFO watermarks, the statistics accumulator — but
replaces the inline handler call with a **dispatch** to the worker process
hosting the destination node.

Bit-identity argument
---------------------

The single-process engine pops events in ``(arrival, seq)`` order and runs
each handler to completion before the next pop, so a handler's sends enter
the queue before any later event is examined.  The coordinator relaxes only
the "runs to completion" part; everything observable is preserved by three
rules:

1. **Safe-dispatch rule.**  The front event ``E`` (destination ``d``) may be
   dispatched only while ``start(E) = max(busy_until[d], arrival(E)) <
   c_min``, *strictly*, where ``c_min`` is the minimum completion time over
   all in-flight deliveries.  Any event ``G`` a still-running handler might
   send arrives at ``sent_at + latency >= completion >= c_min > start(E) >=
   arrival(E)`` — so ``G`` can neither precede ``E`` in the heap order nor be
   eligible for ``E``'s coalescing drain (which only absorbs arrivals ``<=
   start(E)``).  The pop sequence is therefore exactly the serial pop
   sequence, and the events-processed counter, coalesced groupings, per-event
   processing costs and the virtual clock all advance identically.

2. **Pop-order application.**  Results are applied strictly in dispatch
   (= pop) order, buffering out-of-order arrivals.  A handler's recorded
   sends are replayed through :meth:`_push_encoded` — the exact body of
   ``SimulatedNetwork.send`` — so message construction, byte accounting,
   FIFO watermarks and **sequence numbers** are assigned in the same order,
   with the same values, as the serial engine assigned them.

3. **Per-worker FIFO.**  Deliveries to one node go to one worker and its
   command queue preserves order, so two safely-overlapping deliveries to the
   same node still execute in pop order against its state.

Faults, control events and ``run(until=...)`` are not supported on this
backend (they need mid-run coordinator/worker state surgery); scheduling them
raises immediately rather than desynchronizing silently.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import queue as queue_module
import signal
import time
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional

from repro.net.message import Message
from repro.net.simulator import (
    SimulatedNetwork,
    SimulationBudgetExceeded,
    SimulationError,
    _GhostDelivery,
)
from repro.parallel.envelope import TRACE_PID_STRIDE, WorkerInit
from repro.parallel.worker import worker_main

#: How long one blocking wait on the result queue lasts before the coordinator
#: re-checks worker liveness and the wall-clock budget.
_POLL_SECONDS = 0.25


def _chaos_debug(message: str) -> None:
    if os.environ.get("REPRO_CHAOS_DEBUG"):
        import sys

        print(f"[chaos-debug pid={os.getpid()}] {message}", file=sys.stderr, flush=True)


class _WorkerDied(Exception):
    """Internal: a worker process exited while the coordinator awaited its RPC."""

    def __init__(self, wid: int, exitcode) -> None:
        super().__init__(f"worker {wid} died (exitcode {exitcode})")
        self.wid = wid
        self.exitcode = exitcode


class ProcessCoordinator(SimulatedNetwork):
    """A :class:`SimulatedNetwork` whose handlers run in worker processes."""

    def __init__(
        self,
        worker_init: WorkerInit,
        wal_dir=None,
        join_seconds: float = 5.0,
        **network_kwargs,
    ) -> None:
        super().__init__(node_count=worker_init.node_count, **network_kwargs)
        self.workers = worker_init.workers
        self._worker_init = worker_init
        self._wal_dir = wal_dir
        self._join_seconds = join_seconds
        self._ctx = multiprocessing.get_context("spawn")
        #: Per-worker result pipes (read ends), parallel to the command
        #: queues.  Results deliberately do NOT share one queue: a shared
        #: ``mp.Queue`` serialises every writer through one cross-process
        #: lock, and a chaos SIGKILL landing between a worker's last pipe
        #: write and its lock release (a wide window on a loaded box) would
        #: leave the lock held forever, wedging every surviving worker's
        #: next ``put``.  A private pipe per worker means a kill can only
        #: tear the victim's own channel, which recovery discards anyway.
        self._result_readers: List = []
        self._recv_backlog: deque = deque()
        self._command_queues: List = []
        self._processes: List = []
        self._delivery_ids = itertools.count(1)
        self._rpc_ids = itertools.count(1)
        #: delivery_id -> (wid, command, completion); insertion order is
        #: dispatch order is pop order is application order.
        self._inflight: "OrderedDict[int, tuple]" = OrderedDict()
        self._min_inflight = float("inf")
        self._results: Dict[int, tuple] = {}
        #: RPC replies that arrived while waiting for a different rpc id
        #: (only possible around worker recovery, when a replayed flush/clear
        #: re-emits its reply under the original id).
        self._rpc_replies: Dict[int, object] = {}
        self._closed = False
        #: Chaos plane: pending deterministic SIGKILLs as (virtual_time, wid),
        #: sorted; fired by ``_dispatch_ready`` when the clock passes them.
        self._pending_kills: List[tuple] = []
        self.worker_kills = 0
        self.worker_respawns = 0
        self.worker_respawn_retries = 0
        self._respawn_plan = None
        self._respawn_supervisor = None
        for wid in range(self.workers):
            self._spawn(wid)

    # -- worker lifecycle ---------------------------------------------------------
    def _worker_init_for(self, wid: int) -> WorkerInit:
        base = self._worker_init
        wal_path = None
        if self._wal_dir is not None:
            wal_path = os.path.join(str(self._wal_dir), f"worker{wid}.cmdlog")
        return WorkerInit(
            wid=wid,
            workers=base.workers,
            node_count=base.node_count,
            plan=base.plan,
            strategy=base.strategy,
            batch_policy=base.batch_policy,
            partitioner=base.partitioner,
            traced=base.traced,
            flight=base.flight,
            wal_path=wal_path,
        )

    def _spawn(self, wid: int) -> None:
        command_queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(self._worker_init_for(wid), command_queue, writer),
            name=f"repro-worker-{wid}",
            daemon=True,
        )
        process.start()
        # Drop our copy of the write end: the child now holds the only one,
        # so a dead worker's pipe reads EOF instead of blocking forever.
        writer.close()
        if wid < len(self._command_queues):
            old_reader = self._result_readers[wid]
            if old_reader is not None:
                try:
                    old_reader.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            self._command_queues[wid] = command_queue
            self._result_readers[wid] = reader
            self._processes[wid] = process
        else:
            self._command_queues.append(command_queue)
            self._result_readers.append(reader)
            self._processes.append(process)

    def worker_for(self, node: int) -> int:
        return node % self.workers

    def worker_pids(self) -> List[int]:
        """OS pids of the live worker processes."""
        return [process.pid for process in self._processes]

    # -- chaos plane: deterministic worker kills + supervised respawn -----------------
    def schedule_worker_kill(self, at_time: float, wid: int) -> None:
        """SIGKILL worker ``wid`` when the virtual clock first passes ``at_time``.

        The kill point is a *virtual-time* coordinate, so a seeded chaos plan
        reproduces the same kill at the same logical point on every run; the
        per-worker command WAL then makes the respawn invisible to results.
        """
        if self._wal_dir is None:
            raise SimulationError(
                "worker kill injection needs wal_dir (a killed worker without "
                "a command WAL is unrecoverable)"
            )
        if not 0 <= wid < self.workers:
            raise SimulationError(f"no worker {wid} (pool size {self.workers})")
        heapq.heappush(self._pending_kills, (at_time, wid))

    def set_respawn_chaos(self, plan, supervisor_policy=None) -> None:
        """Install respawn fault injection + a bounded supervised retry budget.

        ``plan`` is a :class:`~repro.chaos.plan.ChaosPlan`; its ``respawn``
        spec dooms a worker's first N respawn attempts (the fresh process is
        SIGKILLed while replaying its WAL).  Retries back off with
        deterministic jitter and are bounded by the policy's ``max_attempts``.
        """
        from repro.chaos.supervisor import RetryPolicy, Supervisor

        self._respawn_plan = plan
        self._respawn_supervisor = Supervisor(
            policy=supervisor_policy or RetryPolicy(),
            seed=plan.seed if plan is not None else 0,
        )

    def _fire_due_kills(self) -> None:
        """Deliver every scheduled SIGKILL whose virtual time has arrived.

        A kill only fires while its victim is idle (none of the in-flight
        commands belong to it).  An idle worker is blocked reading its own
        command queue and holds no lock on the *shared* result queue, so the
        SIGKILL cannot land mid-``put()`` and poison the queue's writer lock
        for every other worker — which would deadlock the whole pool.  A busy
        victim's kill stays pending and fires at the first check after the
        coordinator has consumed its outstanding results, which is still a
        deterministic virtual-time point.
        """
        while self._pending_kills and self._pending_kills[0][0] <= self._now:
            at_time, wid = self._pending_kills[0]
            if any(owner == wid for owner, _, _ in self._inflight.values()):
                break
            heapq.heappop(self._pending_kills)
            process = self._processes[wid]
            if process.pid is None or not process.is_alive():
                continue
            try:
                os.kill(process.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - lost the race
                continue
            self.worker_kills += 1
            _chaos_debug(f"kill fired wid={wid} victim_pid={process.pid} now={self._now}")
            if self.tracer is not None:
                from repro.obs.trace import CONTROL_PID

                self.tracer.instant(
                    CONTROL_PID,
                    f"kill-worker:{wid}",
                    "chaos",
                    sim_ts=self._now,
                    args={"scheduled_at": at_time, "os_pid": process.pid},
                )

    # -- unsupported control surface -----------------------------------------------
    def _schedule_fault(self, kind: str, node: int, at_time) -> None:
        raise SimulationError(
            "crash/recover events are not supported by the process backend "
            "(worker death recovery goes through the per-worker command WAL)"
        )

    def schedule_control(self, callback: Callable[[float], None], at_time=None) -> None:
        raise SimulationError("control events are not supported by the process backend")

    # -- the run loop ---------------------------------------------------------------
    def run(self, until: Optional[float] = None):
        if until is not None:
            raise SimulationError("the process backend runs to quiescence only")
        queue = self._queue
        inflight = self._inflight
        while queue or inflight:
            self._dispatch_ready()
            if not inflight:
                if not queue:
                    break
                continue
            self._apply_oldest()
        return self.stats

    def _dispatch_ready(self) -> None:
        """Pop-and-dispatch front events while the safe-dispatch rule holds."""
        queue = self._queue
        busy_until = self._node_busy_until
        inflight = self._inflight
        processing_cost = self.processing_cost
        max_events = self.max_events
        monotonic = time.monotonic
        while queue:
            arrival, _, message = queue[0]
            if not isinstance(message, Message):
                if isinstance(message, _GhostDelivery):
                    # A chaos-injected duplicate wire copy: suppressed at
                    # delivery, exactly like the in-process engine — no clock
                    # advance, no event count, no handler dispatch.
                    heapq.heappop(queue)
                    if self._chaos is not None:
                        self._chaos.on_ghost(message.message, arrival)
                    continue
                raise SimulationError(
                    f"unsupported event {type(message).__name__} on the process backend"
                )
            dst = message.dst
            start = busy_until[dst]
            if arrival > start:
                start = arrival
            if inflight and start >= self._min_inflight:
                break
            heapq.heappop(queue)
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationBudgetExceeded(
                    f"exceeded {max_events} events; the computation is not converging"
                )
            if (
                self._wall_deadline is not None
                and self._events_processed % 32 == 0
                and monotonic() > self._wall_deadline
            ):
                raise SimulationBudgetExceeded(
                    f"exceeded the wall-clock budget of {self.max_wall_seconds} seconds"
                )
            if message.epoch < self.current_epoch:
                self.stats.stale_epoch_messages += 1
            updates = self._coalesce_ready(message, start, None)
            completion = start + processing_cost * max(len(updates), 1)
            busy_until[dst] = completion
            self._now = completion
            self.stats.record_time(completion)
            if self._pending_kills:
                self._fire_due_kills()
            delivery_id = next(self._delivery_ids)
            wid = dst % self.workers
            command = ("deliver", delivery_id, dst, message.port, tuple(updates), completion)
            inflight[delivery_id] = (wid, command, completion)
            if completion < self._min_inflight:
                self._min_inflight = completion
            self._command_queues[wid].put(command)

    def _apply_oldest(self) -> None:
        """Block for the oldest in-flight delivery's result and apply it."""
        delivery_id = next(iter(self._inflight))
        result = None
        while result is None:
            # Re-check the parked results every pass: a worker-death recovery
            # triggered from ``_next_result_item`` drains the result pipes
            # into ``self._results``, so the result being waited on here can
            # appear in the dict without ever coming back as a fresh item.
            result = self._results.pop(delivery_id, None)
            if result is not None:
                break
            item = self._next_result_item()
            kind = item[0]
            if kind == "result":
                if item[1] == delivery_id:
                    result = item
                else:
                    self._results[item[1]] = item
            elif kind == "error":
                raise SimulationError(f"worker {item[2]} failed:\n{item[3]}")
            else:
                raise SimulationError(f"unexpected {kind!r} reply during a run")
        self._inflight.popitem(last=False)
        self._min_inflight = min(
            (completion for _, _, completion in self._inflight.values()),
            default=float("inf"),
        )
        if self._pending_kills:
            # A kill deferred because its victim was busy may be safe now
            # that the victim's result has been consumed.
            self._fire_due_kills()
        _, _, _, outbox, handler_seconds, prov_bytes, prov_count = result
        self.handler_seconds += handler_seconds
        if prov_count:
            self.stats.record_provenance(prov_bytes, prov_count)
        for src, dst, port, updates, size_bytes, sent_at in outbox:
            self._push_encoded(src, dst, port, updates, size_bytes, sent_at)

    def _queue_get(self, timeout: float):
        """One item from any worker's result pipe; ``Empty`` on timeout.

        Drains one item per ready pipe into a backlog so no worker starves.
        A pipe that reads EOF (dead worker, fully drained) or a torn pickle
        (killed mid-``send``) is closed and dropped here; the caller's
        liveness checks notice the death itself and trigger recovery, which
        installs the respawned incarnation's fresh pipe.
        """
        if self._recv_backlog:
            return self._recv_backlog.popleft()
        readers = [
            reader
            for reader in self._result_readers
            if reader is not None and not reader.closed
        ]
        ready = multiprocessing.connection.wait(readers, timeout) if readers else ()
        for reader in ready:
            try:
                self._recv_backlog.append(reader.recv())
            except (EOFError, OSError, pickle.UnpicklingError):
                wid = self._result_readers.index(reader)
                try:
                    reader.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                self._result_readers[wid] = None
        if not self._recv_backlog:
            raise queue_module.Empty
        return self._recv_backlog.popleft()

    def _next_result_item(self):
        """One blocking read of the result pipes, with liveness checks."""
        polls = 0
        while True:
            try:
                return self._queue_get(_POLL_SECONDS)
            except queue_module.Empty:
                polls += 1
                if polls % 20 == 0 and os.environ.get("REPRO_CHAOS_DEBUG"):
                    _chaos_debug(
                        "stalled: inflight="
                        + repr(
                            [
                                (did, owner)
                                for did, (owner, _, _) in self._inflight.items()
                            ][:8]
                        )
                        + f" results={sorted(self._results)[:8]}"
                        + f" rpc_replies={sorted(self._rpc_replies)[:8]}"
                        + f" backlog={len(self._recv_backlog)}"
                        + " readers="
                        + repr(
                            [
                                None if r is None else ("closed" if r.closed else r.fileno())
                                for r in self._result_readers
                            ]
                        )
                        + f" alive={[p.is_alive() for p in self._processes]}"
                    )
                if (
                    self._wall_deadline is not None
                    and time.monotonic() > self._wall_deadline
                ):
                    raise SimulationBudgetExceeded(
                        f"exceeded the wall-clock budget of {self.max_wall_seconds} "
                        "seconds while waiting on workers"
                    )
                for wid, process in enumerate(self._processes):
                    if not process.is_alive():
                        self._recover_worker(wid)

    def _push_encoded(self, src, dst, port, updates, size_bytes, sent_at) -> None:
        """Replay one worker-recorded send — the body of ``SimulatedNetwork.send``.

        Same message construction, byte accounting, FIFO watermark update and
        sequence-number assignment; no flow arrows (the matching handler span
        lives in a worker's trace, not here).
        """
        if not updates:
            raise SimulationError("refusing to send an empty message")
        message = Message(
            src=src, dst=dst, port=port, updates=tuple(updates),
            size_bytes=size_bytes, sent_at=sent_at, epoch=self.current_epoch,
        )
        self.stats.record_message(message)
        arrival = sent_at + self.latency_model.latency(src, dst)
        if self._chaos is not None and src != dst:
            # Same hook point as ``SimulatedNetwork.send``: after latency,
            # before the FIFO clamp — sends replay here in the serial order,
            # so the per-channel decision streams line up across backends.
            arrival = self._chaos.apply(message, sent_at, arrival)
        fifo_key = (src, dst)
        watermark = self._last_delivery.get(fifo_key, 0.0)
        if watermark > arrival:
            arrival = watermark
        self._last_delivery[fifo_key] = arrival
        heapq.heappush(self._queue, (arrival, next(self._sequence), message))

    # -- worker death recovery -------------------------------------------------------
    def _recover_worker(self, wid: int, pending_rpc=None) -> None:
        """Respawn a dead worker and rebuild its state from the command WAL.

        ``pending_rpc`` is the ``(rpc_id, command)`` the coordinator was
        awaiting when the death was noticed (``None`` on the delivery path).
        If the dying worker logged that command, the replay re-emits its reply
        under the original id; otherwise the command is re-issued — exactly
        one reply per rpc id either way.
        """
        process = self._processes[wid]
        exitcode = process.exitcode
        _chaos_debug(
            f"recover wid={wid} dead_pid={process.pid} exitcode={exitcode} "
            f"pending_rpc={pending_rpc[0] if pending_rpc else None}"
        )
        if self._wal_dir is None:
            raise SimulationError(
                f"worker {wid} died (exitcode {exitcode}) and no wal_dir is "
                "configured; state is unrecoverable"
            )
        # Results the dead worker already shipped are still sitting in the
        # result pipes; pull them in before deciding what is unacknowledged.
        while True:
            try:
                item = self._queue_get(0)
            except queue_module.Empty:
                break
            if item[0] == "result":
                self._results[item[1]] = item
            elif item[0] == "rpc":
                self._rpc_replies[item[1]] = item[3]
            elif item[0] == "error":
                raise SimulationError(f"worker {item[2]} failed:\n{item[3]}")
        process.join(timeout=self._join_seconds)
        unacked = [
            (delivery_id, command)
            for delivery_id, (owner, command, _) in self._inflight.items()
            if owner == wid and delivery_id not in self._results
        ]
        unacked_rpcs = frozenset()
        if pending_rpc is not None and pending_rpc[0] not in self._rpc_replies:
            unacked_rpcs = frozenset({pending_rpc[0]})
        recovered = self._supervised_respawn(wid, unacked, unacked_rpcs)
        self.worker_respawns += 1
        for delivery_id, command in unacked:
            if delivery_id not in recovered:
                self._command_queues[wid].put(command)
                _chaos_debug(f"re-put delivery {delivery_id} -> wid={wid}")
        if (
            pending_rpc is not None
            and pending_rpc[0] not in recovered
            and pending_rpc[0] not in self._rpc_replies
        ):
            # The command never reached the WAL (a read, or a flush/clear
            # that died pre-log); RPCs are quiescent-point idempotent, so
            # re-issue it verbatim.
            self._command_queues[wid].put(pending_rpc[1])

    def _supervised_respawn(self, wid: int, unacked, unacked_rpcs):
        """Respawn ``wid`` and run its WAL replay, retrying under a budget.

        Each attempt spawns a fresh process and asks it to replay; the chaos
        plan may doom the first N attempts by SIGKILLing the fresh process
        while the replay runs (the satellite double fault).  Replay restarts
        are safe — the WAL is only read, replies are re-emitted under their
        original ids, and duplicate result items are keyed by delivery id —
        so a retry reruns the whole replay idempotently.  Exhausting the
        budget raises ``SimulationError`` (bounded: never an infinite respawn
        loop).
        """
        plan = self._respawn_plan
        supervisor = self._respawn_supervisor
        forced = plan.forced_respawn_failures(wid) if plan is not None else 0
        max_attempts = supervisor.policy.max_attempts if supervisor is not None else 1
        attempt = 0
        while True:
            attempt += 1
            self._spawn(wid)
            replay_id = next(self._rpc_ids)
            # A doomed attempt carries the fault in the replay command itself:
            # the fresh worker self-SIGKILLs after replaying one WAL entry,
            # at a deterministic point between sends.  A coordinator-side
            # SIGKILL here would race the worker's replay progress and could
            # tear the result pipe mid-``send``.
            self._command_queues[wid].put(
                (
                    "replay",
                    replay_id,
                    frozenset(delivery_id for delivery_id, _ in unacked),
                    unacked_rpcs,
                    1 if attempt <= forced else None,
                )
            )
            _chaos_debug(
                f"respawn wid={wid} attempt={attempt} new_pid={self._processes[wid].pid} "
                f"replay_id={replay_id} unacked={len(unacked)} doom={attempt <= forced}"
            )
            try:
                recovered = self._wait_rpc(replay_id, wid)
                _chaos_debug(f"replay acked wid={wid} replay_id={replay_id}")
                return recovered
            except _WorkerDied as died:
                if attempt >= max_attempts:
                    raise SimulationError(
                        f"worker {wid} died again during WAL replay (exitcode "
                        f"{died.exitcode}) and the respawn budget "
                        f"({max_attempts} attempts) is exhausted; state is "
                        "unrecoverable"
                    ) from None
                self.worker_respawn_retries += 1
                self._processes[wid].join(timeout=self._join_seconds)
                delay = supervisor.backoff(f"respawn:{wid}", attempt)
                time.sleep(min(delay, 0.2))

    # -- RPCs (quiescent points only) --------------------------------------------------
    def _wait_rpc(self, rpc_id: int, wid: int):
        while True:
            # Checked every pass, not just on entry: recovery drains can park
            # the awaited reply in ``self._rpc_replies`` mid-wait.
            if rpc_id in self._rpc_replies:
                return self._rpc_replies.pop(rpc_id)
            try:
                item = self._queue_get(_POLL_SECONDS)
            except queue_module.Empty:
                if not self._processes[wid].is_alive():
                    raise _WorkerDied(wid, self._processes[wid].exitcode)
                continue
            kind = item[0]
            if kind == "rpc":
                if item[1] == rpc_id:
                    return item[3]
                self._rpc_replies[item[1]] = item[3]
            elif kind == "result":
                # Replayed deliveries re-emitted during WAL recovery.
                self._results[item[1]] = item
            elif kind == "error":
                raise SimulationError(f"worker {item[2]} failed:\n{item[3]}")
            else:
                raise SimulationError(f"unexpected {kind!r} reply to rpc {rpc_id}")

    def rpc(self, wid: int, op: str, *payload):
        """One quiescent-point request/response exchange with worker ``wid``."""
        if self._inflight:
            raise SimulationError(f"rpc {op!r} attempted with deliveries in flight")
        rpc_id = next(self._rpc_ids)
        command = (op, rpc_id) + payload
        self._command_queues[wid].put(command)
        while True:
            try:
                return self._wait_rpc(rpc_id, wid)
            except _WorkerDied:
                self._recover_worker(wid, pending_rpc=(rpc_id, command))

    def broadcast(self, op: str, *payload) -> List:
        """The same RPC to every worker; replies ordered by worker id."""
        return [self.rpc(wid, op, *payload) for wid in range(self.workers)]

    # -- eager-flush protocol ------------------------------------------------------------
    def flush_eager_ships(self) -> int:
        """One cluster-wide MinShip timer tick at a quiescent point.

        Workers flush their nodes and return per-node outbox segments; the
        segments are applied **sorted by node id across all workers**, because
        that is the order the in-process engine's flush loop visits nodes in —
        and sequence numbers are assigned at send time.
        """
        segments = []
        released = 0
        for reply in self.broadcast("flush", self._now):
            worker_segments, worker_released, prov_bytes, prov_count = reply
            segments.extend(worker_segments)
            released += worker_released
            if prov_count:
                self.stats.record_provenance(prov_bytes, prov_count)
        segments.sort(key=lambda segment: segment[0])
        for _, outbox in segments:
            for src, dst, port, updates, size_bytes, sent_at in outbox:
                self._push_encoded(src, dst, port, updates, size_bytes, sent_at)
        return released

    # -- post-mortem flight-ring collection ----------------------------------------------
    def collect_flight_rings(self, recorder, timeout: float = 2.0) -> int:
        """Best-effort collection of the workers' flight-recorder rings.

        Called when a run is already aborting (phase failure, budget overrun),
        so the quiescent-RPC discipline is deliberately relaxed: requests go to
        every *live* worker, replies are drained until ``timeout`` with
        unrelated queue items dropped, dead or silent workers are skipped, and
        nothing here ever raises.  Collected records are absorbed into
        ``recorder`` with the same per-worker pid stride the traced path uses,
        so the dump renders like a merged trace.  Returns the number of
        workers whose rings were absorbed.
        """
        pending: Dict[int, int] = {}
        try:
            for wid, process in enumerate(self._processes):
                if not process.is_alive():
                    continue
                rpc_id = next(self._rpc_ids)
                try:
                    self._command_queues[wid].put(("flight", rpc_id))
                except (ValueError, OSError):
                    continue
                pending[rpc_id] = wid
        except Exception:
            return 0
        collected = 0
        deadline = time.monotonic() + timeout
        while pending and time.monotonic() < deadline:
            try:
                item = self._queue_get(0.1)
            except (queue_module.Empty, ValueError, OSError):
                continue
            try:
                if item[0] != "rpc" or item[1] not in pending:
                    continue
                wid = pending.pop(item[1])
                payload = item[3]
                if payload is None:
                    continue
                records, t0, os_pid = payload
                recorder.absorb_records(
                    records,
                    t0,
                    pid_offset=(wid + 1) * TRACE_PID_STRIDE,
                    label=f"worker {wid}, pid {os_pid}",
                )
                collected += 1
            except Exception:
                continue
        return collected

    # -- shutdown -----------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool (idempotent; also wired to executor close)."""
        if self._closed:
            return
        self._closed = True
        for command_queue in self._command_queues:
            try:
                command_queue.put(("shutdown",))
            except (ValueError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=self._join_seconds)
            if process.is_alive():
                process.terminate()
        for command_queue in self._command_queues:
            command_queue.close()
            command_queue.cancel_join_thread()
        for reader in self._result_readers:
            if reader is None:
                continue
            try:
                reader.close()
            except OSError:
                pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
