"""Wire protocol between the coordinator and its worker processes.

Everything that crosses a queue is a plain tuple whose first element names the
operation, so the protocol stays picklable and versionless:

Commands (coordinator → worker)::

    ("deliver", delivery_id, node, port, updates, now)   # run one handler
    ("flush",   rpc_id, now)                             # eager MinShip tick
    ("clear_join_left", rpc_id, node)                    # DRed re-derivation
    ("views" | "view_annotations" | "state_bytes" | "kernel_stats"
            | "metrics" | "routing" | "trace", rpc_id)   # quiescent reads
    ("explain", rpc_id, view_tuple)                      # one tuple's canonical products
    ("flight",  rpc_id)                                  # flight-recorder ring snapshot
    ("collect", rpc_id, force)                           # kernel GC pass
    ("replay",  rpc_id, unacked_delivery_ids)            # WAL recovery
    ("shutdown",)

Results (worker → coordinator, one shared queue)::

    ("result", delivery_id, wid, outbox, handler_seconds, prov_bytes, prov_count)
    ("rpc",    rpc_id, wid, payload)
    ("error",  ref_id, wid, traceback_text)

``outbox`` entries are ``(src, dst, port, encoded_updates, size_bytes,
sent_at)`` — every ``network.send`` the handler performed, in call order,
with annotations already passed through the store codec
(:meth:`~repro.provenance.tracker.ProvenanceStore.encode_annotation`) so they
are manager-independent.  The coordinator replays them into its own event
queue in exactly the order the single-process engine would have, which is
what makes sequence-number assignment (and therefore the whole run)
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.data.update import Update

#: Synthetic-pid stride per worker when merging traces or flight rings: every
#: worker's synthetic tracks (bdd-kernel, cluster-control) shift by
#: ``(wid + 1) * TRACE_PID_STRIDE`` so no two processes interleave spans on
#: one track (flow ids shift by the same offset ``<< 32``).  Lives here —
#: the protocol layer — because both the coordinator-side scheduler and the
#: executor-side backend need it without importing each other.
TRACE_PID_STRIDE = 8


@dataclass(frozen=True)
class WorkerInit:
    """Everything a worker needs to rebuild its slice of the cluster.

    Shipped once at spawn (pickled by ``multiprocessing``); must therefore
    contain only picklable engine configuration — which is exactly the
    executor's own constructor surface.
    """

    wid: int
    workers: int
    node_count: int
    plan: Any
    strategy: Any
    batch_policy: Any
    partitioner: Any
    traced: bool = False
    #: Run a bounded flight recorder in the worker instead of a full tracer
    #: (mutually exclusive with ``traced``; rings are collected post-mortem).
    flight: bool = False
    wal_path: Optional[str] = None

    def owned_nodes(self) -> List[int]:
        """The node ids this worker hosts (round-robin by id)."""
        return [node for node in range(self.node_count) if node % self.workers == self.wid]


def encode_updates(store, updates: Sequence[Update]) -> Tuple[Update, ...]:
    """Make a batch manager-independent: annotations through the store codec.

    ``None`` provenance (injections, DRed set semantics) and value-typed
    annotations (purge variable keys, counting vectors) pass through the codec
    unchanged; only kernel-backed annotations (BDD handles) are serialized.
    """
    encoded = []
    for update in updates:
        provenance = update.provenance
        if provenance is not None:
            wire = store.encode_annotation(provenance)
            if wire is not provenance:
                update = update.with_provenance(wire)
        encoded.append(update)
    return tuple(encoded)


def decode_updates(store, updates: Sequence[Update]) -> List[Update]:
    """Rebuild a wire batch against the receiving process's own store/manager."""
    decoded = []
    for update in updates:
        provenance = update.provenance
        if provenance is not None:
            local = store.decode_annotation(provenance)
            if local is not provenance:
                update = update.with_provenance(local)
        decoded.append(update)
    return decoded


@dataclass
class FlushSegments:
    """One worker's reply to a ``flush`` tick: per-node outbox segments.

    The coordinator concatenates all workers' segments **sorted by node id**
    before applying the sends, because the single-process engine flushes nodes
    in id order and sequence numbers are assigned at send time.
    """

    segments: List[Tuple[int, list]] = field(default_factory=list)
    released: int = 0
    prov_bytes: int = 0
    prov_count: int = 0
