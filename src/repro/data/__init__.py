"""Data model: tuples, update streams, relations and soft-state windows.

The execution model of the paper (Section 3.1) is a distributed, continuous
computation over horizontally partitioned *set* relations updated by streams
of insertions and deletions.  This package provides:

* :class:`~repro.data.tuples.Schema` and :class:`~repro.data.tuples.Tuple` —
  named, immutable tuples with byte-size accounting;
* :class:`~repro.data.update.Update` — INS/DEL operations carrying optional
  provenance annotations;
* :class:`~repro.data.relation.Relation` and
  :class:`~repro.data.relation.PartitionedRelation` — set-semantics relations,
  optionally horizontally partitioned by a key attribute;
* :class:`~repro.data.stream.UpdateStream` — ordered update streams with
  replay support;
* :class:`~repro.data.batch.UpdateBatch` and
  :class:`~repro.data.batch.BatchPolicy` — batches of updates as the
  pipeline's first-class delta unit, plus the batching knobs;
* :class:`~repro.data.window.SlidingWindow` — time-based soft-state expiry of
  base tuples (Section 3.1 / 4.3.3).
"""

from repro.data.batch import BatchPolicy, UpdateBatch, group_by_tuple, split_runs
from repro.data.tuples import Schema, Tuple
from repro.data.update import Update, UpdateType
from repro.data.relation import PartitionedRelation, Relation
from repro.data.stream import UpdateStream
from repro.data.window import SlidingWindow, WindowExpiration

__all__ = [
    "BatchPolicy",
    "UpdateBatch",
    "group_by_tuple",
    "split_runs",
    "Schema",
    "Tuple",
    "Update",
    "UpdateType",
    "Relation",
    "PartitionedRelation",
    "UpdateStream",
    "SlidingWindow",
    "WindowExpiration",
]
