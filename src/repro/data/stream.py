"""Ordered update streams with replay support.

Streams are the inputs to a query (Section 3.1): new data becomes insert
operations and expirations/withdrawals become deletions.  The harness builds
workload streams ahead of time (so runs are reproducible), and the executor
injects them into the simulated network in timestamp order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType


class UpdateStream:
    """An append-only, replayable sequence of updates ordered by timestamp."""

    def __init__(self, updates: Optional[Iterable[Update]] = None) -> None:
        self._updates: List[Update] = list(updates) if updates else []

    # -- construction -----------------------------------------------------------
    def append(self, update: Update) -> None:
        """Append one update (timestamps are expected to be non-decreasing)."""
        self._updates.append(update)

    def extend(self, updates: Iterable[Update]) -> None:
        """Append several updates."""
        self._updates.extend(updates)

    def insert(self, tuple_: Tuple, timestamp: float = 0.0) -> None:
        """Append an insertion of ``tuple_``."""
        self.append(Update(UpdateType.INS, tuple_, timestamp=timestamp))

    def delete(self, tuple_: Tuple, timestamp: float = 0.0) -> None:
        """Append a deletion of ``tuple_``."""
        self.append(Update(UpdateType.DEL, tuple_, timestamp=timestamp))

    # -- access -------------------------------------------------------------------
    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, index: int) -> Update:
        return self._updates[index]

    @property
    def updates(self) -> Sequence[Update]:
        """The underlying sequence (read-only view by convention)."""
        return tuple(self._updates)

    def sorted_by_time(self) -> "UpdateStream":
        """A copy sorted by timestamp (stable, preserving injection order)."""
        return UpdateStream(sorted(self._updates, key=lambda update: update.timestamp))

    def filter(self, predicate: Callable[[Update], bool]) -> "UpdateStream":
        """A copy keeping only updates satisfying ``predicate``."""
        return UpdateStream(update for update in self._updates if predicate(update))

    def insertions(self) -> "UpdateStream":
        """Only the INS updates."""
        return self.filter(lambda update: update.is_insert)

    def deletions(self) -> "UpdateStream":
        """Only the DEL updates."""
        return self.filter(lambda update: update.is_delete)

    def split_at(self, timestamp: float) -> "tuple[UpdateStream, UpdateStream]":
        """Split into (updates at or before ``timestamp``, updates after)."""
        before = UpdateStream(u for u in self._updates if u.timestamp <= timestamp)
        after = UpdateStream(u for u in self._updates if u.timestamp > timestamp)
        return before, after

    def concat(self, other: "UpdateStream") -> "UpdateStream":
        """A new stream: this stream followed by ``other``."""
        return UpdateStream(list(self._updates) + list(other._updates))

    def net_tuples(self) -> set:
        """The set of tuples present after applying the whole stream in order."""
        live: set = set()
        for update in self._updates:
            if update.is_insert:
                live.add(update.tuple)
            else:
                live.discard(update.tuple)
        return live

    def __repr__(self) -> str:
        ins = sum(1 for update in self._updates if update.is_insert)
        return f"UpdateStream({len(self._updates)} updates, {ins} INS)"
