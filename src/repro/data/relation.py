"""Set-semantics relations and horizontally partitioned relations.

The paper assumes *set* relations (Section 3.1): duplicates are eliminated,
and recursive evaluation stops at fixpoint.  :class:`Relation` is the
centralized building block used by the Datalog substrate and by ground-truth
baselines; :class:`PartitionedRelation` models the horizontal partitioning by
key attribute used by the distributed engine (the paper's convention is to
partition on the first attribute, e.g. ``link(src, dst)`` lives at ``src``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple as PyTuple

from repro.data.tuples import Schema, Tuple
from repro.data.update import Update, UpdateType


class Relation:
    """A mutable set of tuples sharing one schema."""

    def __init__(self, schema: Schema, tuples: Optional[Iterable[Tuple]] = None) -> None:
        self.schema = schema
        self._tuples: Set[Tuple] = set()
        if tuples:
            for tuple_ in tuples:
                self.add(tuple_)

    # -- mutation ------------------------------------------------------------
    def add(self, tuple_: Tuple) -> bool:
        """Insert a tuple; returns True if it was new."""
        self._validate(tuple_)
        if tuple_ in self._tuples:
            return False
        self._tuples.add(tuple_)
        return True

    def discard(self, tuple_: Tuple) -> bool:
        """Remove a tuple; returns True if it was present."""
        if tuple_ in self._tuples:
            self._tuples.remove(tuple_)
            return True
        return False

    def apply(self, update: Update) -> bool:
        """Apply an INS/DEL update; returns True if the relation changed."""
        if update.type is UpdateType.INS:
            return self.add(update.tuple)
        return self.discard(update.tuple)

    def clear(self) -> None:
        """Remove every tuple."""
        self._tuples.clear()

    # -- queries ---------------------------------------------------------------
    def __contains__(self, tuple_: Tuple) -> bool:
        return tuple_ in self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def tuples(self) -> PyTuple[Tuple, ...]:
        """A stable snapshot of the current contents (sorted for determinism)."""
        return tuple(sorted(self._tuples, key=lambda t: tuple(map(_sort_key, t.values))))

    def select(self, predicate: Callable[[Tuple], bool]) -> "Relation":
        """New relation containing the tuples satisfying ``predicate``."""
        return Relation(self.schema, (t for t in self._tuples if predicate(t)))

    def values(self, attribute: str) -> Set[Any]:
        """Set of values taken by ``attribute`` across the relation."""
        return {tuple_[attribute] for tuple_ in self._tuples}

    def as_value_set(self) -> Set[PyTuple[Any, ...]]:
        """Set of raw value tuples (useful for comparisons against baselines)."""
        return {tuple_.values for tuple_ in self._tuples}

    def _validate(self, tuple_: Tuple) -> None:
        if tuple_.schema.relation != self.schema.relation or tuple_.schema.attributes != self.schema.attributes:
            raise ValueError(
                f"tuple of relation {tuple_.relation!r} does not match schema {self.schema.relation!r}"
            )

    def __repr__(self) -> str:
        return f"Relation({self.schema.relation}, {len(self._tuples)} tuples)"


def _sort_key(value: Any) -> Any:
    """Total order over heterogeneous attribute values (for deterministic snapshots)."""
    return (str(type(value).__name__), str(value))


class PartitionedRelation:
    """A relation horizontally partitioned across ``node_count`` processor nodes.

    ``placement`` maps a tuple to the node responsible for it; by default this
    hashes the schema's partition attribute, which models the DHT-style
    key-based partitioning of the paper's implementation.
    """

    def __init__(
        self,
        schema: Schema,
        node_count: int,
        placement: Optional[Callable[[Tuple], int]] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.schema = schema
        self.node_count = node_count
        self._placement = placement or self._default_placement
        self._partitions: Dict[int, Relation] = {
            node: Relation(schema) for node in range(node_count)
        }

    def _default_placement(self, tuple_: Tuple) -> int:
        return stable_hash(tuple_.partition_value) % self.node_count

    # -- placement ----------------------------------------------------------
    def node_for(self, tuple_: Tuple) -> int:
        """Node id responsible for ``tuple_``."""
        return self._placement(tuple_)

    def node_for_value(self, value: Any) -> int:
        """Node id responsible for a raw partition-attribute value."""
        return stable_hash(value) % self.node_count

    # -- mutation ---------------------------------------------------------------
    def add(self, tuple_: Tuple) -> bool:
        """Insert a tuple into its home partition; True if new."""
        return self._partitions[self.node_for(tuple_)].add(tuple_)

    def discard(self, tuple_: Tuple) -> bool:
        """Delete a tuple from its home partition; True if present."""
        return self._partitions[self.node_for(tuple_)].discard(tuple_)

    def apply(self, update: Update) -> bool:
        """Apply an update to the owning partition."""
        if update.type is UpdateType.INS:
            return self.add(update.tuple)
        return self.discard(update.tuple)

    # -- queries ------------------------------------------------------------------
    def partition(self, node: int) -> Relation:
        """The partition stored at ``node``."""
        return self._partitions[node]

    def __contains__(self, tuple_: Tuple) -> bool:
        return tuple_ in self._partitions[self.node_for(tuple_)]

    def __len__(self) -> int:
        return sum(len(partition) for partition in self._partitions.values())

    def __iter__(self) -> Iterator[Tuple]:
        for node in range(self.node_count):
            yield from self._partitions[node]

    def tuples(self) -> PyTuple[Tuple, ...]:
        """Deterministic snapshot of the whole relation."""
        merged = Relation(self.schema, iter(self))
        return merged.tuples()

    def partition_sizes(self) -> List[int]:
        """Number of tuples per node (load-balance diagnostics)."""
        return [len(self._partitions[node]) for node in range(self.node_count)]

    def __repr__(self) -> str:
        return (
            f"PartitionedRelation({self.schema.relation}, {len(self)} tuples, "
            f"{self.node_count} nodes)"
        )


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for partition placement.

    Python's builtin ``hash`` for strings is salted per process, which would
    make experiment runs non-reproducible; this uses FNV-1a over the repr.
    """
    data = repr(value).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
