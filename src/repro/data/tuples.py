"""Schemas and immutable named tuples.

Tuples are the unit of data exchanged between operators and nodes.  They are
immutable and hashable so that they can be used directly as keys in the
provenance hash tables of the Fixpoint / join / MinShip operators
(Algorithms 1-4 in the paper), and they know how to estimate their own wire
size so the harness can report communication overhead in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Sequence, Tuple as PyTuple


class SchemaError(Exception):
    """Raised when a tuple does not match its relation schema."""


@dataclass(frozen=True)
class Schema:
    """An ordered list of attribute names for a named relation.

    The paper's convention (Section 2) is that a relation is horizontally
    partitioned on its *first* attribute unless stated otherwise;
    ``partition_attribute`` records which attribute that is.
    """

    relation: str
    attributes: PyTuple[str, ...]
    partition_attribute: str = ""

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError(f"schema for {self.relation!r} has no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"schema for {self.relation!r} has duplicate attributes")
        partition = self.partition_attribute or self.attributes[0]
        if partition not in self.attributes:
            raise SchemaError(
                f"partition attribute {partition!r} not in schema of {self.relation!r}"
            )
        object.__setattr__(self, "partition_attribute", partition)
        # Attribute positions, precomputed: tuple field access is the hottest
        # lookup in the engine (join keys, partition values, group keys).
        object.__setattr__(
            self, "_index", {attribute: i for i, attribute in enumerate(self.attributes)}
        )

    def __getstate__(self):
        return (self.relation, self.attributes, self.partition_attribute)

    def __setstate__(self, state):
        relation, attributes, partition = state
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "partition_attribute", partition)
        object.__setattr__(
            self, "_index", {attribute: i for i, attribute in enumerate(attributes)}
        )

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema (raises SchemaError if absent)."""
        try:
            return self._index[attribute]
        except KeyError as exc:
            raise SchemaError(
                f"attribute {attribute!r} not in schema of {self.relation!r}"
            ) from exc

    def tuple(self, *values: Any, **named: Any) -> "Tuple":
        """Build a :class:`Tuple` of this schema from positional or named values."""
        if named:
            if values:
                raise SchemaError("pass either positional or named values, not both")
            try:
                values = tuple(named[attribute] for attribute in self.attributes)
            except KeyError as exc:
                raise SchemaError(f"missing attribute {exc.args[0]!r}") from exc
        if len(values) != self.arity:
            raise SchemaError(
                f"{self.relation!r} expects {self.arity} values, got {len(values)}"
            )
        return Tuple(self, tuple(values))


def _value_size(value: Any) -> int:
    """Estimated wire size of a single attribute value in bytes."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list, frozenset, set)):
        return 4 + sum(_value_size(item) for item in value)
    return 16


class Tuple:
    """An immutable tuple of a given :class:`Schema`.

    Tuples are the engine's universal dictionary key (``P`` tables, join
    indexes, MinShip buffers), so their identity operations are hot paths: a
    plain ``__slots__`` class (constructed once per derived delta), the hash
    computed lazily and cached, attribute access through the schema's
    precomputed position table, and the ``key``/wire-size values memoised on
    first use.  Treat instances as immutable.
    """

    __slots__ = ("schema", "values", "_hash", "_key", "_size")

    def __init__(self, schema: Schema, values: PyTuple[Any, ...]) -> None:
        self.schema = schema
        self.values = values

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self.values[self.schema._index[attribute]]
        except KeyError as exc:
            raise SchemaError(
                f"attribute {attribute!r} not in schema of {self.relation!r}"
            ) from exc

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.schema.relation, self.values))
            self._hash = value
            return value

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Tuple):
            return NotImplemented
        return self.values == other.values and (
            self.schema is other.schema or self.schema == other.schema
        )

    def get(self, attribute: str, default: Any = None) -> Any:
        """Value of ``attribute``, or ``default`` if the schema lacks it."""
        if attribute in self.schema._index:
            return self[attribute]
        return default

    @property
    def relation(self) -> str:
        """Name of the relation this tuple belongs to."""
        return self.schema.relation

    @property
    def key(self) -> PyTuple[Any, ...]:
        """Hashable identity used in provenance hash tables: (relation, values)."""
        try:
            return self._key
        except AttributeError:
            value = (self.schema.relation,) + self.values
            self._key = value
            return value

    @property
    def partition_value(self) -> Any:
        """Value of the schema's partition attribute (where the tuple lives)."""
        return self[self.schema.partition_attribute]

    def project(self, schema: Schema, attributes: Sequence[str]) -> "Tuple":
        """Project this tuple onto ``attributes`` producing a tuple of ``schema``."""
        values = tuple(self[attribute] for attribute in attributes)
        return Tuple(schema, values)

    def as_dict(self) -> Dict[str, Any]:
        """Attribute-name -> value mapping."""
        return dict(zip(self.schema.attributes, self.values))

    def replace(self, **changes: Any) -> "Tuple":
        """Return a copy with some attribute values replaced."""
        mapping = self.as_dict()
        for attribute, value in changes.items():
            if attribute not in mapping:
                raise SchemaError(
                    f"attribute {attribute!r} not in schema of {self.relation!r}"
                )
            mapping[attribute] = value
        return self.schema.tuple(**mapping)

    def size_bytes(self) -> int:
        """Estimated wire size of the tuple payload (no provenance), memoised."""
        try:
            return self._size
        except AttributeError:
            value = 4 + sum(_value_size(value) for value in self.values)
            self._size = value
            return value

    def __getstate__(self):
        return (self.schema, self.values)

    def __setstate__(self, state):
        self.schema, self.values = state

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __repr__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.values)
        return f"{self.relation}({rendered})"


def make_schema(relation: str, attributes: Iterable[str], partition_attribute: str = "") -> Schema:
    """Convenience function mirroring the paper's ``relation(attr, ...)`` notation."""
    return Schema(relation, tuple(attributes), partition_attribute)
