"""Insert/delete updates — the unit of stream processing.

The paper's execution model processes *update streams* rather than tuple
streams: every element is either an insertion (INS) or a deletion (DEL) of a
tuple, optionally annotated with provenance (the ``pv`` field in Algorithms
1-4).  Updates also carry the simulated timestamp at which they were injected
so that soft-state windows can expire them.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.data.tuples import Tuple


class UpdateType(enum.Enum):
    """Kind of update: insertion or deletion."""

    INS = "INS"
    DEL = "DEL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Update:
    """A single stream element: ``(type, tuple, pv)`` plus bookkeeping fields.

    ``provenance`` is intentionally untyped at this layer: depending on the
    maintenance strategy it is a BDD (absorption), a set of derivation edges
    (relative provenance), ``None`` (DRed / set semantics), or an integer
    (counting).  The provenance trackers in :mod:`repro.provenance` interpret
    it.

    A plain ``__slots__`` class rather than a frozen dataclass: updates are
    constructed once per emitted delta on every operator path, and the frozen
    dataclass ``__init__`` (one ``object.__setattr__`` per field) was a
    measurable cost there.  Treat instances as immutable.
    """

    __slots__ = ("type", "tuple", "provenance", "timestamp", "origin_node")

    def __init__(
        self,
        type: UpdateType,
        tuple: Tuple,
        provenance: Any = None,
        timestamp: float = 0.0,
        origin_node: Optional[int] = None,
    ) -> None:
        self.type = type
        self.tuple = tuple
        self.provenance = provenance
        self.timestamp = timestamp
        self.origin_node = origin_node

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Update):
            return NotImplemented
        return (
            self.type is other.type
            and self.tuple == other.tuple
            and self.provenance == other.provenance
            and self.timestamp == other.timestamp
            and self.origin_node == other.origin_node
        )

    def __hash__(self) -> int:
        # Provenance is excluded (it may be any annotation type); equal
        # updates still hash equal, which is all the contract requires.
        return hash((self.type, self.tuple, self.timestamp, self.origin_node))

    def __getstate__(self):
        return (self.type, self.tuple, self.provenance, self.timestamp, self.origin_node)

    def __setstate__(self, state):
        self.type, self.tuple, self.provenance, self.timestamp, self.origin_node = state

    @property
    def is_insert(self) -> bool:
        """True for INS updates."""
        return self.type is UpdateType.INS

    @property
    def is_delete(self) -> bool:
        """True for DEL updates."""
        return self.type is UpdateType.DEL

    @property
    def relation(self) -> str:
        """Relation name of the payload tuple."""
        return self.tuple.relation

    def with_provenance(self, provenance: Any) -> "Update":
        """Copy of the update with a different provenance annotation.

        Hand-rolled constructor calls (rather than ``dataclasses.replace``):
        these copies run once per emitted delta on the hot operator paths.
        """
        return Update(self.type, self.tuple, provenance, self.timestamp, self.origin_node)

    def with_type(self, update_type: UpdateType) -> "Update":
        """Copy of the update with a different type (INS <-> DEL)."""
        return Update(update_type, self.tuple, self.provenance, self.timestamp, self.origin_node)

    def with_timestamp(self, timestamp: float) -> "Update":
        """Copy of the update stamped at ``timestamp``."""
        return Update(self.type, self.tuple, self.provenance, timestamp, self.origin_node)

    def inverted(self) -> "Update":
        """The opposite operation on the same tuple (used by DRed rederivation)."""
        opposite = UpdateType.DEL if self.is_insert else UpdateType.INS
        return Update(opposite, self.tuple, self.provenance, self.timestamp, self.origin_node)

    def size_bytes(self, provenance_bytes: int = 0) -> int:
        """Wire size: 1 byte tag + tuple payload + provenance annotation."""
        return 1 + self.tuple.size_bytes() + provenance_bytes

    def __repr__(self) -> str:
        return f"{self.type.value} {self.tuple!r}"


def insert(tuple_: Tuple, provenance: Any = None, timestamp: float = 0.0) -> Update:
    """Shorthand for an insertion update."""
    return Update(UpdateType.INS, tuple_, provenance, timestamp)


def delete(tuple_: Tuple, provenance: Any = None, timestamp: float = 0.0) -> Update:
    """Shorthand for a deletion update."""
    return Update(UpdateType.DEL, tuple_, provenance, timestamp)
