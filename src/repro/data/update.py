"""Insert/delete updates — the unit of stream processing.

The paper's execution model processes *update streams* rather than tuple
streams: every element is either an insertion (INS) or a deletion (DEL) of a
tuple, optionally annotated with provenance (the ``pv`` field in Algorithms
1-4).  Updates also carry the simulated timestamp at which they were injected
so that soft-state windows can expire them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.data.tuples import Tuple


class UpdateType(enum.Enum):
    """Kind of update: insertion or deletion."""

    INS = "INS"
    DEL = "DEL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Update:
    """A single stream element: ``(type, tuple, pv)`` plus bookkeeping fields.

    ``provenance`` is intentionally untyped at this layer: depending on the
    maintenance strategy it is a BDD (absorption), a set of derivation edges
    (relative provenance), ``None`` (DRed / set semantics), or an integer
    (counting).  The provenance trackers in :mod:`repro.provenance` interpret
    it.
    """

    type: UpdateType
    tuple: Tuple
    provenance: Any = None
    timestamp: float = 0.0
    origin_node: Optional[int] = None

    @property
    def is_insert(self) -> bool:
        """True for INS updates."""
        return self.type is UpdateType.INS

    @property
    def is_delete(self) -> bool:
        """True for DEL updates."""
        return self.type is UpdateType.DEL

    @property
    def relation(self) -> str:
        """Relation name of the payload tuple."""
        return self.tuple.relation

    def with_provenance(self, provenance: Any) -> "Update":
        """Copy of the update with a different provenance annotation."""
        return replace(self, provenance=provenance)

    def with_type(self, update_type: UpdateType) -> "Update":
        """Copy of the update with a different type (INS <-> DEL)."""
        return replace(self, type=update_type)

    def with_timestamp(self, timestamp: float) -> "Update":
        """Copy of the update stamped at ``timestamp``."""
        return replace(self, timestamp=timestamp)

    def inverted(self) -> "Update":
        """The opposite operation on the same tuple (used by DRed rederivation)."""
        opposite = UpdateType.DEL if self.is_insert else UpdateType.INS
        return replace(self, type=opposite)

    def size_bytes(self, provenance_bytes: int = 0) -> int:
        """Wire size: 1 byte tag + tuple payload + provenance annotation."""
        return 1 + self.tuple.size_bytes() + provenance_bytes

    def __repr__(self) -> str:
        return f"{self.type.value} {self.tuple!r}"


def insert(tuple_: Tuple, provenance: Any = None, timestamp: float = 0.0) -> Update:
    """Shorthand for an insertion update."""
    return Update(UpdateType.INS, tuple_, provenance, timestamp)


def delete(tuple_: Tuple, provenance: Any = None, timestamp: float = 0.0) -> Update:
    """Shorthand for a deletion update."""
    return Update(UpdateType.DEL, tuple_, provenance, timestamp)
