"""Batches of updates — the first-class delta unit of the pipeline.

The paper demonstrates the value of batching at exactly one point of the plan
(MinShip's buffered shipping, Algorithm 3); this module generalises the idea
to the *whole* pipeline.  An :class:`UpdateBatch` is an ordered sequence of
updates treated as one delta:

* **type runs** — the batch splits into maximal runs of consecutive
  same-type updates (:func:`split_runs`).  Reordering *within* a run is safe
  for every operator (insertions of distinct tuples never interact, and
  same-tuple annotations merge through a commutative ``disjoin``), while the
  relative order of an INS run and the DEL run that follows it must be
  preserved — MinShip's lazy flush, for example, emits a DEL/INS pair whose
  order is meaningful;
* **per-key grouping** — within a run, updates of the same tuple are grouped
  (:func:`group_by_tuple`) so an operator can merge their annotations with a
  single disjoin chain and probe/emit once per key instead of once per tuple;
* **coalescing** — :meth:`UpdateBatch.coalesced` performs that same-key
  merge eagerly, producing a batch with at most one update per (run, tuple).

:class:`BatchPolicy` is the knob surface: the maximum updates carried per
injected message and the set of ports processed batch-wise.  The degenerate
:meth:`BatchPolicy.tuple_at_a_time` policy reproduces the historical
one-update-per-message pipeline exactly, which is what the batch-equivalence
property tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from repro.data.tuples import Tuple
from repro.data.update import Update

__all__ = [
    "UpdateBatch",
    "BatchPolicy",
    "split_runs",
    "group_by_tuple",
]


def split_runs(updates: Iterable[Update]) -> List[PyTuple[bool, List[Update]]]:
    """Split ``updates`` into maximal runs of consecutive same-type updates.

    Returns ``[(is_insert, run), ...]`` preserving the original order.  The
    run boundary is the only ordering constraint batch processing must honour:
    an INS and a DEL of the same tuple must not commute.
    """
    runs: List[PyTuple[bool, List[Update]]] = []
    current: Optional[List[Update]] = None
    current_type: Optional[bool] = None
    for update in updates:
        if current is None or update.is_insert is not current_type:
            current = [update]
            current_type = update.is_insert
            runs.append((current_type, current))
        else:
            current.append(update)
    return runs


def group_by_tuple(run: Iterable[Update]) -> Dict[Tuple, List[Update]]:
    """Group a same-type run by payload tuple, preserving first-seen order.

    (Python dicts preserve insertion order, which is what keeps batched
    emission deterministic.)
    """
    groups: Dict[Tuple, List[Update]] = {}
    for update in run:
        groups.setdefault(update.tuple, []).append(update)
    return groups


@dataclass(frozen=True)
class UpdateBatch(Sequence):
    """An ordered batch of updates treated as one delta.

    ``UpdateBatch`` is a :class:`~collections.abc.Sequence` of
    :class:`~repro.data.update.Update`, so every consumer of
    ``Sequence[Update]`` (the network, the WAL, the port handlers) accepts it
    unchanged.
    """

    updates: PyTuple[Update, ...]

    def __init__(self, updates: Iterable[Update]) -> None:
        object.__setattr__(self, "updates", tuple(updates))

    # -- Sequence protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.updates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return UpdateBatch(self.updates[index])
        return self.updates[index]

    def __iter__(self) -> Iterator[Update]:
        return iter(self.updates)

    # -- structure ---------------------------------------------------------------
    @property
    def insert_count(self) -> int:
        """Number of insertions carried."""
        return sum(1 for update in self.updates if update.is_insert)

    @property
    def delete_count(self) -> int:
        """Number of deletions carried."""
        return len(self.updates) - self.insert_count

    def runs(self) -> List[PyTuple[bool, List[Update]]]:
        """The batch's maximal same-type runs (see :func:`split_runs`)."""
        return split_runs(self.updates)

    def coalesced(self, store) -> "UpdateBatch":
        """Merge same-tuple updates within each type run into single updates.

        Insertions of the same tuple merge their annotations through the
        store's ``disjoin`` (alternative derivations), deletions likewise;
        annotation-less duplicates collapse to one update.  The INS/DEL run
        structure — the part of the ordering that carries meaning — is
        preserved.

        **Why collapsing annotation-less duplicates is sound.**  A ``None``
        annotation means set semantics (DRed, raw base injections), and every
        consumer is idempotent under it: the fixpoint's insert path absorbs a
        re-insertion of a present tuple (no change, nothing cascades), and
        its delete path with ``provenance=None`` removes-if-present, so the
        second DEL of the same tuple in a run is a no-op.  Dropping the
        duplicates therefore leaves every downstream view bit-identical —
        verified by the duplicate-update DRed cases in
        ``tests/property/test_batch_equivalence.py``.

        A *mixed* group — the same tuple carried both with and without an
        annotation in one run — collapses to an annotation-less update:
        ``None`` reads as the unconditionally-true annotation (``store.one()``),
        which absorbs any disjunction it joins, so ``None`` is the merged
        group's exact value.  Keeping ``items[-1]`` verbatim instead would
        smuggle an arbitrary member's narrower annotation into the merge.
        """
        merged: List[Update] = []
        for _, run in split_runs(self.updates):
            for tuple_, items in group_by_tuple(run).items():
                if len(items) == 1:
                    merged.append(items[0])
                    continue
                annotations = [item.provenance for item in items]
                if any(annotation is None for annotation in annotations):
                    merged.append(items[-1].with_provenance(None))
                    continue
                merged.append(items[-1].with_provenance(store.disjoin_many(annotations)))
        return UpdateBatch(merged)

    def chunks(self, max_batch: int) -> Iterator["UpdateBatch"]:
        """Split into consecutive sub-batches of at most ``max_batch`` updates."""
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        for start in range(0, len(self.updates), max_batch):
            yield UpdateBatch(self.updates[start : start + max_batch])

    def __repr__(self) -> str:
        return f"UpdateBatch({self.insert_count} INS, {self.delete_count} DEL)"


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively the pipeline batches updates.

    * ``max_batch`` — maximum updates per injected message (the executor
      splits larger workload phases into chunks of this size per owner node);
    * ``ports`` — the set of ports handled batch-wise at the nodes.  ``None``
      batches every port; an explicit set restricts batching to those ports,
      with the rest processed one update at a time (useful for ablations and
      for the equivalence tests).
    """

    max_batch: int = 64
    ports: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.ports is not None:
            object.__setattr__(self, "ports", frozenset(self.ports))

    @staticmethod
    def tuple_at_a_time() -> "BatchPolicy":
        """The historical pipeline: one update per message, no batch handling."""
        return BatchPolicy(max_batch=1, ports=frozenset())

    def batches_port(self, port: str) -> bool:
        """Whether deliveries on ``port`` are processed as whole batches."""
        return self.ports is None or port in self.ports

    def injection_chunk(self, port: str) -> int:
        """Updates per injected message for workload data entering ``port``."""
        return self.max_batch if self.batches_port(port) else 1

    def chunk(self, updates: Sequence[Update], port: str) -> Iterator[Sequence[Update]]:
        """Split a workload batch into injectable chunks for ``port``."""
        size = self.injection_chunk(port)
        for start in range(0, len(updates), size):
            yield updates[start : start + size]

    @property
    def label(self) -> str:
        """Short human-readable description used in benchmark rows."""
        if self.max_batch == 1 and self.ports == frozenset():
            return "tuple-at-a-time"
        scope = "all ports" if self.ports is None else ",".join(sorted(self.ports))
        return f"batch<= {self.max_batch} ({scope})"
