"""Time-based sliding windows for soft-state base tuples.

The paper (Sections 3.1 and 4.3.3) supports windows only over *base*
relations: an inserted base tuple receives a time-to-live, and once the window
slides past it the tuple is deleted, which cascades through the recursive view
exactly like an explicit deletion.  :class:`SlidingWindow` implements that
bookkeeping; operators call :meth:`SlidingWindow.observe` for every update and
receive back the set of expirations to process as deletions (the ``WR`` /
``WS`` window functions of Algorithm 2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType


@dataclass(frozen=True)
class WindowExpiration:
    """An expired base tuple, reported back to the caller as a deletion to emit."""

    tuple: Tuple
    inserted_at: float
    expired_at: float


class SlidingWindow:
    """Tracks insertion times of base tuples and expires them after ``size`` time units.

    A window of ``None`` (or infinity) means "no expiry" — the common case for
    derived relations, for which the paper performs no window bookkeeping.
    """

    def __init__(self, size: Optional[float] = None) -> None:
        if size is not None and size <= 0:
            raise ValueError("window size must be positive (or None for no window)")
        self.size = size
        self._inserted_at: Dict[Tuple, float] = {}
        self._expiry_heap: List[PyTuple[float, int, Tuple]] = []
        self._counter = 0

    @property
    def is_unbounded(self) -> bool:
        """True when the window never expires tuples."""
        return self.size is None

    def __len__(self) -> int:
        return len(self._inserted_at)

    def __contains__(self, tuple_: Tuple) -> bool:
        return tuple_ in self._inserted_at

    def observe(self, update: Update, now: Optional[float] = None) -> List[WindowExpiration]:
        """Record ``update`` and return the base tuples that have expired by ``now``.

        Insertions (re)start the tuple's lifetime; deletions remove the tuple
        from window bookkeeping (it is being deleted explicitly anyway).  The
        returned expirations never include the tuple being processed in the
        same call when it was just inserted.
        """
        timestamp = update.timestamp if now is None else now
        if self.is_unbounded:
            return []
        if update.type is UpdateType.INS:
            self._inserted_at[update.tuple] = timestamp
            self._counter += 1
            heapq.heappush(
                self._expiry_heap,
                (timestamp + self.size, self._counter, update.tuple),
            )
        else:
            self._inserted_at.pop(update.tuple, None)
        return self.expire(timestamp)

    def expire(self, now: float) -> List[WindowExpiration]:
        """Pop and return every tuple whose lifetime ended at or before ``now``."""
        if self.is_unbounded:
            return []
        expired: List[WindowExpiration] = []
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            expires_at, _, tuple_ = heapq.heappop(self._expiry_heap)
            inserted_at = self._inserted_at.get(tuple_)
            if inserted_at is None:
                continue  # deleted explicitly, or re-inserted later (stale heap entry)
            if inserted_at + self.size != expires_at:
                continue  # re-inserted since this heap entry was created
            del self._inserted_at[tuple_]
            expired.append(
                WindowExpiration(tuple=tuple_, inserted_at=inserted_at, expired_at=expires_at)
            )
        return expired

    def live_tuples(self) -> List[Tuple]:
        """Tuples currently inside the window."""
        return list(self._inserted_at)

    def state_bytes(self) -> int:
        """Approximate memory footprint of the window bookkeeping."""
        return sum(t.size_bytes() + 16 for t in self._inserted_at)
