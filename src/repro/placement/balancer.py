"""Load-aware rebalancing: turn per-node load skew into ring-weight changes.

The network statistics already break traffic down per node
(:meth:`repro.net.stats.NetworkStats.per_node_rows`), and every processor node
reports its operator-state footprint.  The rebalancer combines the two into a
scalar load per node and, when the cluster is skewed beyond a threshold,
proposes new virtual-node weights inversely proportional to each node's load
share — a hot node sheds arcs, a cold node picks them up.  The
:class:`~repro.placement.elastic.ElasticExecutor` applies the proposal as one
placement epoch and migrates the remapped state.
"""

from __future__ import annotations

from typing import Dict, Optional


class LoadAwareRebalancer:
    """Proposes consistent-hash weights from observed per-node load."""

    def __init__(
        self,
        imbalance_threshold: float = 1.3,
        min_weight_factor: float = 0.25,
        max_weight_factor: float = 2.0,
    ) -> None:
        if imbalance_threshold < 1.0:
            raise ValueError("imbalance_threshold must be >= 1.0")
        if not 0.0 < min_weight_factor <= 1.0 <= max_weight_factor:
            raise ValueError("need 0 < min_weight_factor <= 1 <= max_weight_factor")
        self.imbalance_threshold = imbalance_threshold
        self.min_weight_factor = min_weight_factor
        self.max_weight_factor = max_weight_factor

    def plan_weights(
        self,
        current_weights: Dict[int, int],
        default_weight: int,
        loads: Dict[int, float],
    ) -> Optional[Dict[int, int]]:
        """New per-node weights, or ``None`` when the cluster is balanced.

        ``loads`` is any non-negative scalar per node (the elastic executor
        feeds delivered updates plus a state-size term).  A node's proposed
        weight is ``default_weight * (mean load / its load)``, clamped to
        ``[min_weight_factor, max_weight_factor]`` times the default so a
        single quiet node cannot swallow the whole ring.
        """
        members = sorted(current_weights)
        if len(members) < 2:
            return None
        values = [max(loads.get(node, 0.0), 0.0) for node in members]
        total = sum(values)
        if total <= 0.0:
            return None
        mean = total / len(members)
        if max(values) <= self.imbalance_threshold * mean:
            return None
        floor = max(1, round(default_weight * self.min_weight_factor))
        ceiling = max(floor, round(default_weight * self.max_weight_factor))
        proposal: Dict[int, int] = {}
        for node, load in zip(members, values):
            share = (mean / load) if load > 0.0 else self.max_weight_factor
            weight = round(default_weight * min(share, self.max_weight_factor))
            proposal[node] = min(max(weight, floor), ceiling)
        if proposal == {node: current_weights[node] for node in members}:
            return None
        return proposal
