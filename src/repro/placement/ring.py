"""Partitioner protocol and the consistent-hash ring with virtual nodes.

The paper's deployment maps keys to processors through a FreePastry DHT; the
seed reproduction replaced that with a stable hash *modulo the processor
count* (:class:`~repro.net.partition.HashPartitioner`).  Modulo hashing is
fine for a frozen cluster but catastrophic for an elastic one: changing the
node count remaps almost every key, so growing a cluster by one node would
migrate nearly all operator state.

:class:`ConsistentHashRing` restores the DHT's key property: each node owns
the arcs ending at its *virtual nodes* on a hash ring, so adding a node only
steals ≈ ``1/(N+1)`` of the key space (always from existing nodes, never
shuffling keys between them) and removing a node only re-homes the keys it
owned.  Virtual-node counts double as per-node *weights*, which is the lever
the load-aware rebalancer pulls: shrinking a hot node's weight sheds a
proportional share of its arcs onto its peers.

Both partitioners implement the :class:`Partitioner` protocol consumed by the
engine, so a :class:`~repro.placement.map.PlacementMap` can wrap either.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple as PyTuple,
)

from repro.data.relation import stable_hash

_MASK64 = 0xFFFFFFFFFFFFFFFF


def ring_hash(value: Any) -> int:
    """Position of ``value`` on the 64-bit hash ring.

    ``stable_hash`` (FNV-1a) alone is unsuitable for ring placement: inputs
    differing only in their final bytes land within a narrow band of each
    other (the last byte contributes at most ``255 * FNV_prime`` ≈ 2^48 of
    spread), so structurally similar keys would move between nodes in blocks.
    A splitmix64-style finalizer diffuses every input bit across the word,
    which is what gives the ring its ≈ 1/(N+1) minimal-disruption property.
    """
    acc = stable_hash(value)
    acc = ((acc ^ (acc >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    acc = ((acc ^ (acc >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return acc ^ (acc >> 33)


class Partitioner(Protocol):
    """Maps partition-key values to processor node ids.

    Implemented by :class:`~repro.net.partition.HashPartitioner` (stable hash
    modulo a frozen node count) and :class:`ConsistentHashRing` (virtual-node
    consistent hashing, mutable membership).
    """

    @property
    def node_count(self) -> int:
        """Number of member nodes."""
        ...  # pragma: no cover - protocol

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids."""
        ...  # pragma: no cover - protocol

    def node_for(self, key: Any) -> int:
        """Processor node responsible for ``key``."""
        ...  # pragma: no cover - protocol

    def nodes_for_many(self, keys: Sequence[Any]) -> List[int]:
        """Owners of a key column, positionally parallel to ``keys``."""
        ...  # pragma: no cover - protocol


class RingError(ValueError):
    """Raised on invalid ring mutations (duplicate add, removing the last node)."""


class ConsistentHashRing:
    """Consistent hashing over virtual nodes, with per-node weights.

    Each member node contributes ``weight`` points (virtual nodes) to the
    ring; a key belongs to the node owning the first ring point clockwise of
    the key's hash.  Explicit ``overrides`` pin individual keys to nodes, for
    parity with :class:`~repro.net.partition.HashPartitioner` (the worked
    example's "node A stores src = A" convention).
    """

    def __init__(
        self,
        nodes: Iterable[int] = (),
        virtual_nodes: int = 64,
        weights: Optional[Dict[int, int]] = None,
        overrides: Optional[Dict[Any, int]] = None,
    ) -> None:
        if virtual_nodes <= 0:
            raise RingError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self._weights: Dict[int, int] = {}
        self._overrides = dict(overrides or {})
        self._points: List[int] = []
        self._owners: List[int] = []
        weights = weights or {}
        for node in nodes:
            self._set_membership(node, weights.get(node, virtual_nodes))
        self._rebuild()

    # -- membership ----------------------------------------------------------------
    def _set_membership(self, node: int, weight: int) -> None:
        if node < 0:
            raise RingError("node ids must be non-negative")
        if weight <= 0:
            raise RingError("weight must be positive")
        self._weights[node] = weight

    def _rebuild(self) -> None:
        points: List[PyTuple[int, int]] = []
        for node, weight in self._weights.items():
            for replica in range(weight):
                points.append((ring_hash(("vnode", node, replica)), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def add_node(self, node: int, weight: Optional[int] = None) -> None:
        """Join ``node`` with ``weight`` virtual nodes (default: the ring's)."""
        if node in self._weights:
            raise RingError(f"node {node} is already on the ring")
        self._set_membership(node, self.virtual_nodes if weight is None else weight)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        """Leave the ring; the node's arcs fall to its clockwise successors."""
        if node not in self._weights:
            raise RingError(f"node {node} is not on the ring")
        if len(self._weights) == 1:
            raise RingError("cannot remove the last node from the ring")
        del self._weights[node]
        self._overrides = {
            key: owner for key, owner in self._overrides.items() if owner != node
        }
        self._rebuild()

    def set_weight(self, node: int, weight: int) -> None:
        """Change a member's virtual-node count (load-aware rebalancing)."""
        if node not in self._weights:
            raise RingError(f"node {node} is not on the ring")
        self._set_membership(node, weight)
        self._rebuild()

    def weight_of(self, node: int) -> int:
        """Current virtual-node count of ``node``."""
        if node not in self._weights:
            raise RingError(f"node {node} is not on the ring")
        return self._weights[node]

    def weights(self) -> Dict[int, int]:
        """Current per-node virtual-node counts."""
        return dict(self._weights)

    # -- Partitioner protocol --------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of member nodes."""
        return len(self._weights)

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids, sorted."""
        return tuple(sorted(self._weights))

    def node_for(self, key: Any) -> int:
        """Processor node responsible for ``key``."""
        if key in self._overrides:
            return self._overrides[key]
        if not self._points:
            raise RingError("the ring has no nodes")
        index = bisect_right(self._points, ring_hash(key)) % len(self._points)
        return self._owners[index]

    def nodes_for_many(self, keys: Sequence[Any]) -> List[int]:
        """Owners of a whole key column in one bulk pass (columnar routing).

        Binds the ring arrays, the override table and the hash/bisect calls
        once per batch; the result list is positionally parallel to ``keys``.
        """
        if not self._points:
            raise RingError("the ring has no nodes")
        points = self._points
        owners = self._owners
        size = len(points)
        overrides_get = self._overrides.get if self._overrides else None
        bisect = bisect_right
        hash_ = ring_hash
        result: List[int] = []
        append = result.append
        for key in keys:
            if overrides_get is not None:
                pinned = overrides_get(key)
                if pinned is not None:
                    append(pinned)
                    continue
            append(owners[bisect(points, hash_(key)) % size])
        return result

    def __call__(self, key: Any) -> int:
        return self.node_for(key)

    def assign(self, key: Any, node: int) -> None:
        """Pin ``key`` to an explicit member node."""
        if node not in self._weights:
            raise RingError(f"node {node} is not on the ring")
        self._overrides[key] = node

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing({self.node_count} nodes, "
            f"{len(self._points)} virtual nodes)"
        )
