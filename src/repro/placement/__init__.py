"""Elastic placement: consistent-hash partitioning, live migration, scaling.

The paper's scalability experiment (Figure 13) compares *static* cluster
sizes.  This package makes node ownership a first-class, versioned, runtime-
mutable concept so a running cluster can grow, shrink and rebalance:

* :mod:`repro.placement.ring` — the :class:`Partitioner` protocol (which the
  seed's modulo :class:`~repro.net.partition.HashPartitioner` also satisfies)
  and :class:`ConsistentHashRing`, virtual-node consistent hashing whose
  per-node weights double as the rebalancer's lever;
* :mod:`repro.placement.map` — :class:`PlacementMap`, the epoch-versioned
  ownership map the engine routes through; every mutation bumps the epoch,
  and batches delivered under a stale epoch bounce exactly once to the
  current owner;
* :mod:`repro.placement.migration` — the live migration protocol: state
  slices are re-owned by their routing keys, flattened through the
  checkpoint codec (:mod:`repro.fault.snapshot` / :mod:`repro.bdd.serialize`)
  and absorbed by the new owner with purge catch-up semantics;
* :mod:`repro.placement.balancer` — :class:`LoadAwareRebalancer`, which turns
  per-node traffic/state skew into new ring weights;
* :mod:`repro.placement.elastic` — :class:`ElasticExecutor` with
  ``add_node`` / ``remove_node`` / ``rebalance`` plus scheduled mid-run
  variants, driven by the harness's ``elastic`` experiment.
"""

from repro.placement.balancer import LoadAwareRebalancer
from repro.placement.elastic import ElasticExecutor, elastic_executor
from repro.placement.map import PlacementError, PlacementMap
from repro.placement.migration import (
    MigrationReport,
    base_partition_indexes,
    migrate_cluster_state,
)
from repro.placement.ring import ConsistentHashRing, Partitioner, RingError, ring_hash

__all__ = [
    "ConsistentHashRing",
    "ElasticExecutor",
    "LoadAwareRebalancer",
    "MigrationReport",
    "Partitioner",
    "PlacementError",
    "PlacementMap",
    "RingError",
    "base_partition_indexes",
    "elastic_executor",
    "migrate_cluster_state",
    "ring_hash",
]
