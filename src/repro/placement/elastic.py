"""The elastic executor: runtime scale-out/scale-in of a live cluster.

:class:`ElasticExecutor` extends the plain
:class:`~repro.engine.executor.DistributedViewExecutor` with the placement
subsystem: routing goes through an epoch-versioned
:class:`~repro.placement.map.PlacementMap` over a consistent-hash ring, and
the cluster can be mutated *while a workload is running*:

* :meth:`add_node` admits a fresh processor, seeds it with the cluster's
  deletion tombstones, and migrates the ≈ ``1/(N+1)`` of the key space the
  ring hands it;
* :meth:`remove_node` drains a processor — its partitions, incarnation
  counters and MinShip tables re-home on the survivors — and decommissions
  it (the node stays registered so in-flight messages still get delivered
  and bounced to the current owners);
* :meth:`rebalance` measures per-node load (delivered updates plus operator
  state) and, when skew exceeds the rebalancer's threshold, installs new ring
  weights and migrates the difference.

Each mutation has a ``schedule_*`` twin that fires as a control event at a
virtual time, so a scale-out genuinely interleaves with message deliveries:
batches routed under the superseded epoch bounce exactly once to the current
owner, counted in :meth:`placement_stats` and reported by the harness's
``elastic`` experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.engine.executor import DistributedViewExecutor
from repro.engine.plan import RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy
from repro.net.latency import ClusterLatencyModel, LatencyModel
from repro.placement.balancer import LoadAwareRebalancer
from repro.placement.map import PlacementError, PlacementMap
from repro.obs.trace import CONTROL_PID
from repro.placement.migration import MigrationReport, migrate_cluster_state
from repro.placement.ring import ConsistentHashRing


class ElasticExecutor(DistributedViewExecutor):
    """A distributed executor whose cluster can grow, shrink and rebalance mid-run."""

    def __init__(
        self,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        node_count: int = 12,
        virtual_nodes: int = 64,
        rebalancer: Optional[LoadAwareRebalancer] = None,
        placement: Optional[PlacementMap] = None,
        **kwargs: object,
    ) -> None:
        if plan.has_aggregate_selection or plan.edge_window is not None:
            raise PlacementError(
                "elastic migration does not support aggregate selections or "
                "windowed joins yet (their operator state is not key-sliceable)"
            )
        if placement is None:
            placement = PlacementMap(
                ConsistentHashRing(range(node_count), virtual_nodes=virtual_nodes)
            )
        self.ring = placement.partitioner  # the mutable partitioner underneath
        super().__init__(plan, strategy, partitioner=placement, **kwargs)
        self.placement: PlacementMap = placement
        self.rebalancer = rebalancer or LoadAwareRebalancer()
        #: One report per placement change, in the order they were applied.
        self.migrations: List[MigrationReport] = []
        self.network.set_epoch_provider(lambda: self.placement.epoch)

    # -- membership mutations -------------------------------------------------------
    def add_node(self, weight: Optional[int] = None, now: Optional[float] = None) -> int:
        """Admit one fresh processor node and migrate its key range to it.

        Returns the new node's id.  Safe mid-run: messages already in flight
        towards the previous owners arrive with a stale epoch and bounce.
        """
        at_time = self.network.now if now is None else now
        node_id = self.network.add_node()
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(CONTROL_PID, f"add-node:{node_id}", "control", sim_ts=at_time)
        node = self._make_node(node_id)
        # A late joiner missed every purge broadcast so far; the union of the
        # cluster's tombstones is exactly what it must know about before any
        # migrated or in-flight annotation reaches it.
        tombstones: set = set()
        for peer in self.nodes:
            tombstones.update(peer.deletion_tombstones())
        node.add_deletion_tombstones(tombstones)
        self.nodes.append(node)
        self._register_node(node_id, node)
        self.placement.add_node(node_id, weight)
        self._migrate(at_time)
        return node_id

    def _register_node(self, node_id: int, node) -> None:
        """Wire a freshly admitted node's handler into the network.

        Subclass hook: the fault-tolerant chaos composition overrides this to
        front the new node with a durability shim (WAL + checkpoints), so a
        node admitted mid-run is just as killable as the founding members.
        """
        self.network.register(node_id, node.handle)

    def remove_node(self, node_id: int, now: Optional[float] = None) -> None:
        """Drain ``node_id``'s state onto the survivors and decommission it."""
        at_time = self.network.now if now is None else now
        if not self.network.is_active(node_id):
            raise PlacementError(f"node {node_id} is not an active cluster member")
        if node_id not in self.placement.nodes:
            raise PlacementError(f"node {node_id} is not in the placement map")
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                CONTROL_PID, f"remove-node:{node_id}", "control", sim_ts=at_time
            )
        self.placement.remove_node(node_id)
        self._migrate(at_time)
        self.network.deactivate(node_id)

    def rebalance(self, now: Optional[float] = None) -> Optional[MigrationReport]:
        """Shift ring weight away from hot nodes; ``None`` when already balanced."""
        at_time = self.network.now if now is None else now
        if not hasattr(self.ring, "weights"):
            raise PlacementError(
                f"the placement's partitioner ({type(self.ring).__name__}) has no "
                "weights; wrap a ConsistentHashRing to rebalance"
            )
        proposal = self.rebalancer.plan_weights(
            self.ring.weights(), self.ring.virtual_nodes, self.node_loads()
        )
        if proposal is None:
            return None
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(CONTROL_PID, "rebalance", "control", sim_ts=at_time)
        self.placement.set_weights(proposal)
        return self._migrate(at_time)

    # -- scheduled (mid-run) variants ---------------------------------------------------
    def schedule_add_node(self, at_time: float, weight: Optional[int] = None) -> None:
        """Scale out at virtual time ``at_time``, while the workload is running."""
        self.network.schedule_control(
            lambda now: self.add_node(weight=weight, now=now), at_time
        )

    def schedule_remove_node(self, node_id: int, at_time: float) -> None:
        """Scale in at virtual time ``at_time``, while the workload is running."""
        self.network.schedule_control(
            lambda now: self.remove_node(node_id, now=now), at_time
        )

    def schedule_rebalance(self, at_time: float) -> None:
        """Run a load-aware rebalance at virtual time ``at_time``."""
        self.network.schedule_control(lambda now: self.rebalance(now=now), at_time)

    # -- load + diagnostics ---------------------------------------------------------------
    def node_loads(self) -> Dict[int, float]:
        """Scalar load per active node: delivered updates + a state-size term."""
        delivered = self.network.stats.updates_delivered_by_node
        loads: Dict[int, float] = {}
        for node in self.nodes:
            if not self.network.is_active(node.node_id):
                continue
            loads[node.node_id] = (
                float(delivered.get(node.node_id, 0)) + node.state_bytes() / 1000.0
            )
        return loads

    def moved_state_bytes(self) -> int:
        """Serialized size of all state moved by placement changes so far."""
        return sum(report.moved_state_bytes for report in self.migrations)

    def placement_stats(self) -> Dict[str, object]:
        """Churn / migration / misrouting counters for the elastic experiment."""
        stats: Dict[str, object] = dict(self.placement.stats())
        stats.update(
            {
                "active_nodes": len(self.network.active_nodes()),
                "migrations": len(self.migrations),
                "moved_state_bytes": self.moved_state_bytes(),
                "moved_entries": sum(r.moved_entries for r in self.migrations),
            }
        )
        return stats

    def _migrate(self, now: float) -> MigrationReport:
        report = migrate_cluster_state(self, now)
        self.migrations.append(report)
        return report


def elastic_executor(
    plan: RecursiveViewPlan,
    strategy: Union[str, ExecutionStrategy],
    node_count: int = 12,
    virtual_nodes: int = 64,
    latency_model: Optional[LatencyModel] = None,
    rebalancer: Optional[LoadAwareRebalancer] = None,
    processing_cost: float = 0.00002,
    max_events: int = 5_000_000,
    max_wall_seconds: Optional[float] = None,
    experiment: str = "experiment",
    batch_policy=None,
) -> ElasticExecutor:
    """Convenience constructor mirroring :func:`repro.queries.builder.build_executor`."""
    if isinstance(strategy, str):
        strategy = ExecutionStrategy.by_name(strategy)
    if latency_model is None:
        latency_model = ClusterLatencyModel(primary_cluster_size=min(node_count, 16))
    return ElasticExecutor(
        plan=plan,
        strategy=strategy,
        node_count=node_count,
        virtual_nodes=virtual_nodes,
        rebalancer=rebalancer,
        latency_model=latency_model,
        processing_cost=processing_cost,
        max_events=max_events,
        max_wall_seconds=max_wall_seconds,
        experiment=experiment,
        batch_policy=batch_policy,
    )
