"""The epoch-versioned placement map the elastic engine routes through.

A :class:`PlacementMap` wraps a mutable :class:`~repro.placement.ring.Partitioner`
(in practice a :class:`~repro.placement.ring.ConsistentHashRing`) and makes
node ownership a first-class, versioned, runtime-mutable concept:

* every routing decision — executor injection, per-node update shipping, the
  DRed coordinator — goes through :meth:`node_for`, so a single mutation
  changes routing cluster-wide at the next send;
* every mutation bumps the **epoch**.  The network stamps outgoing messages
  with the epoch they were routed under; a message delivered after the epoch
  moved on may sit at the wrong node, and the receiving
  :class:`~repro.engine.runtime.ProcessorNode` bounces its misrouted updates
  exactly once to the current owner (counted here, reported by the harness).

The map quacks like :class:`~repro.net.partition.HashPartitioner` (``node_for``,
``node_count``, ``__call__``), so the existing engine code consumes it
unmodified; the ``elastic`` marker is what switches the nodes' ownership
checks on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.placement.ring import Partitioner, RingError


class PlacementError(ValueError):
    """Raised on invalid placement mutations."""


class PlacementMap:
    """Versioned, runtime-mutable key -> node ownership."""

    #: Marks this partitioner as elastic: processor nodes verify ownership of
    #: delivered batches and bounce misrouted ones to the current owner.
    elastic = True

    def __init__(self, partitioner: Partitioner) -> None:
        self._partitioner = partitioner
        #: Placement version; bumped by every mutation.  Messages in flight
        #: across a bump carry the previous epoch and are re-validated on
        #: delivery.
        self.epoch = 0
        #: Batches that arrived at a superseded owner and were bounced on.
        self.misrouted_batches = 0
        #: Updates carried by those bounced batches.
        self.misrouted_updates = 0
        #: key -> owner cache, valid for one placement epoch.  Ring lookups
        #: (hash + bisect) dominate the per-update routing cost; the engine's
        #: routing layer resolves whole batches through this cache and any
        #: placement mutation invalidates it wholesale via the epoch stamp.
        self._owner_cache: Dict[Any, int] = {}
        self._cache_epoch = 0
        #: Bulk-lookup telemetry (see :meth:`routing_stats`).
        self.bulk_lookups = 0
        self.keys_routed = 0
        self.lookup_cache_hits = 0

    @property
    def partitioner(self) -> Partitioner:
        """The wrapped partitioner (a ring, for elastic deployments)."""
        return self._partitioner

    # -- Partitioner protocol ------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of member nodes."""
        return self._partitioner.node_count

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids."""
        return tuple(self._partitioner.nodes)

    def node_for(self, key: Any) -> int:
        """Current owner of ``key``."""
        cache = self._valid_cache()
        owner = cache.get(key)
        if owner is None:
            owner = self._partitioner.node_for(key)
            cache[key] = owner
        return owner

    def nodes_for_many(self, keys: Sequence[Any]) -> List[int]:
        """Current owners of a whole key column in one bulk pass.

        Cache hits cost one dictionary probe; misses fall through to the
        wrapped partitioner's own bulk lookup *as one call* (the uncached
        keys are collected and resolved columnar-style, then back-filled into
        their positions), so a cold batch still performs a single
        ``nodes_for_many`` against the ring.
        """
        cache = self._valid_cache()
        cache_get = cache.get
        owners: List[Optional[int]] = []
        append = owners.append
        misses: List[Any] = []
        miss_positions: List[int] = []
        for position, key in enumerate(keys):
            owner = cache_get(key)
            if owner is None:
                misses.append(key)
                miss_positions.append(position)
            append(owner)
        if misses:
            resolved = self._partitioner.nodes_for_many(misses)
            for position, key, owner in zip(miss_positions, misses, resolved):
                owners[position] = owner
                cache[key] = owner
        self.bulk_lookups += 1
        self.keys_routed += len(owners)
        self.lookup_cache_hits += len(owners) - len(misses)
        return owners  # type: ignore[return-value]

    def _valid_cache(self) -> Dict[Any, int]:
        """The owner cache, dropped wholesale when the epoch has moved on."""
        if self._cache_epoch != self.epoch:
            self._owner_cache.clear()
            self._cache_epoch = self.epoch
        return self._owner_cache

    def routing_stats(self) -> Dict[str, int]:
        """Bulk-lookup counters (uniform across partitioner implementations)."""
        return {
            "bulk_lookups": self.bulk_lookups,
            "keys_routed": self.keys_routed,
            "lookup_cache_hits": self.lookup_cache_hits,
        }

    def __call__(self, key: Any) -> int:
        return self.node_for(key)

    # -- mutations (each bumps the epoch) --------------------------------------------
    def _mutate(self, operation: str, *args: Any, **kwargs: Any) -> None:
        method = getattr(self._partitioner, operation, None)
        if method is None:
            raise PlacementError(
                f"the wrapped partitioner ({type(self._partitioner).__name__}) "
                f"does not support {operation!r}; wrap a ConsistentHashRing for "
                "elastic membership"
            )
        try:
            method(*args, **kwargs)
        except RingError as exc:
            raise PlacementError(str(exc)) from exc
        self.epoch += 1

    def add_node(self, node: int, weight: Optional[int] = None) -> None:
        """Admit ``node``; in-flight messages now carry a stale epoch."""
        self._mutate("add_node", node, weight)

    def remove_node(self, node: int) -> None:
        """Retire ``node``; its keys fall to the surviving members."""
        self._mutate("remove_node", node)

    def set_weights(self, weights: Dict[int, int]) -> None:
        """Install new per-node weights as one placement change (one epoch)."""
        if not weights:
            return
        setter = getattr(self._partitioner, "set_weight", None)
        if setter is None:
            raise PlacementError(
                f"the wrapped partitioner ({type(self._partitioner).__name__}) "
                "does not support weights; wrap a ConsistentHashRing to rebalance"
            )
        try:
            for node, weight in weights.items():
                setter(node, weight)
        except RingError as exc:
            raise PlacementError(str(exc)) from exc
        self.epoch += 1

    # -- misroute accounting -----------------------------------------------------------
    def record_misroute(self, update_count: int) -> None:
        """Record one bounced batch carrying ``update_count`` updates."""
        self.misrouted_batches += 1
        self.misrouted_updates += update_count

    def stats(self) -> Dict[str, int]:
        """Counters summarising the map's churn and misrouting activity."""
        return {
            "epoch": self.epoch,
            "nodes": self.node_count,
            "misrouted_batches": self.misrouted_batches,
            "misrouted_updates": self.misrouted_updates,
        }

    def __repr__(self) -> str:
        return f"PlacementMap(epoch={self.epoch}, nodes={self.node_count})"
