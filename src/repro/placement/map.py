"""The epoch-versioned placement map the elastic engine routes through.

A :class:`PlacementMap` wraps a mutable :class:`~repro.placement.ring.Partitioner`
(in practice a :class:`~repro.placement.ring.ConsistentHashRing`) and makes
node ownership a first-class, versioned, runtime-mutable concept:

* every routing decision — executor injection, per-node update shipping, the
  DRed coordinator — goes through :meth:`node_for`, so a single mutation
  changes routing cluster-wide at the next send;
* every mutation bumps the **epoch**.  The network stamps outgoing messages
  with the epoch they were routed under; a message delivered after the epoch
  moved on may sit at the wrong node, and the receiving
  :class:`~repro.engine.runtime.ProcessorNode` bounces its misrouted updates
  exactly once to the current owner (counted here, reported by the harness).

The map quacks like :class:`~repro.net.partition.HashPartitioner` (``node_for``,
``node_count``, ``__call__``), so the existing engine code consumes it
unmodified; the ``elastic`` marker is what switches the nodes' ownership
checks on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.placement.ring import Partitioner, RingError


class PlacementError(ValueError):
    """Raised on invalid placement mutations."""


class PlacementMap:
    """Versioned, runtime-mutable key -> node ownership."""

    #: Marks this partitioner as elastic: processor nodes verify ownership of
    #: delivered batches and bounce misrouted ones to the current owner.
    elastic = True

    def __init__(self, partitioner: Partitioner) -> None:
        self._partitioner = partitioner
        #: Placement version; bumped by every mutation.  Messages in flight
        #: across a bump carry the previous epoch and are re-validated on
        #: delivery.
        self.epoch = 0
        #: Batches that arrived at a superseded owner and were bounced on.
        self.misrouted_batches = 0
        #: Updates carried by those bounced batches.
        self.misrouted_updates = 0

    @property
    def partitioner(self) -> Partitioner:
        """The wrapped partitioner (a ring, for elastic deployments)."""
        return self._partitioner

    # -- Partitioner protocol ------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of member nodes."""
        return self._partitioner.node_count

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids."""
        return tuple(self._partitioner.nodes)

    def node_for(self, key: Any) -> int:
        """Current owner of ``key``."""
        return self._partitioner.node_for(key)

    def __call__(self, key: Any) -> int:
        return self.node_for(key)

    # -- mutations (each bumps the epoch) --------------------------------------------
    def _mutate(self, operation: str, *args: Any, **kwargs: Any) -> None:
        method = getattr(self._partitioner, operation, None)
        if method is None:
            raise PlacementError(
                f"the wrapped partitioner ({type(self._partitioner).__name__}) "
                f"does not support {operation!r}; wrap a ConsistentHashRing for "
                "elastic membership"
            )
        try:
            method(*args, **kwargs)
        except RingError as exc:
            raise PlacementError(str(exc)) from exc
        self.epoch += 1

    def add_node(self, node: int, weight: Optional[int] = None) -> None:
        """Admit ``node``; in-flight messages now carry a stale epoch."""
        self._mutate("add_node", node, weight)

    def remove_node(self, node: int) -> None:
        """Retire ``node``; its keys fall to the surviving members."""
        self._mutate("remove_node", node)

    def set_weights(self, weights: Dict[int, int]) -> None:
        """Install new per-node weights as one placement change (one epoch)."""
        if not weights:
            return
        setter = getattr(self._partitioner, "set_weight", None)
        if setter is None:
            raise PlacementError(
                f"the wrapped partitioner ({type(self._partitioner).__name__}) "
                "does not support weights; wrap a ConsistentHashRing to rebalance"
            )
        try:
            for node, weight in weights.items():
                setter(node, weight)
        except RingError as exc:
            raise PlacementError(str(exc)) from exc
        self.epoch += 1

    # -- misroute accounting -----------------------------------------------------------
    def record_misroute(self, update_count: int) -> None:
        """Record one bounced batch carrying ``update_count`` updates."""
        self.misrouted_batches += 1
        self.misrouted_updates += update_count

    def stats(self) -> Dict[str, int]:
        """Counters summarising the map's churn and misrouting activity."""
        return {
            "epoch": self.epoch,
            "nodes": self.node_count,
            "misrouted_batches": self.misrouted_batches,
            "misrouted_updates": self.misrouted_updates,
        }

    def __repr__(self) -> str:
        return f"PlacementMap(epoch={self.epoch}, nodes={self.node_count})"
