"""Live state migration between processor nodes.

When the :class:`~repro.placement.map.PlacementMap` changes — a node joins,
leaves, or the rebalancer adjusts weights — every piece of operator state
whose key now hashes to a different owner must physically move.  The protocol
runs at a quiescent instant of the discrete-event simulation (a control event
between message deliveries), which is what "quiescing the partition's ports"
means here: no handler is mid-batch, but messages routed under the previous
epoch are still in flight and will be bounced by the receiving node's
ownership check.

For every node the migrator re-derives each entry's owner from the same key
the engine routes by:

* Fixpoint ``P`` entries and join *right* (view) entries — the view-partition
  key (``result_partition_value``);
* join *left* (edge) entries — the edge join key (``edge_join_value``);
* base-tuple incarnation counters — the base partition key recovered from the
  stored tuple key;
* MinShip ``Bsent``/``Pins``/``Pdel`` — only when the holder is being
  *decommissioned*.  A surviving producer keeps its tables; a retiring one
  re-homes them at the consumer-side owner of each output tuple, which keeps
  the *release* path alive (purge broadcasts reach every live node, so
  invalidated ``Bsent`` entries still release their buffered alternates).
  Suppression of future re-derivations is deliberately not preserved: the
  tables cannot be split by producing join key (an output tuple does not
  name the key that derived it), so the nodes inheriting the join state may
  re-ship already-absorbed derivations — idempotent at the consumer, and
  only a traffic cost.

Slices are flattened through the provenance store's codec and pickled with
the same machinery as node checkpoints (:func:`repro.fault.snapshot.state_to_bytes`),
so the *moved state bytes* the harness reports are measured by the checkpoint
codec, and the import path genuinely exercises annotation decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple as PyTuple

from repro.engine.plan import RecursiveViewPlan
from repro.fault.snapshot import state_from_bytes, state_to_bytes
from repro.obs.trace import CONTROL_PID
from repro.operators.ship import MinShipOperator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.placement.elastic import ElasticExecutor

#: Table names carried by a migration slice (annotation-valued tables).
_ANNOTATION_TABLES = (
    "fixpoint",
    "join_left",
    "join_right",
    "ship_sent",
    "ship_pins",
    "ship_pdel",
)


def _empty_slice() -> Dict[str, Dict]:
    slice_: Dict[str, Dict] = {name: {} for name in _ANNOTATION_TABLES}
    slice_["base_versions"] = {}
    return slice_


@dataclass
class MigrationReport:
    """What one placement change physically moved."""

    #: The placement epoch installed by the change this migration serviced.
    epoch: int
    #: Serialized size of every shipped state slice (checkpoint codec bytes).
    moved_state_bytes: int = 0
    #: Total table entries that changed owner.
    moved_entries: int = 0
    #: Per-table moved-entry counts.
    tables: Dict[str, int] = field(default_factory=dict)
    #: One ``(src, dst, bytes)`` triple per shipped slice.
    transfers: List[PyTuple[int, int, int]] = field(default_factory=list)

    def merge_counts(self, table: str, count: int) -> None:
        """Add ``count`` moved entries under ``table``."""
        if count:
            self.tables[table] = self.tables.get(table, 0) + count
            self.moved_entries += count


def base_partition_indexes(plan: RecursiveViewPlan) -> Dict[str, int]:
    """Relation name -> index of the partition attribute within a stored tuple key.

    Base-variable keys are ``(relation, *values)`` (see
    :attr:`repro.data.tuples.Tuple.key`), so the partition value of the
    underlying tuple sits at ``1 + partition-attribute-index``.
    """
    return {
        schema.relation: schema.index_of(schema.partition_attribute)
        for schema in (plan.edge_schema, plan.result_schema)
    }


def migrate_cluster_state(executor: "ElasticExecutor", now: float) -> MigrationReport:
    """Move every state entry whose owner changed under the current placement.

    Runs in two phases: extract from every live node first (so ownership is
    judged against a consistent pre-migration distribution), then serialize
    and absorb each ``(source, destination)`` slice.  Returns the report the
    harness aggregates into the ``elastic`` experiment's moved-state metric.

    The whole protocol runs with the provenance store's annotation-kernel GC
    paused (migration's enrollment in the root protocol): extracted slices
    travel as raw dicts of handles between extraction and absorption, and a
    compaction mid-transfer would at best thrash and at worst interleave with
    the codec; one deferred collection at the end covers the garbage the
    decode path produced.
    """
    tracer = executor.network.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            CONTROL_PID, "migration", "control", sim_ts=now,
            args={"epoch": executor.placement.epoch},
        )
    with executor.store.gc_paused():
        report = _migrate_cluster_state(executor, now)
    if span is not None:
        tracer.end(
            span,
            args={
                "moved_entries": report.moved_entries,
                "moved_state_bytes": report.moved_state_bytes,
                "transfers": len(report.transfers),
            },
        )
    return report


def _migrate_cluster_state(executor: "ElasticExecutor", now: float) -> MigrationReport:
    placement = executor.placement
    plan = executor.plan
    store = executor.store
    network = executor.network
    encode = store.encode_annotation
    decode = store.decode_annotation
    members = set(placement.nodes)
    key_indexes = base_partition_indexes(plan)

    slices: Dict[PyTuple[int, int], Dict[str, Dict]] = {}

    def slice_for(src: int, dst: int) -> Dict[str, Dict]:
        return slices.setdefault((src, dst), _empty_slice())

    def view_owner(tuple_) -> int:
        return placement.node_for(plan.result_partition_value(tuple_))

    def edge_owner(tuple_) -> int:
        return placement.node_for(plan.edge_join_value(tuple_))

    def base_key_owner(key) -> Optional[int]:
        index = key_indexes.get(key[0])
        if index is None:
            return None
        return placement.node_for(key[1 + index])

    report = MigrationReport(epoch=placement.epoch)
    for node in executor.nodes:
        node_id = node.node_id
        if not network.is_active(node_id):
            continue  # decommissioned earlier; drained then
        for table, extracted in (
            (
                "fixpoint",
                node.fixpoint.extract_partition(lambda t: view_owner(t) != node_id),
            ),
            (
                "join_left",
                node.join.extract_side(
                    node.join.LEFT, lambda t: edge_owner(t) != node_id
                ),
            ),
            (
                "join_right",
                node.join.extract_side(
                    node.join.RIGHT, lambda t: view_owner(t) != node_id
                ),
            ),
        ):
            owner_of = edge_owner if table == "join_left" else view_owner
            for tuple_, annotation in extracted.items():
                slice_for(node_id, owner_of(tuple_))[table][tuple_] = encode(annotation)
            report.merge_counts(table, len(extracted))

        moved_keys = [
            key
            for key, _ in node.base_version_items()
            if base_key_owner(key) not in (None, node_id)
        ]
        for key, version in node.pop_base_versions(moved_keys).items():
            slice_for(node_id, base_key_owner(key))["base_versions"][key] = version
        report.merge_counts("base_versions", len(moved_keys))

        if node_id not in members and isinstance(node.ship, MinShipOperator):
            # A retiring producer's ship tables re-home at the consumer-side
            # owner of each output tuple (any live node works for purge
            # releases; this choice is deterministic and balanced).
            sent, pins, pdel = node.ship.extract_tables()
            for table, entries in (
                ("ship_sent", sent),
                ("ship_pins", pins),
                ("ship_pdel", pdel),
            ):
                for tuple_, annotation in entries.items():
                    slice_for(node_id, view_owner(tuple_))[table][tuple_] = encode(
                        annotation
                    )
                report.merge_counts(table, len(entries))

    for (src, dst), slice_ in sorted(slices.items()):
        payload = state_to_bytes(slice_)
        report.moved_state_bytes += len(payload)
        report.transfers.append((src, dst, len(payload)))
        shipped = state_from_bytes(payload)
        decoded: Dict[str, Dict] = {
            table: {t: decode(pv) for t, pv in shipped[table].items()}
            for table in _ANNOTATION_TABLES
        }
        decoded["base_versions"] = shipped["base_versions"]
        executor.nodes[dst].absorb_migrated_state(decoded, now)
    return report
