"""Centralized incremental maintenance of materialised Datalog views.

Three maintenance strategies, mirroring the alternatives the paper discusses
(Section 3.2 and 4):

* :class:`CountingMaintenance` — the classical counting algorithm: correct and
  cheap for **non-recursive** programs, provably unsound for recursive ones
  (a fact can keep a positive count through derivations that depend on
  itself); it refuses recursive programs.
* :class:`DRedMaintenance` — delete-and-rederive: over-delete every fact with
  a derivation touching the deletion, then re-derive what is still supported.
  Correct for recursive programs but expensive (the re-derivation can approach
  recomputation).
* :class:`ProvenanceMaintenance` — the paper's approach in centralized form:
  every IDB fact carries a PosBool (absorption) provenance expression; a base
  deletion sets the corresponding variable to false and drops facts whose
  expression becomes unsatisfiable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.bdd.expr import BoolExpr
from repro.datalog.program import Database, Program, copy_database
from repro.datalog.seminaive import AnnotatedDatabase, Fact, SemiNaiveEvaluator
from repro.provenance.semiring import BooleanSemiring


class MaintenanceError(Exception):
    """Raised when a strategy cannot maintain the given program."""


class _MaintenanceBase:
    """Shared bookkeeping: the program, the evaluator and the current EDB."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.evaluator = SemiNaiveEvaluator(program)
        self.edb: Dict[str, Set[Fact]] = {
            predicate: set() for predicate in program.edb_predicates
        }

    def _check_edb(self, predicate: str) -> None:
        if predicate in self.program.idb_predicates:
            raise MaintenanceError(f"{predicate!r} is derived; only EDB facts can be updated")
        self.edb.setdefault(predicate, set())

    def facts(self, predicate: str) -> Set[Fact]:
        """Current facts of a predicate (EDB or IDB)."""
        raise NotImplementedError


class CountingMaintenance(_MaintenanceBase):
    """Counting-based maintenance (non-recursive programs only)."""

    def __init__(self, program: Program) -> None:
        super().__init__(program)
        if program.is_recursive():
            raise MaintenanceError(
                "the counting algorithm is unsound for recursive programs "
                "(see Section 3.2 of the paper); use DRed or provenance maintenance"
            )
        #: Derivation counts per IDB fact.
        self.counts: Dict[str, Dict[Fact, int]] = {
            predicate: {} for predicate in program.idb_predicates
        }

    def insert(self, predicate: str, fact: Fact) -> None:
        """Insert one EDB fact and update derived counts."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact in self.edb[predicate]:
            return
        self.edb[predicate].add(fact)
        self._recount()

    def delete(self, predicate: str, fact: Fact) -> None:
        """Delete one EDB fact and update derived counts."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact not in self.edb[predicate]:
            return
        self.edb[predicate].discard(fact)
        self._recount()

    def _recount(self) -> None:
        # Non-recursive programs are cheap to recount exactly; the point of
        # this class is the *semantics* (counts), used by tests to demonstrate
        # where counting breaks down, not asymptotic efficiency.
        annotations = self.evaluator.evaluate_with_provenance(
            self.edb, BooleanSemiring
        )
        database = self.evaluator.evaluate(self.edb)
        for predicate in self.counts:
            new_counts: Dict[Fact, int] = {}
            for fact in database.get(predicate, set()):
                new_counts[fact] = max(len(annotations[predicate][fact].products), 1)
            self.counts[predicate] = new_counts

    def facts(self, predicate: str) -> Set[Fact]:
        if predicate in self.edb:
            return set(self.edb[predicate])
        return set(self.counts.get(predicate, {}))

    def count(self, predicate: str, fact: Fact) -> int:
        """Number of (minimal) derivations currently supporting ``fact``."""
        return self.counts.get(predicate, {}).get(tuple(fact), 0)


class DRedMaintenance(_MaintenanceBase):
    """Delete-and-rederive maintenance (recursive programs supported)."""

    def __init__(self, program: Program) -> None:
        super().__init__(program)
        self.database: Database = self.evaluator.evaluate(self.edb)
        #: Facts over-deleted then re-derived by the last deletion (diagnostics).
        self.last_overdeleted: int = 0
        self.last_rederived: int = 0

    def insert(self, predicate: str, fact: Fact) -> None:
        """Insert an EDB fact and extend the materialised IDB (semi-naive delta)."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact in self.edb[predicate]:
            return
        self.edb[predicate].add(fact)
        self.database = self.evaluator.evaluate(self.edb)

    def delete(self, predicate: str, fact: Fact) -> None:
        """Delete an EDB fact using over-deletion followed by re-derivation."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact not in self.edb[predicate]:
            return
        self.edb[predicate].discard(fact)
        before = copy_database(self.database)
        # Phase 1 — over-delete: remove every IDB fact whose provenance mentions
        # the deleted base fact (any derivation, hence "over").
        annotations = self.evaluator.evaluate_with_provenance(
            {pred: facts | ({fact} if pred == predicate else set()) for pred, facts in self.edb.items()},
            BooleanSemiring,
        )
        deleted_variable = (predicate,) + fact
        overdeleted = 0
        for idb_predicate in self.program.idb_predicates:
            for idb_fact in list(before.get(idb_predicate, set())):
                annotation = annotations[idb_predicate].get(idb_fact, BoolExpr.false())
                if deleted_variable in annotation.variables():
                    before[idb_predicate].discard(idb_fact)
                    overdeleted += 1
        # Phase 2 — re-derive from the remaining EDB.
        self.database = self.evaluator.evaluate(self.edb)
        rederived = 0
        for idb_predicate in self.program.idb_predicates:
            rederived += len(self.database.get(idb_predicate, set()) - before.get(idb_predicate, set()))
        self.last_overdeleted = overdeleted
        self.last_rederived = rederived

    def facts(self, predicate: str) -> Set[Fact]:
        if predicate in self.edb:
            return set(self.edb[predicate])
        return set(self.database.get(predicate, set()))


class ProvenanceMaintenance(_MaintenanceBase):
    """Absorption-provenance maintenance (centralized analogue of the paper's engine)."""

    def __init__(self, program: Program) -> None:
        super().__init__(program)
        self.annotations: AnnotatedDatabase = {
            predicate: {} for predicate in program.predicates
        }

    def insert(self, predicate: str, fact: Fact) -> None:
        """Insert an EDB fact; derived facts gain (absorbed) derivations."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact in self.edb[predicate]:
            return
        self.edb[predicate].add(fact)
        self._reannotate()

    def delete(self, predicate: str, fact: Fact) -> None:
        """Delete an EDB fact: set its variable to false everywhere and prune."""
        self._check_edb(predicate)
        fact = tuple(fact)
        if fact not in self.edb[predicate]:
            return
        self.edb[predicate].discard(fact)
        variable = (predicate,) + fact
        for idb_predicate in self.program.idb_predicates:
            table = self.annotations.get(idb_predicate, {})
            for idb_fact in list(table):
                restricted = table[idb_fact].without([variable])
                if restricted.is_false():
                    del table[idb_fact]
                else:
                    table[idb_fact] = restricted
        edb_table = self.annotations.setdefault(predicate, {})
        edb_table.pop(fact, None)

    def _reannotate(self) -> None:
        self.annotations = self.evaluator.evaluate_with_provenance(self.edb, BooleanSemiring)

    def facts(self, predicate: str) -> Set[Fact]:
        if predicate in self.edb:
            return set(self.edb[predicate])
        return set(self.annotations.get(predicate, {}))

    def provenance_of(self, predicate: str, fact: Fact) -> Optional[BoolExpr]:
        """The absorption-provenance expression of an IDB fact (None if absent)."""
        return self.annotations.get(predicate, {}).get(tuple(fact))
