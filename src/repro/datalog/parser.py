"""Parser for the paper's Datalog syntax.

Grammar (a pragmatic subset sufficient for the queries in Section 2)::

    program    := (rule)*
    rule       := atom ( ":-" body )? "."
    body       := literal ("," literal)*
    literal    := ["not"] atom | comparison
    atom       := IDENT "(" term ("," term)* ")"
    term       := IDENT            -- a variable
                | NUMBER           -- a numeric constant
                | STRING           -- a quoted constant
    comparison := operand OP operand        with OP in  < <= > >= = !=
    operand    := IDENT | NUMBER | STRING

Comparisons become :class:`~repro.datalog.ast.Condition` guards;
``v = expr`` where ``expr`` is a constant binds the variable.  Richer
computations (path concatenation, arithmetic over several variables) are
attached programmatically as conditions; the parser keeps the relational core.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.ast import Atom, Condition, Constant, Rule, Term, Variable
from repro.datalog.program import Program


class DatalogSyntaxError(Exception):
    """Raised when the input text is not valid Datalog (for this dialect)."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|%[^\n]*)
  | (?P<IMPLIES>:-)
  | (?P<NUMBER>-?\d+(\.\d+)?)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
    """,
    re.VERBOSE,
)

_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DatalogSyntaxError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[_Token]) -> None:
        self._tokens = list(tokens)
        self._index = 0

    # -- token helpers -----------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DatalogSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {kind} but found {token.text!r} at position {token.position}"
            )
        return token

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar ---------------------------------------------------------------------
    def parse_program(self) -> List[Rule]:
        rules: List[Rule] = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        head = self._parse_atom(negated=False)
        token = self._peek()
        body: List[Atom] = []
        conditions: List[Condition] = []
        if token is not None and token.kind == "IMPLIES":
            self._next()
            while True:
                self._parse_literal(body, conditions)
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next()
                    continue
                break
        self._expect("DOT")
        return Rule(head=head, body=tuple(body), conditions=tuple(conditions))

    def _parse_literal(self, body: List[Atom], conditions: List[Condition]) -> None:
        token = self._peek()
        if token is None:
            raise DatalogSyntaxError("unexpected end of input in rule body")
        negated = False
        if token.kind == "IDENT" and token.text == "not":
            lookahead = (
                self._tokens[self._index + 1] if self._index + 1 < len(self._tokens) else None
            )
            if lookahead is not None and lookahead.kind == "IDENT":
                self._next()
                negated = True
                token = self._peek()
        # Distinguish atom from comparison by what follows the first operand.
        if token.kind == "IDENT":
            lookahead = (
                self._tokens[self._index + 1] if self._index + 1 < len(self._tokens) else None
            )
            if lookahead is not None and lookahead.kind == "LPAREN":
                body.append(self._parse_atom(negated=negated))
                return
        if negated:
            raise DatalogSyntaxError("negation can only be applied to atoms")
        conditions.append(self._parse_comparison())

    def _parse_atom(self, negated: bool) -> Atom:
        name = self._expect("IDENT").text
        self._expect("LPAREN")
        terms: List[Term] = []
        while True:
            terms.append(self._parse_term())
            token = self._next()
            if token.kind == "COMMA":
                continue
            if token.kind == "RPAREN":
                break
            raise DatalogSyntaxError(f"unexpected {token.text!r} in atom {name}")
        return Atom(name, tuple(terms), negated=negated)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "IDENT":
            return Variable(token.text)
        if token.kind == "NUMBER":
            return Constant(_number(token.text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        raise DatalogSyntaxError(f"unexpected term {token.text!r} at {token.position}")

    def _parse_comparison(self) -> Condition:
        left_token = self._next()
        operator = self._expect("OP").text
        right_token = self._next()
        left = _operand(left_token)
        right = _operand(right_token)
        comparator = _COMPARATORS[operator]
        description = f"{left_token.text} {operator} {right_token.text}"
        requires = frozenset(
            name for name, is_var in (left, right) if is_var
        )

        def evaluate(binding, left=left, right=right, comparator=comparator, operator=operator):
            left_name, left_is_var = left
            right_name, right_is_var = right
            left_missing = left_is_var and left_name not in binding
            right_missing = right_is_var and right_name not in binding
            # `v = value` acts as an assignment when v is still unbound.
            if operator == "=" and left_missing and not right_missing:
                return {left_name: binding[right_name] if right_is_var else right_name}
            if operator == "=" and right_missing and not left_missing:
                return {right_name: binding[left_name] if left_is_var else left_name}
            left_value = binding[left_name] if left_is_var else left_name
            right_value = binding[right_name] if right_is_var else right_name
            return bool(comparator(left_value, right_value))

        provides = frozenset(
            name
            for name, is_var in (left, right)
            if is_var and operator == "="
        )
        return Condition(
            evaluate=evaluate, description=description, requires=requires, provides=provides
        )


def _operand(token: _Token) -> Tuple[Any, bool]:
    """Return (value-or-name, is_variable)."""
    if token.kind == "IDENT":
        return token.text, True
    if token.kind == "NUMBER":
        return _number(token.text), False
    if token.kind == "STRING":
        return token.text[1:-1], False
    raise DatalogSyntaxError(f"unexpected operand {token.text!r} at {token.position}")


def _number(text: str) -> Any:
    return float(text) if "." in text else int(text)


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must end with a period)."""
    parser = _Parser(_tokenize(text))
    rule = parser.parse_rule()
    if not parser.at_end():
        raise DatalogSyntaxError("trailing input after rule")
    return rule


def parse_program(text: str) -> Program:
    """Parse a whole program into a :class:`~repro.datalog.program.Program`."""
    parser = _Parser(_tokenize(text))
    return Program(parser.parse_program())
