"""Abstract syntax for the Datalog dialect used in the paper.

The dialect is positive Datalog with:

* variables written as bare identifiers (the paper writes ``reachable(x,y)``),
* constants written as quoted strings or numbers,
* optional *conditions* in rule bodies — comparisons and small arithmetic
  guards such as ``distance(posx, posy) < k`` or ``c = c0 + c1`` — modelled as
  Python callables over the variable bindings, and
* stratified negation (``not atom``), checked by the stratifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

Binding = Dict[str, Any]


class Term:
    """Base class for terms appearing in atoms."""

    __slots__ = ()


@dataclass(frozen=True)
class Variable(Term):
    """A variable, e.g. ``x`` in ``reachable(x, y)``."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant(Term):
    """A constant value (string, number, ...)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Atom:
    """``predicate(term, term, ...)``, possibly negated in a rule body."""

    predicate: str
    terms: Tuple[Term, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> FrozenSet[str]:
        """Names of the variables appearing in the atom."""
        return frozenset(term.name for term in self.terms if isinstance(term, Variable))

    def bind(self, binding: Binding) -> Tuple[Any, ...]:
        """Instantiate the atom's terms under a (complete) binding."""
        values = []
        for term in self.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                if term.name not in binding:
                    raise KeyError(f"unbound variable {term.name!r} in {self!r}")
                values.append(binding[term.name])
        return tuple(values)

    def match(self, fact: Sequence[Any], binding: Binding) -> Optional[Binding]:
        """Try to unify the atom with ``fact`` under ``binding``.

        Returns the extended binding, or None when the fact does not match.
        """
        if len(fact) != self.arity:
            return None
        extended = dict(binding)
        for term, value in zip(self.terms, fact):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                bound = extended.get(term.name, _UNBOUND)
                if bound is _UNBOUND:
                    extended[term.name] = value
                elif bound != value:
                    return None
        return extended

    def __repr__(self) -> str:
        rendered = ", ".join(repr(term) for term in self.terms)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({rendered})"


_UNBOUND = object()


@dataclass(frozen=True)
class Condition:
    """A non-relational guard or computation in a rule body.

    ``evaluate`` receives the current binding and either:

    * returns ``True`` / ``False`` (a guard such as ``cost < 10``), or
    * returns an extended binding dict (a computation such as
      ``c = c0 + c1``, which binds ``c``).

    ``description`` is only used for display.
    """

    evaluate: Callable[[Binding], Any]
    description: str = "<condition>"
    #: Variables that must already be bound before the condition can run.
    requires: FrozenSet[str] = frozenset()
    #: Variables the condition binds (empty for pure guards).
    provides: FrozenSet[str] = frozenset()

    def apply(self, binding: Binding) -> Optional[Binding]:
        """Run the condition; return the (possibly extended) binding or None."""
        result = self.evaluate(binding)
        if result is True:
            return binding
        if result is False or result is None:
            return None
        if isinstance(result, dict):
            merged = dict(binding)
            merged.update(result)
            return merged
        raise TypeError(
            f"condition {self.description!r} returned {type(result).__name__}; "
            "expected bool or dict of new bindings"
        )

    def __repr__(self) -> str:
        return self.description


@dataclass(frozen=True)
class Rule:
    """``head :- body_atoms, conditions.``"""

    head: Atom
    body: Tuple[Atom, ...]
    conditions: Tuple[Condition, ...] = ()

    def __post_init__(self) -> None:
        if self.head.negated:
            raise ValueError("rule heads cannot be negated")
        provided = set()
        for atom in self.body:
            if not atom.negated:
                provided |= atom.variables()
        for condition in self.conditions:
            provided |= condition.provides
        missing = self.head.variables() - provided
        if missing:
            raise ValueError(
                f"unsafe rule: head variables {sorted(missing)} never bound in the body "
                f"of {self!r}"
            )

    @property
    def is_fact(self) -> bool:
        """True for rules with an empty body (ground facts when head is ground)."""
        return not self.body

    def body_predicates(self) -> FrozenSet[str]:
        """Predicates referenced in the body."""
        return frozenset(atom.predicate for atom in self.body)

    def positive_body(self) -> Tuple[Atom, ...]:
        """The non-negated body atoms."""
        return tuple(atom for atom in self.body if not atom.negated)

    def negative_body(self) -> Tuple[Atom, ...]:
        """The negated body atoms."""
        return tuple(atom for atom in self.body if atom.negated)

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        parts = [repr(atom) for atom in self.body] + [repr(c) for c in self.conditions]
        return f"{self.head!r} :- {', '.join(parts)}."


def variables(*names: str) -> Tuple[Variable, ...]:
    """Convenience constructor for several variables at once."""
    return tuple(Variable(name) for name in names)


def atom(predicate: str, *terms: Any, negated: bool = False) -> Atom:
    """Convenience constructor: strings become variables, everything else constants.

    ``atom("link", "x", "y")`` is ``link(x, y)``; pass :class:`Constant`
    explicitly (or a non-string value) for constants.
    """
    converted = []
    for term in terms:
        if isinstance(term, Term):
            converted.append(term)
        elif isinstance(term, str):
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(predicate, tuple(converted), negated=negated)
