"""A centralized Datalog substrate.

The paper expresses its views in Datalog (and SQL-99 recursion) and builds on
classical recursive query processing: semi-naive evaluation, stratification,
counting-based maintenance and DRed.  This package provides that substrate in
one process, independent of the distributed engine:

* :mod:`repro.datalog.ast` — terms, atoms, rules, comparison conditions;
* :mod:`repro.datalog.parser` — a parser for the paper's Datalog syntax;
* :mod:`repro.datalog.program` — programs, EDB/IDB classification;
* :mod:`repro.datalog.stratify` — dependency graph and stratification;
* :mod:`repro.datalog.seminaive` — naive and semi-naive evaluation, optionally
  under a provenance semiring (PosBool gives absorption provenance);
* :mod:`repro.datalog.incremental` — incremental maintenance of the
  materialised IDB: counting (non-recursive), DRed, and provenance-based;
* :mod:`repro.datalog.aggregates` — grouped aggregate views over IDB facts.

It is used by the examples, by tests as an independent oracle for the
distributed engine, and by the centralized-maintenance ablation.
"""

from repro.datalog.ast import Atom, Condition, Constant, Rule, Term, Variable
from repro.datalog.parser import DatalogSyntaxError, parse_program, parse_rule
from repro.datalog.program import Program
from repro.datalog.seminaive import SemiNaiveEvaluator
from repro.datalog.stratify import StratificationError, stratify
from repro.datalog.incremental import (
    CountingMaintenance,
    DRedMaintenance,
    ProvenanceMaintenance,
)
from repro.datalog.aggregates import AggregateView

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Condition",
    "Rule",
    "Program",
    "parse_rule",
    "parse_program",
    "DatalogSyntaxError",
    "stratify",
    "StratificationError",
    "SemiNaiveEvaluator",
    "CountingMaintenance",
    "DRedMaintenance",
    "ProvenanceMaintenance",
    "AggregateView",
]
