"""Naive and semi-naive evaluation of stratified Datalog programs.

Semi-naive evaluation is the classical fixpoint algorithm the paper's
pipelined Fixpoint operator generalises: in each round only the rules whose
body touches a *delta* fact (derived in the previous round) are re-evaluated.
The evaluator optionally runs under a provenance semiring, in which case every
derived fact carries an annotation combined per Figure 6 of the paper — with
the PosBool semiring this yields exactly the absorption provenance of every
fact, which tests use as an oracle for the distributed engine's BDDs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.datalog.ast import Atom, Binding, Rule
from repro.datalog.program import Database, Program, copy_database, empty_database
from repro.datalog.stratify import stratum_programs
from repro.provenance.semiring import Semiring

Fact = Tuple
#: Annotated database: predicate -> {fact -> annotation}.
AnnotatedDatabase = Dict[str, Dict[Fact, Any]]


class SemiNaiveEvaluator:
    """Evaluates a stratified program over an extensional database."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._strata = stratum_programs(program)
        #: Rule firings attempted by the last evaluation (cost diagnostics).
        self.firings = 0
        #: Semi-naive rounds taken by the last evaluation.
        self.rounds = 0

    # -- plain (set-semantics) evaluation ------------------------------------------------
    def evaluate(self, edb: Mapping[str, Iterable[Fact]]) -> Database:
        """Compute all IDB facts; returns a database including the EDB."""
        database = self._seed_database(edb)
        self.firings = 0
        self.rounds = 0
        for stratum in self._strata:
            self._evaluate_stratum(stratum, database)
        return database

    def evaluate_naive(self, edb: Mapping[str, Iterable[Fact]]) -> Database:
        """Naive evaluation (re-derive everything every round) — used as an oracle."""
        database = self._seed_database(edb)
        changed = True
        while changed:
            changed = False
            for rule in self.program.rules:
                for fact, _ in self._fire_rule(rule, database, delta=None):
                    if fact not in database[rule.head.predicate]:
                        database[rule.head.predicate].add(fact)
                        changed = True
        return database

    def _seed_database(self, edb: Mapping[str, Iterable[Fact]]) -> Database:
        database = empty_database(self.program)
        for predicate, facts in edb.items():
            database.setdefault(predicate, set()).update(tuple(fact) for fact in facts)
        return database

    def _evaluate_stratum(self, stratum: Program, database: Database) -> None:
        delta: Database = {predicate: set() for predicate in stratum.idb_predicates}
        # Round 0: fire every rule on the full database.
        for rule in stratum.rules:
            for fact, _ in self._fire_rule(rule, database, delta=None):
                if fact not in database[rule.head.predicate]:
                    database[rule.head.predicate].add(fact)
                    delta[rule.head.predicate].add(fact)
        # Subsequent rounds: only join against the delta.
        while any(delta.values()):
            self.rounds += 1
            new_delta: Database = {predicate: set() for predicate in stratum.idb_predicates}
            for rule in stratum.rules:
                if not (rule.body_predicates() & set(delta)):
                    continue
                for fact, _ in self._fire_rule(rule, database, delta=delta):
                    if fact not in database[rule.head.predicate]:
                        database[rule.head.predicate].add(fact)
                        new_delta[rule.head.predicate].add(fact)
            delta = new_delta

    # -- rule firing ------------------------------------------------------------------------
    def _fire_rule(
        self,
        rule: Rule,
        database: Database,
        delta: Optional[Database],
        annotations: Optional[AnnotatedDatabase] = None,
        semiring: Optional[Semiring] = None,
    ) -> List[Tuple[Fact, Any]]:
        """All (head fact, annotation) pairs derivable by ``rule`` right now.

        With ``delta`` set, at least one positive body atom must match a delta
        fact (semi-naive restriction).  With a semiring, annotations are
        combined across the body; otherwise the annotation slot is ``None``.
        """
        self.firings += 1
        results: List[Tuple[Fact, Any]] = []
        positive = rule.positive_body()
        if not positive:
            if self._conditions_hold(rule, {}):
                results.append((rule.head.bind({}), semiring.one if semiring else None))
            return results
        delta_positions: List[Optional[int]] = [None]
        if delta is not None:
            delta_positions = [
                index
                for index, atom in enumerate(positive)
                if atom.predicate in delta and delta[atom.predicate]
            ]
            if not delta_positions:
                return []

        for delta_position in delta_positions:
            for binding, annotation in self._join_body(
                positive, 0, {}, database, delta, delta_position, annotations, semiring
            ):
                if not self._negative_body_satisfied(rule, binding, database):
                    continue
                extended = self._apply_conditions(rule, binding)
                if extended is None:
                    continue
                results.append(
                    (rule.head.bind(extended), annotation)
                )
        return results

    def _join_body(
        self,
        atoms: Tuple[Atom, ...],
        index: int,
        binding: Binding,
        database: Database,
        delta: Optional[Database],
        delta_position: Optional[int],
        annotations: Optional[AnnotatedDatabase],
        semiring: Optional[Semiring],
    ):
        if index == len(atoms):
            yield binding, (semiring.one if semiring else None)
            return
        atom = atoms[index]
        if delta is not None and delta_position == index:
            source = delta.get(atom.predicate, set())
        else:
            source = database.get(atom.predicate, set())
        for fact in source:
            extended = atom.match(fact, binding)
            if extended is None:
                continue
            for final_binding, rest_annotation in self._join_body(
                atoms, index + 1, extended, database, delta, delta_position, annotations, semiring
            ):
                if semiring is None:
                    yield final_binding, None
                else:
                    fact_annotation = self._annotation_of(
                        atom.predicate, fact, annotations, semiring
                    )
                    yield final_binding, semiring.times(fact_annotation, rest_annotation)

    def _annotation_of(
        self,
        predicate: str,
        fact: Fact,
        annotations: Optional[AnnotatedDatabase],
        semiring: Semiring,
    ):
        if annotations is None:
            return semiring.one
        return annotations.get(predicate, {}).get(fact, semiring.one)

    def _negative_body_satisfied(self, rule: Rule, binding: Binding, database: Database) -> bool:
        for atom in rule.negative_body():
            fact = atom.bind(binding)
            if fact in database.get(atom.predicate, set()):
                return False
        return True

    def _conditions_hold(self, rule: Rule, binding: Binding) -> bool:
        return self._apply_conditions(rule, binding) is not None

    def _apply_conditions(self, rule: Rule, binding: Binding) -> Optional[Binding]:
        current = binding
        for condition in rule.conditions:
            current = condition.apply(current)
            if current is None:
                return None
        return current

    # -- provenance-annotated evaluation ----------------------------------------------------------
    def evaluate_with_provenance(
        self,
        edb: Mapping[str, Iterable[Fact]],
        semiring: Semiring,
        base_annotation=None,
    ) -> AnnotatedDatabase:
        """Evaluate under a provenance semiring, returning fact annotations.

        ``base_annotation(predicate, fact)`` maps EDB facts to their initial
        annotations; by default each base fact gets
        ``semiring.of_base((predicate,) + fact)``.
        """
        if base_annotation is None:
            def base_annotation(predicate, fact):
                return semiring.of_base((predicate,) + tuple(fact))

        annotations: AnnotatedDatabase = {}
        database = self._seed_database(edb)
        for predicate, facts in database.items():
            annotations[predicate] = {}
            if predicate in self.program.edb_predicates or predicate not in self.program.idb_predicates:
                for fact in facts:
                    annotations[predicate][fact] = base_annotation(predicate, fact)

        for stratum in self._strata:
            for predicate in stratum.idb_predicates:
                annotations.setdefault(predicate, {})
            changed = True
            iterations = 0
            while changed:
                iterations += 1
                if iterations > 10_000:
                    raise RuntimeError("provenance evaluation did not converge")
                changed = False
                for rule in stratum.rules:
                    for fact, annotation in self._fire_rule(
                        rule, database, delta=None, annotations=annotations, semiring=semiring
                    ):
                        head = rule.head.predicate
                        previous = annotations[head].get(fact, semiring.zero)
                        merged = semiring.plus(previous, annotation)
                        if merged != previous:
                            annotations[head][fact] = merged
                            database[head].add(fact)
                            changed = True
        return annotations
