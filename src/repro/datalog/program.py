"""Datalog programs: rule collections with EDB/IDB classification."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.datalog.ast import Atom, Rule

#: A database maps predicate names to sets of fact value-tuples.
Database = Dict[str, Set[Tuple]]


class Program:
    """An ordered collection of rules."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)

    # -- predicate classification ---------------------------------------------------
    @property
    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by some rule head (intensional)."""
        return frozenset(rule.head.predicate for rule in self.rules)

    @property
    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates that only appear in rule bodies (extensional / base data)."""
        heads = self.idb_predicates
        body_preds: Set[str] = set()
        for rule in self.rules:
            body_preds.update(rule.body_predicates())
        return frozenset(body_preds - heads)

    @property
    def predicates(self) -> FrozenSet[str]:
        """Every predicate mentioned anywhere in the program."""
        return self.idb_predicates | self.edb_predicates

    def rules_for(self, predicate: str) -> List[Rule]:
        """Rules whose head is ``predicate``."""
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def rules_using(self, predicate: str) -> List[Rule]:
        """Rules whose body references ``predicate``."""
        return [rule for rule in self.rules if predicate in rule.body_predicates()]

    def is_recursive(self) -> bool:
        """True when some predicate (transitively) depends on itself."""
        from repro.datalog.stratify import dependency_graph, recursive_predicates

        return bool(recursive_predicates(dependency_graph(self)))

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """A new program with additional rules appended."""
        return Program(self.rules + tuple(rules))

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules, idb={sorted(self.idb_predicates)})"


def empty_database(program: Program) -> Database:
    """A database with an empty fact set for every predicate of the program."""
    return {predicate: set() for predicate in program.predicates}


def copy_database(database: Database) -> Database:
    """Deep-ish copy (new sets, shared immutable fact tuples)."""
    return {predicate: set(facts) for predicate, facts in database.items()}
