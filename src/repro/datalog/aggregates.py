"""Grouped aggregate views over Datalog facts.

The paper's queries end with aggregate views (``minCost(x, y, min<c>)``,
``regionSizes(rid, count<x>)``, ``largestRegion(max<size>)``).  In the
centralized substrate these are evaluated after their input stratum:
:class:`AggregateView` groups the facts of one predicate by a subset of
columns and applies MIN / MAX / COUNT / SUM / AVG to a value column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.datalog.program import Database

Fact = Tuple


class AggregateKind(enum.Enum):
    """Supported aggregate functions for datalog views."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateView:
    """``name(group..., agg<value>) :- source(...)`` evaluated over a database.

    ``group_positions`` are the 0-based positions of the grouping columns in
    the source predicate; ``value_position`` is the aggregated column (ignored
    for COUNT, which counts distinct facts per group).
    """

    name: str
    source: str
    group_positions: Tuple[int, ...]
    kind: AggregateKind
    value_position: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is not AggregateKind.COUNT and self.value_position is None:
            raise ValueError(f"{self.kind.value} aggregate requires a value_position")

    def evaluate(self, database: Database) -> Set[Fact]:
        """Compute the aggregate facts ``group + (value,)`` from ``database``."""
        groups: Dict[Tuple, list] = {}
        for fact in database.get(self.source, set()):
            key = tuple(fact[position] for position in self.group_positions)
            if self.kind is AggregateKind.COUNT:
                groups.setdefault(key, []).append(1)
            else:
                groups.setdefault(key, []).append(fact[self.value_position])
        results: Set[Fact] = set()
        for key, values in groups.items():
            results.add(key + (self._combine(values),))
        return results

    def _combine(self, values: list):
        if self.kind is AggregateKind.MIN:
            return min(values)
        if self.kind is AggregateKind.MAX:
            return max(values)
        if self.kind is AggregateKind.COUNT:
            return len(values)
        if self.kind is AggregateKind.SUM:
            return sum(values)
        return sum(values) / len(values)

    def evaluate_into(self, database: Database) -> Database:
        """Evaluate and store the results under ``self.name`` in ``database``."""
        database[self.name] = self.evaluate(database)
        return database
