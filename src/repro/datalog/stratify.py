"""Predicate dependency analysis and stratification.

Stratification orders the IDB predicates into *strata* so that a predicate is
fully evaluated before any predicate that negates it — the standard condition
for stratified negation.  Positive recursion is allowed within a stratum (the
reachable / path / region views are all positively recursive); negation
through a recursive cycle is rejected.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.datalog.program import Program


class StratificationError(Exception):
    """Raised when a program has negation through recursion."""


#: Edge label: True when the dependency goes through negation.
DependencyGraph = Dict[str, Set[Tuple[str, bool]]]


def dependency_graph(program: Program) -> DependencyGraph:
    """head -> {(body predicate, is_negated)} over all rules."""
    graph: DependencyGraph = {predicate: set() for predicate in program.predicates}
    for rule in program.rules:
        for atom in rule.body:
            graph[rule.head.predicate].add((atom.predicate, atom.negated))
    return graph


def recursive_predicates(graph: DependencyGraph) -> FrozenSet[str]:
    """Predicates that participate in a dependency cycle."""
    recursive: Set[str] = set()

    def reaches(start: str, target: str, seen: Set[str]) -> bool:
        if start in seen:
            return False
        seen.add(start)
        for dependency, _negated in graph.get(start, ()):
            if dependency == target or reaches(dependency, target, seen):
                return True
        return False

    for predicate in graph:
        if reaches(predicate, predicate, set()):
            recursive.add(predicate)
    return frozenset(recursive)


def stratify(program: Program) -> List[FrozenSet[str]]:
    """Return the IDB predicates grouped into strata (lowest first).

    EDB predicates are implicitly stratum 0 and are not listed.  Raises
    :class:`StratificationError` when a predicate depends negatively on itself
    through a cycle.
    """
    graph = dependency_graph(program)
    idb = program.idb_predicates
    stratum: Dict[str, int] = {predicate: 0 for predicate in idb}

    changed = True
    iterations = 0
    limit = max(len(idb), 1) * max(len(idb), 1) + len(idb) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:
            raise StratificationError("negation through recursion (no stratification exists)")
        for head in idb:
            for dependency, negated in graph.get(head, ()):
                if dependency not in idb:
                    continue
                required = stratum[dependency] + 1 if negated else stratum[dependency]
                if stratum[head] < required:
                    stratum[head] = required
                    changed = True

    grouped: Dict[int, Set[str]] = {}
    for predicate, level in stratum.items():
        grouped.setdefault(level, set()).add(predicate)
    return [frozenset(grouped[level]) for level in sorted(grouped)]


def stratum_programs(program: Program) -> List[Program]:
    """Split a program into one sub-program per stratum (evaluation order)."""
    strata = stratify(program)
    programs: List[Program] = []
    for predicates in strata:
        rules = [rule for rule in program.rules if rule.head.predicate in predicates]
        programs.append(Program(rules))
    return programs
