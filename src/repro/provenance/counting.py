"""Counting provenance (derivation counts).

The classical incremental view-maintenance algorithm for *non-recursive*
views keeps, for every derived tuple, the number of its derivations; a
deletion decrements counts and removes tuples whose count reaches zero.  The
paper points out (Section 3.2) that this scheme is unsound for recursive
views — a tuple can keep a positive count purely through derivations that
(transitively) depend on itself.  We implement it anyway because:

* the centralized Datalog substrate uses it for non-recursive strata, and
* tests demonstrate the recursive unsoundness explicitly, which documents why
  the paper needs absorption provenance.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.provenance.tracker import ProvenanceStore


class CountingProvenanceStore(ProvenanceStore):
    """Annotations are non-negative derivation counts."""

    name = "counting"
    #: Counting can process deletions, but is only *correct* for
    #: non-recursive views; see the module docstring.
    supports_deletion = True

    def base_annotation(self, base_key: Hashable) -> int:
        return 1

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def conjoin(self, left: int, right: int) -> int:
        return left * right

    def disjoin(self, left: int, right: int) -> int:
        return left + right

    def remove_base(self, annotation: int, base_keys: Iterable[Hashable]) -> int:
        """Counting cannot selectively remove a base tuple from a count.

        Deletion handling for counting is done by propagating *negative*
        deltas through the plan (see :mod:`repro.datalog.incremental`), so at
        the annotation level this is the identity.
        """
        return annotation

    def is_zero(self, annotation: int) -> bool:
        return annotation <= 0

    def size_bytes(self, annotation: int) -> int:
        return 4

    def describe(self, annotation: int) -> str:
        return f"{annotation} derivation(s)"
