"""Relative (derivation-graph) provenance.

The paper compares absorption provenance against the "relative provenance" of
update-exchange systems (Green et al., VLDB 2007): each derived tuple is
annotated with *derivation edges* recording which tuples it was produced from
as an immediate consequent.  Determining whether a tuple is still derivable
after a deletion requires traversing the derivation graph down to base tuples.

Two costs distinguish it from absorption provenance, and both are modelled
here so the experiments of Section 7.2 can be reproduced:

* **no absorption** — every distinct derivation is kept (and shipped), even
  when it is logically redundant, so annotations and messages are larger;
* **traversal-based derivability** — the graph must be walked on deletion,
  which is modelled by :class:`RelativeProvenanceStore.derivable` and by the
  larger operator state the store reports.

Annotations here are frozensets of :class:`Derivation`; a derivation is the
frozenset of base-tuple identifiers it (transitively) rests on plus a count of
the derivation edges that path used, which is what inflates the shipped size
relative to the absorbed BDD representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.provenance.tracker import ProvenanceStore


@dataclass(frozen=True)
class DerivationEdge:
    """One immediate-consequence edge of the derivation graph."""

    head: Hashable
    body: FrozenSet[Hashable]


@dataclass(frozen=True)
class Derivation:
    """One complete derivation of a tuple.

    ``leaves`` is the set of base tuples the derivation rests on.  Unlike
    absorption provenance, a relative-provenance system keeps *every* distinct
    derivation (no absorption of a derivation by a smaller one), which is what
    inflates its annotations and traffic; the per-derivation cost charged by
    :meth:`RelativeProvenanceStore.size_bytes` additionally accounts for the
    immediate-consequence edges a derivation-graph encoding must ship.
    """

    leaves: FrozenSet[Hashable]

    @property
    def edges(self) -> int:
        """Approximate number of derivation-graph edges for this derivation."""
        return max(len(self.leaves), 1)

    def uses(self, base_keys: Set[Hashable]) -> bool:
        """True when this derivation rests on any of ``base_keys``."""
        return bool(self.leaves & base_keys)


RelativeAnnotation = FrozenSet[Derivation]


class RelativeProvenanceStore(ProvenanceStore):
    """Derivation-set provenance without absorption."""

    name = "relative"
    supports_deletion = True

    def __init__(self, max_derivations_per_tuple: int = 4096) -> None:
        #: Safety valve: the number of distinct derivations can explode in
        #: dense graphs (this is precisely the blow-up the paper observes for
        #: "Relative Eager"); beyond the cap we stop accumulating new ones.
        self.max_derivations_per_tuple = max_derivations_per_tuple
        #: Global derivation-edge log (diagnostics / state accounting).
        self._edges: List[DerivationEdge] = []

    # -- algebra ------------------------------------------------------------
    def base_annotation(self, base_key: Hashable) -> RelativeAnnotation:
        return frozenset({Derivation(leaves=frozenset({base_key}))})

    def zero(self) -> RelativeAnnotation:
        return frozenset()

    def one(self) -> RelativeAnnotation:
        return frozenset({Derivation(leaves=frozenset())})

    def conjoin(self, left: RelativeAnnotation, right: RelativeAnnotation) -> RelativeAnnotation:
        combined = set()
        for mine in left:
            for theirs in right:
                combined.add(Derivation(leaves=mine.leaves | theirs.leaves))
                if len(combined) >= self.max_derivations_per_tuple:
                    return frozenset(combined)
        return frozenset(combined)

    def disjoin(self, left: RelativeAnnotation, right: RelativeAnnotation) -> RelativeAnnotation:
        merged = set(left) | set(right)
        if len(merged) > self.max_derivations_per_tuple:
            # Stop accumulating beyond the cap (keeps fixpoints finite even in
            # the dense topologies where relative provenance blows up).
            return left
        return frozenset(merged)

    def remove_base(
        self, annotation: RelativeAnnotation, base_keys: Iterable[Hashable]
    ) -> RelativeAnnotation:
        removed = set(base_keys)
        return frozenset(d for d in annotation if not d.uses(removed))

    def is_zero(self, annotation: RelativeAnnotation) -> bool:
        return not annotation

    def size_bytes(self, annotation: RelativeAnnotation) -> int:
        """Relative provenance ships every derivation: edges plus leaf references."""
        total = 4
        for derivation in annotation:
            total += 8 * max(derivation.edges, 1) + 8 * len(derivation.leaves)
        return total

    def equals(self, left: RelativeAnnotation, right: RelativeAnnotation) -> bool:
        return left == right

    def describe(self, annotation: RelativeAnnotation) -> str:
        if not annotation:
            return "underivable"
        parts = []
        for derivation in sorted(annotation, key=lambda d: sorted(map(str, d.leaves))):
            parts.append("{" + ", ".join(sorted(map(str, derivation.leaves))) + "}")
        return " or ".join(parts)

    # -- derivation-graph bookkeeping -----------------------------------------
    def record_edge(self, head: Hashable, body: Iterable[Hashable]) -> None:
        """Record an immediate-consequence edge (used for state accounting)."""
        self._edges.append(DerivationEdge(head=head, body=frozenset(body)))

    @property
    def edge_count(self) -> int:
        """Number of derivation edges recorded so far."""
        return len(self._edges)

    def derivable(
        self,
        target: Hashable,
        live_base: Set[Hashable],
        edges: Iterable[DerivationEdge] | None = None,
    ) -> bool:
        """Graph-traversal derivability test (what a relative-provenance system runs).

        ``target`` is derivable when some recorded edge derives it from tuples
        that are all either live base tuples or themselves derivable.  This is
        the expensive operation the paper contrasts with absorption
        provenance's direct test; it is exposed for tests and diagnostics.
        """
        graph: Dict[Hashable, List[FrozenSet[Hashable]]] = {}
        for edge in (edges if edges is not None else self._edges):
            graph.setdefault(edge.head, []).append(edge.body)

        memo: Dict[Hashable, bool] = {}
        in_progress: Set[Hashable] = set()

        def visit(node: Hashable) -> bool:
            if node in live_base:
                return True
            if node in memo:
                return memo[node]
            if node in in_progress:
                return False  # cycles cannot ground a derivation
            in_progress.add(node)
            result = any(
                all(visit(child) for child in body) for body in graph.get(node, [])
            )
            in_progress.discard(node)
            memo[node] = result
            return result

        return visit(target)
