"""Absorption provenance: BDD-encoded positive Boolean annotations.

This is the paper's core contribution (Section 4).  Every base tuple gets a
Boolean variable; derived tuples are annotated with the Boolean combination of
the variables of the base tuples they depend on, per the relational-algebra
rules of Figure 6.  Storing annotations as reduced ordered BDDs means:

* **absorption is automatic** — ``p1 OR (p1 AND p2)`` hash-conses to ``p1``,
  so redundant derivations never inflate the annotation;
* **deletions are direct** — deleting base tuple ``p`` restricts ``p`` to
  False in every annotation; a tuple whose annotation becomes False is no
  longer derivable and is removed from the view, with no over-deletion and no
  re-derivation phase.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

from repro.bdd.manager import (
    BDD,
    BDDManager,
    DEFAULT_GC_MIN_TABLE,
    DEFAULT_GC_THRESHOLD,
)
from repro.bdd.serialize import SerializedBDD, deserialize_bdd, serialize_bdd
from repro.provenance.tracker import ProvenanceStore


class AbsorptionProvenanceStore(ProvenanceStore):
    """Provenance algebra over BDDs owned by a single :class:`BDDManager`.

    In the distributed setting of the paper every node runs its own BDD
    library instance but the variables (base-tuple identifiers) are global; in
    this simulation a single shared manager plays that role, and message-size
    accounting is done from the structural size of the shipped annotation.

    ``gc_threshold`` / ``gc_min_table`` tune the manager's compacting garbage
    collector when the store builds its own manager (see
    :class:`~repro.bdd.manager.BDDManager`); a supplied manager keeps its own
    settings.
    """

    name = "absorption"
    supports_deletion = True

    def __init__(
        self,
        manager: Optional[BDDManager] = None,
        gc_threshold: float = DEFAULT_GC_THRESHOLD,
        gc_min_table: int = DEFAULT_GC_MIN_TABLE,
    ) -> None:
        self.manager = manager or BDDManager(
            gc_threshold=gc_threshold, gc_min_table=gc_min_table
        )

    # -- algebra -----------------------------------------------------------
    def base_annotation(self, base_key: Hashable) -> BDD:
        """The Boolean variable standing for base tuple ``base_key``."""
        return self.manager.variable(base_key)

    def zero(self) -> BDD:
        return self.manager.false

    def one(self) -> BDD:
        return self.manager.true

    def conjoin(self, left: BDD, right: BDD) -> BDD:
        return self.manager.apply_and(left, right)

    def disjoin(self, left: BDD, right: BDD) -> BDD:
        return self.manager.apply_or(left, right)

    def conjoin_many(self, annotations: Sequence[BDD]) -> BDD:
        """Balanced-tree conjunction through the kernel's n-ary operation."""
        return self.manager.conjoin_many(annotations)

    def disjoin_many(self, annotations: Sequence[BDD]) -> BDD:
        """Balanced-tree disjunction through the kernel's n-ary operation."""
        return self.manager.disjoin_many(annotations)

    def remove_base(self, annotation: BDD, base_keys: Iterable[Hashable]) -> BDD:
        """Set each deleted base tuple's variable to False and simplify."""
        return annotation.without(base_keys)

    def base_restrictor(self, base_keys: Iterable[Hashable]):
        """Prepared multi-key deletion: resolve and sort the key set once.

        The returned callable first consults the annotation's memoised
        *support*: an annotation that mentions none of the deleted variables
        is returned untouched (the overwhelmingly common case when a purge
        scans whole state tables), and the support memo survives across purge
        batches where the per-key-set restriction memo cannot.  Affected
        annotations drive the kernel's ``_restrict`` directly with the
        precompiled index mapping and memo-key suffix; the *same handle* is
        returned when nothing changed.
        """
        manager = self.manager
        index_of = manager._index_by_name.get
        indexed = []
        for key in base_keys:
            index = index_of(key)
            if index is not None:
                indexed.append((index, False))
        if not indexed:
            return lambda annotation: annotation
        indexed.sort()
        key_suffix = tuple(indexed)
        mapping = dict(indexed)
        deleted = frozenset(mapping)
        support_of = manager._support
        kernel_restrict = manager._restrict
        maybe_collect = manager._maybe_collect

        def restrict_one(annotation: BDD) -> BDD:
            node = annotation.node
            if node <= 1:
                return annotation
            # Memo-first: a purge scan re-visits mostly cached supports, so
            # skip the kernel call (and its counter churn) on the hit path.
            # Looked up fresh each call — a compaction mid-purge replaces the
            # cache dict wholesale (node ids are remapped).
            support = manager._support_cache.get(node)
            if support is None:
                support = support_of(node)
            if support.isdisjoint(deleted):
                return annotation
            node = kernel_restrict(node, mapping, key_suffix)
            if node == annotation.node:
                return annotation
            result = BDD(manager, node)
            maybe_collect()
            return result

        return restrict_one

    def is_zero(self, annotation: BDD) -> bool:
        return annotation.is_false()

    def size_bytes(self, annotation: BDD) -> int:
        return annotation.size_bytes()

    def equals(self, left: BDD, right: BDD) -> bool:
        return left == right

    def difference(self, new: BDD, old: BDD) -> BDD:
        """``deltaPv`` of Algorithm 1: the newly gained derivations, ``new AND NOT old``.

        Runs as the kernel's single DIFF operation instead of a negation
        followed by a conjunction.
        """
        return self.manager.diff(new, old)

    def describe(self, annotation: BDD) -> str:
        """Stable human-readable product rendering of an annotation.

        Products are the canonical *minimal* ones (variable-order independent,
        see :func:`~repro.provenance.tracker.canonical_annotation`), each base
        key rendered as ``relation(values)`` via
        :func:`~repro.provenance.tracker.format_base_key`, keys sorted inside a
        product and products sorted shortest-first then lexicographically — so
        two semantically equal annotations describe identically regardless of
        the manager that built them.
        """
        if annotation.is_false():
            return "false"
        if annotation.is_true():
            return "true"
        from repro.provenance.tracker import canonical_annotation, format_base_key

        products = [
            sorted(format_base_key(key) for key in product)
            for product in canonical_annotation(self, annotation)
        ]
        products.sort(key=lambda keys: (len(keys), keys))
        return " | ".join(
            f"({' & '.join(keys)})" if keys else "true" for keys in products
        )

    # -- durability ----------------------------------------------------------
    def encode_annotation(self, annotation):
        """Flatten a BDD annotation into its manager-independent form.

        Non-BDD values (for example the variable keys carried by purge
        messages) pass through unchanged so the WAL and checkpoints can encode
        whole updates uniformly.
        """
        if isinstance(annotation, BDD):
            return serialize_bdd(annotation)
        return annotation

    def decode_annotation(self, encoded):
        """Re-intern a serialized annotation into this store's BDD manager."""
        if isinstance(encoded, SerializedBDD):
            return deserialize_bdd(encoded, self.manager)
        return encoded

    # -- kernel integration (GC root protocol / telemetry) ---------------------
    def gc_paused(self):
        """Defer the BDD manager's compacting GC for the duration of a block."""
        return self.manager.defer_gc()

    def register_root_source(self, provider) -> None:
        """Enroll ``provider`` (callable yielding BDD handles) as GC roots."""
        self.manager.add_root_source(provider)

    def kernel_stats(self):
        """The BDD manager's table/GC/pause telemetry (see ``gc_stats``)."""
        return self.manager.gc_stats()

    def kernel_clock(self) -> float:
        """Cumulative wall seconds spent inside the BDD kernel loops."""
        return self.manager.kernel_seconds

    def collect(self, force: bool = False):
        """Run one mark(-and-compact) pass of the BDD manager's collector."""
        return self.manager.collect(force=force)

    # -- diagnostics ----------------------------------------------------------
    def cache_stats(self):
        """The BDD manager's work and memo-cache counters (see ``cache_stats``)."""
        return self.manager.cache_stats()

    # -- helpers used by tests/examples -------------------------------------
    def annotation_from_products(self, products: Iterable[Iterable[Hashable]]) -> BDD:
        """Build an annotation as an OR of ANDs of base-tuple variables."""
        return self.manager.from_products(products)

    def depends_on(self, annotation: BDD, base_key: Hashable) -> bool:
        """True when the annotation's truth can change with ``base_key``."""
        if not self.manager.has_variable(base_key):
            return False
        return self.manager.index_of(base_key) in annotation.support()
