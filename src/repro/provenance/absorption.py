"""Absorption provenance: BDD-encoded positive Boolean annotations.

This is the paper's core contribution (Section 4).  Every base tuple gets a
Boolean variable; derived tuples are annotated with the Boolean combination of
the variables of the base tuples they depend on, per the relational-algebra
rules of Figure 6.  Storing annotations as reduced ordered BDDs means:

* **absorption is automatic** — ``p1 OR (p1 AND p2)`` hash-conses to ``p1``,
  so redundant derivations never inflate the annotation;
* **deletions are direct** — deleting base tuple ``p`` restricts ``p`` to
  False in every annotation; a tuple whose annotation becomes False is no
  longer derivable and is removed from the view, with no over-deletion and no
  re-derivation phase.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.serialize import SerializedBDD, deserialize_bdd, serialize_bdd
from repro.provenance.tracker import ProvenanceStore


class AbsorptionProvenanceStore(ProvenanceStore):
    """Provenance algebra over BDDs owned by a single :class:`BDDManager`.

    In the distributed setting of the paper every node runs its own BDD
    library instance but the variables (base-tuple identifiers) are global; in
    this simulation a single shared manager plays that role, and message-size
    accounting is done from the structural size of the shipped annotation.
    """

    name = "absorption"
    supports_deletion = True

    def __init__(self, manager: Optional[BDDManager] = None) -> None:
        self.manager = manager or BDDManager()

    # -- algebra -----------------------------------------------------------
    def base_annotation(self, base_key: Hashable) -> BDD:
        """The Boolean variable standing for base tuple ``base_key``."""
        return self.manager.variable(base_key)

    def zero(self) -> BDD:
        return self.manager.false

    def one(self) -> BDD:
        return self.manager.true

    def conjoin(self, left: BDD, right: BDD) -> BDD:
        return left & right

    def disjoin(self, left: BDD, right: BDD) -> BDD:
        return left | right

    def remove_base(self, annotation: BDD, base_keys: Iterable[Hashable]) -> BDD:
        """Set each deleted base tuple's variable to False and simplify."""
        return annotation.without(base_keys)

    def is_zero(self, annotation: BDD) -> bool:
        return annotation.is_false()

    def size_bytes(self, annotation: BDD) -> int:
        return annotation.size_bytes()

    def equals(self, left: BDD, right: BDD) -> bool:
        return left == right

    def difference(self, new: BDD, old: BDD) -> BDD:
        """``deltaPv`` of Algorithm 1: the newly gained derivations, ``new AND NOT old``."""
        return new & ~old

    def describe(self, annotation: BDD) -> str:
        if annotation.is_false():
            return "false"
        if annotation.is_true():
            return "true"
        products = sorted(
            (" & ".join(sorted(map(str, product))) for product in annotation.iter_products()),
        )
        return " | ".join(f"({product})" if product else "true" for product in products)

    # -- durability ----------------------------------------------------------
    def encode_annotation(self, annotation):
        """Flatten a BDD annotation into its manager-independent form.

        Non-BDD values (for example the variable keys carried by purge
        messages) pass through unchanged so the WAL and checkpoints can encode
        whole updates uniformly.
        """
        if isinstance(annotation, BDD):
            return serialize_bdd(annotation)
        return annotation

    def decode_annotation(self, encoded):
        """Re-intern a serialized annotation into this store's BDD manager."""
        if isinstance(encoded, SerializedBDD):
            return deserialize_bdd(encoded, self.manager)
        return encoded

    # -- diagnostics ----------------------------------------------------------
    def cache_stats(self):
        """The BDD manager's work and memo-cache counters (see ``cache_stats``)."""
        return self.manager.cache_stats()

    # -- helpers used by tests/examples -------------------------------------
    def annotation_from_products(self, products: Iterable[Iterable[Hashable]]) -> BDD:
        """Build an annotation as an OR of ANDs of base-tuple variables."""
        return self.manager.from_products(products)

    def depends_on(self, annotation: BDD, base_key: Hashable) -> bool:
        """True when the annotation's truth can change with ``base_key``."""
        if not self.manager.has_variable(base_key):
            return False
        return self.manager.index_of(base_key) in annotation.support()
