"""The provenance-store interface shared by all maintenance strategies.

Operators (Fixpoint, PipelinedHashJoin, MinShip, AggSel) are written against
this small algebra of annotations rather than against BDDs directly, so the
same operator code runs under:

* **absorption provenance** (BDD annotations, the paper's contribution),
* **relative provenance** (derivation-set annotations without absorption,
  the comparison system from update exchange),
* **counting** (integers; classical non-recursive maintenance), and
* **none** (set semantics; what DRed runs on).

The store interprets annotations: it knows how to create a fresh annotation
for a base tuple, combine annotations across joins (``conjoin``) and across
alternative derivations (``disjoin``), zero out deleted base tuples
(``remove_base``), test emptiness and measure encoded size.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Any, Dict, Hashable, Iterable, Optional, Sequence

Annotation = Any


class ProvenanceStore(abc.ABC):
    """Abstract provenance algebra used by the provenance-aware operators."""

    #: Human-readable name used in experiment reports.
    name: str = "abstract"
    #: Whether annotations carry enough information to decide derivability
    #: directly on deletion (True for absorption/relative, False for none).
    supports_deletion: bool = True

    @abc.abstractmethod
    def base_annotation(self, base_key: Hashable) -> Annotation:
        """Annotation of a freshly inserted base tuple identified by ``base_key``."""

    @abc.abstractmethod
    def zero(self) -> Annotation:
        """The "not derivable" annotation."""

    @abc.abstractmethod
    def one(self) -> Annotation:
        """The neutral annotation for conjunction (no constraints)."""

    @abc.abstractmethod
    def conjoin(self, left: Annotation, right: Annotation) -> Annotation:
        """Combine annotations of joined tuples (Figure 6: join rule)."""

    @abc.abstractmethod
    def disjoin(self, left: Annotation, right: Annotation) -> Annotation:
        """Merge an alternative derivation (Figure 6: union/projection rule)."""

    def conjoin_many(self, annotations: Sequence[Annotation]) -> Annotation:
        """Conjoin a whole collection (empty -> :meth:`one`).

        The default is a left fold over :meth:`conjoin`; stores with an n-ary
        kernel operation (absorption's balanced-tree reduction) override it.
        """
        result = self.one()
        for annotation in annotations:
            result = self.conjoin(result, annotation)
        return result

    def disjoin_many(self, annotations: Sequence[Annotation]) -> Annotation:
        """Disjoin a whole collection (empty -> :meth:`zero`).

        The default is a left fold over :meth:`disjoin`; stores with an n-ary
        kernel operation (absorption's balanced-tree reduction) override it.
        """
        result = self.zero()
        for annotation in annotations:
            result = self.disjoin(result, annotation)
        return result

    @abc.abstractmethod
    def remove_base(self, annotation: Annotation, base_keys: Iterable[Hashable]) -> Annotation:
        """Zero out the given base tuples inside ``annotation`` (deletion)."""

    def base_restrictor(self, base_keys: Iterable[Hashable]):
        """A prepared ``annotation -> annotation`` deletion of ``base_keys``.

        Purges restrict *every* stored annotation against the same key set;
        preparing the restriction once (resolving names, sorting, building
        the memo key) amortises that setup across the whole table scan.  The
        default simply closes over :meth:`remove_base`; the absorption store
        overrides it with a kernel-level fast path.
        """
        keys = list(base_keys)
        return lambda annotation: self.remove_base(annotation, keys)

    @abc.abstractmethod
    def is_zero(self, annotation: Annotation) -> bool:
        """True when the annotation certifies the tuple is no longer derivable."""

    @abc.abstractmethod
    def size_bytes(self, annotation: Annotation) -> int:
        """Encoded size of the annotation in bytes (per-tuple overhead metric)."""

    def equals(self, left: Annotation, right: Annotation) -> bool:
        """Whether two annotations are equal (used to detect "provenance changed")."""
        return left == right

    def difference(self, new: Annotation, old: Annotation) -> Annotation:
        """The part of ``new`` not implied by ``old`` (the ``deltaPv`` of Algorithm 1).

        The default implementation simply returns ``new``; the absorption
        store overrides it with ``new AND NOT old``.
        """
        return new

    def describe(self, annotation: Annotation) -> str:
        """Human-readable rendering used by examples and debugging."""
        return repr(annotation)

    # -- durability (checkpoint / recovery support) ---------------------------
    def encode_annotation(self, annotation: Annotation) -> Any:
        """A self-contained, picklable form of ``annotation`` for checkpoints.

        The default assumes annotations are already plain values (integers,
        frozensets, booleans); stores whose annotations are handles into
        shared in-memory structures (the BDD manager) override this.
        """
        return annotation

    def decode_annotation(self, encoded: Any) -> Annotation:
        """Inverse of :meth:`encode_annotation` (re-interning into live state)."""
        return encoded

    # -- kernel integration (GC root protocol / telemetry) ---------------------
    @contextlib.contextmanager
    def gc_paused(self):
        """Suspend any automatic annotation-storage compaction in the block.

        Codec-heavy paths (checkpoint capture/restore, migration slices)
        enroll through this so a compaction cannot interleave with a bulk
        encode/decode.  The default is a no-op; the absorption store defers
        its BDD manager's garbage collector.
        """
        yield self

    def register_root_source(self, provider) -> None:
        """Enroll a callable yielding annotations the storage must keep live.

        No-op for value-typed stores; the absorption store forwards to its
        BDD manager's external-root registry.
        """

    def kernel_stats(self) -> Optional[Dict[str, object]]:
        """Annotation-kernel telemetry (table sizes, GC counters, kernel time).

        ``None`` for stores without a shared annotation kernel.
        """
        return None

    def kernel_clock(self) -> float:
        """Cumulative wall seconds the annotation kernel has run for.

        The tracer snapshots this around each delivery to synthesise per-node
        kernel-time spans.  Stores without a kernel sit at 0.0 forever.
        """
        return 0.0

    def collect(self, force: bool = False) -> Optional[Dict[str, object]]:
        """Run one annotation-storage collection pass, if the store has one.

        Traced runs trigger a pass at each phase boundary so every trace
        contains GC spans even when no automatic collection fired; value-typed
        stores have nothing to collect and return ``None``.
        """
        return None


class NullProvenanceStore(ProvenanceStore):
    """Set-semantics execution: no annotations at all (DRed's data model).

    ``None`` plays the role of "present"; emptiness can never be decided from
    the annotation, which is exactly why DRed has to over-delete and
    re-derive.
    """

    name = "none"
    supports_deletion = False

    def base_annotation(self, base_key: Hashable) -> Annotation:
        return True

    def zero(self) -> Annotation:
        return False

    def one(self) -> Annotation:
        return True

    def conjoin(self, left: Annotation, right: Annotation) -> Annotation:
        return bool(left) and bool(right)

    def disjoin(self, left: Annotation, right: Annotation) -> Annotation:
        return bool(left) or bool(right)

    def remove_base(self, annotation: Annotation, base_keys: Iterable[Hashable]) -> Annotation:
        return annotation

    def is_zero(self, annotation: Annotation) -> bool:
        return not annotation

    def size_bytes(self, annotation: Annotation) -> int:
        return 0

    def describe(self, annotation: Annotation) -> str:
        return "present" if annotation else "absent"


def provenance_store_for(kind: str, **options: Any) -> ProvenanceStore:
    """Factory: build a provenance store from a strategy keyword.

    ``kind`` is one of ``"absorption"``, ``"relative"``, ``"counting"`` or
    ``"none"`` (case-insensitive).
    """
    from repro.provenance.absorption import AbsorptionProvenanceStore
    from repro.provenance.counting import CountingProvenanceStore
    from repro.provenance.relative import RelativeProvenanceStore

    normalised = kind.strip().lower()
    if normalised == "absorption":
        return AbsorptionProvenanceStore(**options)
    if normalised == "relative":
        return RelativeProvenanceStore(**options)
    if normalised == "counting":
        return CountingProvenanceStore(**options)
    if normalised in ("none", "set", "dred"):
        return NullProvenanceStore()
    raise ValueError(f"unknown provenance store kind: {kind!r}")


def format_base_key(key: Hashable) -> str:
    """Render a base-variable key as ``relation(v1, v2)`` when it has that shape.

    The engine names base variables ``((relation, *values), version)`` (see
    :meth:`repro.engine.runtime.ProcessorNode._base_variable_key`); re-inserted
    incarnations carry a ``#version`` suffix so two generations of the same
    tuple stay distinguishable.  Keys of any other shape (tests use plain
    strings like ``"p1"``) render through ``str``.
    """
    if (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[0], tuple)
        and key[0]
        and isinstance(key[0][0], str)
        and isinstance(key[1], int)
    ):
        (relation, *values), version = key
        rendered = f"{relation}({', '.join(str(value) for value in values)})"
        return rendered if version == 0 else f"{rendered}#{version}"
    return str(key)


def canonical_annotation(store: ProvenanceStore, annotation: Annotation) -> Any:
    """A backend-independent canonical form of ``annotation``, for equivalence checks.

    BDD annotations built by different managers (one per worker process in the
    process backend) represent the same boolean function with different node
    ids and variable orders, so neither byte-level comparison nor raw
    ``iter_products`` output is comparable across backends (path products
    depend on the variable order).  Absorption annotations are monotone, and a
    monotone function is uniquely determined by its *antichain* of minimal
    products, so two semantically identical absorption annotations
    canonicalise to the same frozenset of frozensets.  Value-typed annotations
    (counting vectors, relative sets, DRed ``None``) pass through the store
    codec, which is already process-independent.
    """
    if annotation is None:
        return None
    if hasattr(annotation, "iter_products"):
        minimal: list = []
        for product in sorted(annotation.iter_products(), key=len):
            if not any(kept <= product for kept in minimal):
                minimal.append(product)
        return frozenset(minimal)
    return store.encode_annotation(annotation)
