"""Provenance semirings.

The paper's absorption provenance is "a compact encoding of the PosBool
provenance semiring" of Green, Karvounarakis and Tannen (PODS 2007).  This
module implements the general semiring framework so that:

* the Datalog substrate can evaluate queries under any provenance semiring
  (PosBool / counting / why / lineage / tropical cost), which is the
  theoretical foundation Section 4 builds on;
* tests can check that the BDD-based absorption store agrees with a direct
  PosBool evaluation.

A commutative semiring is ``(K, plus, times, zero, one)``; annotations combine
with ``times`` across joins and ``plus`` across alternative derivations
(union / projection), per Figure 6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Generic, Hashable, Iterable, TypeVar

from repro.bdd.expr import BoolExpr

K = TypeVar("K")


@dataclass(frozen=True)
class Semiring(Generic[K]):
    """A commutative semiring over annotation domain ``K``."""

    name: str
    zero: K
    one: K
    plus: Callable[[K, K], K]
    times: Callable[[K, K], K]
    #: Maps a base-tuple identifier to its initial annotation.
    of_base: Callable[[Hashable], K]

    def plus_all(self, annotations: Iterable[K]) -> K:
        """Fold ``plus`` over a collection (empty -> zero)."""
        result = self.zero
        for annotation in annotations:
            result = self.plus(result, annotation)
        return result

    def times_all(self, annotations: Iterable[K]) -> K:
        """Fold ``times`` over a collection (empty -> one)."""
        result = self.one
        for annotation in annotations:
            result = self.times(result, annotation)
        return result

    def is_zero(self, annotation: K) -> bool:
        """True when the annotation means "not present / not derivable"."""
        return annotation == self.zero


# -- PosBool: positive Boolean expressions (absorption provenance) -------------

def _bool_plus(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    return left | right


def _bool_times(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    return left & right


#: The PosBool semiring over minimised DNF expressions.  The paper's absorption
#: provenance is this semiring with BDDs as the physical encoding.
BooleanSemiring: Semiring[BoolExpr] = Semiring(
    name="PosBool",
    zero=BoolExpr.false(),
    one=BoolExpr.true(),
    plus=_bool_plus,
    times=_bool_times,
    of_base=BoolExpr.variable,
)


# -- Counting: number of derivations -------------------------------------------

CountingSemiring: Semiring[int] = Semiring(
    name="counting",
    zero=0,
    one=1,
    plus=lambda left, right: left + right,
    times=lambda left, right: left * right,
    of_base=lambda _base: 1,
)


# -- Why-provenance: sets of witness sets ---------------------------------------

Witness = FrozenSet[Hashable]
WhyAnnotation = FrozenSet[Witness]


def _why_plus(left: WhyAnnotation, right: WhyAnnotation) -> WhyAnnotation:
    return left | right


def _why_times(left: WhyAnnotation, right: WhyAnnotation) -> WhyAnnotation:
    return frozenset(a | b for a in left for b in right)


WhySemiring: Semiring[WhyAnnotation] = Semiring(
    name="why",
    zero=frozenset(),
    one=frozenset({frozenset()}),
    plus=_why_plus,
    times=_why_times,
    of_base=lambda base: frozenset({frozenset({base})}),
)


# -- Lineage: flat set of contributing base tuples -------------------------------

LineageAnnotation = FrozenSet[Hashable]


def _lineage_plus(left: LineageAnnotation, right: LineageAnnotation) -> LineageAnnotation:
    return left | right


#: Lineage (Cui-style) flattens everything to the set of base tuples involved.
#: Note there is no distinguished "one" other than the empty set, which is why
#: lineage cannot support deletions (the paper's Section 4 motivation).
LineageSemiring: Semiring[LineageAnnotation] = Semiring(
    name="lineage",
    zero=frozenset(),
    one=frozenset(),
    plus=_lineage_plus,
    times=_lineage_plus,
    of_base=lambda base: frozenset({base}),
)


# -- Tropical: min-cost provenance (shortest paths) -------------------------------

_INFINITY = float("inf")

TropicalSemiring: Semiring[float] = Semiring(
    name="tropical",
    zero=_INFINITY,
    one=0.0,
    plus=min,
    times=lambda left, right: left + right,
    of_base=lambda _base: 0.0,
)


def posbool_of_why(annotation: WhyAnnotation) -> BoolExpr:
    """Convert a why-provenance annotation to the equivalent PosBool expression."""
    return BoolExpr.from_products(annotation)
