"""Provenance models for incremental maintenance of recursive views.

The paper's key idea (Section 4) is *absorption provenance*: annotate every
view tuple with a Boolean expression over base-tuple variables, stored as a
BDD so that Boolean absorption keeps annotations minimal and deletion handling
becomes "set the deleted variable to false and drop tuples whose annotation
becomes false".  For comparison the paper measures *relative provenance*
(derivation-graph provenance from update-exchange systems) and plain
set-semantics maintenance via DRed.

This package provides all of those as pluggable provenance trackers, plus the
generic provenance-semiring framework they specialise:

* :mod:`repro.provenance.semiring` — provenance semirings (PosBool, counting,
  why-provenance, lineage, tropical) over abstract annotations;
* :mod:`repro.provenance.absorption` — BDD-backed absorption provenance store;
* :mod:`repro.provenance.relative` — derivation-graph (relative) provenance
  with reachability-based derivability checks;
* :mod:`repro.provenance.counting` — derivation counting (classic
  non-recursive view maintenance);
* :mod:`repro.provenance.tracker` — the common tracker interface used by
  operators, and a factory keyed by maintenance strategy.
"""

from repro.provenance.absorption import AbsorptionProvenanceStore
from repro.provenance.counting import CountingProvenanceStore
from repro.provenance.relative import DerivationEdge, RelativeProvenanceStore
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    Semiring,
    TropicalSemiring,
    WhySemiring,
)
from repro.provenance.tracker import (
    ProvenanceStore,
    canonical_annotation,
    provenance_store_for,
)

__all__ = [
    "AbsorptionProvenanceStore",
    "RelativeProvenanceStore",
    "CountingProvenanceStore",
    "DerivationEdge",
    "ProvenanceStore",
    "canonical_annotation",
    "provenance_store_for",
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "WhySemiring",
    "LineageSemiring",
    "TropicalSemiring",
]
