"""The parity harness: chaos runs must converge bit-identical to fault-free.

The chaos plane's whole design is *parity by masking*: every injected fault
(link drop/duplicate/reorder/extra-delay, node crash storms, worker SIGKILLs,
doomed recoveries and respawns, scaling storms) is absorbed by a mechanism —
reliable FIFO channels, WAL + checkpoints, sequence-number dedup, supervised
retry — whose contract is that the *converged* result does not change.  This
module is the gate on that contract:

1. run the workload on a **fault-free reference** executor (plain simulator,
   no chaos) and record the final view, the canonical eager provenance, and
   the virtual-time horizon ``T``;
2. run the *same* workload under the chaos plan — storms and kills laid out
   over ``T`` — on the backend under test;
3. assert the final :meth:`view` and :meth:`view_annotations` (canonical,
   manager-independent) are **equal**.  Timing, message counts and traces are
   explicitly out of scope: chaos changes *how* the run got there, never
   *where* it converged.

Views are compared for **every** strategy.  Annotations are compared only for
*eager* provenance strategies: lazy shipping coalesces deltas by flush timing,
so the set of alternative derivations a lazy run records (and, under
absorption, which of them survive) legitimately depends on arrival order —
its annotations are sound but not canonical across schedules.  Eager shipping
emits every derivation at derivation time, which is what makes its provenance
canonical and therefore a meaningful bit-identity gate (``annotations_compared``
on the report says which check ran).

Parity requires the ``checkpoint-replay`` recovery policy: provenance purge
intentionally bumps incarnation versions, so its annotations differ from a
fault-free run by design (the churn experiment measures that trade-off; this
gate does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chaos.executor import ChaosExecutor, chaos_executor
from repro.chaos.interposer import ChaosInterposer
from repro.chaos.plan import ChaosPlan, ScalingStormSpec
from repro.chaos.supervisor import RetryPolicy
from repro.engine.strategy import ShipMode
from repro.fault.recovery import RecoveryPolicy
from repro.queries.builder import build_executor
from repro.workloads.chaos import ChaosWorkload

#: How often a scheduled remove-node re-checks for its (possibly deferred)
#: add-node before giving up.  Bounded like every other chaos retry.
_REMOVE_RETRIES = 50


@dataclass
class ParityReport:
    """One chaos-vs-reference comparison, ready for a harness row."""

    backend: str  # "sim" or "process"
    scheme: str  # strategy label
    profile: str
    seed: int
    view_match: bool
    annotation_match: bool
    #: False when the strategy ships lazily (annotations are schedule-
    #: dependent by design, so only the view gate applies — see module doc).
    annotations_compared: bool
    view_size: int
    reference_view_size: int
    horizon: float
    phases: int
    #: Tuples only one side has (repr strings, capped) — mismatch forensics.
    missing_tuples: List[str] = field(default_factory=list)
    extra_tuples: List[str] = field(default_factory=list)
    chaos: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.view_match and self.annotation_match

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "backend": self.backend,
            "scheme": self.scheme,
            "chaos_profile": self.profile,
            "chaos_seed": self.seed,
            "parity_passed": self.passed,
            "view_match": self.view_match,
            "annotation_match": (
                self.annotation_match if self.annotations_compared
                else "(lazy: view-only)"
            ),
            "view_size": self.view_size,
            "reference_view_size": self.reference_view_size,
            "horizon_s": self.horizon,
            "phases": self.phases,
        }
        row.update(self.chaos)
        return row

    def __repr__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"ParityReport({verdict} {self.backend}/{self.scheme} "
            f"profile={self.profile!r} seed={self.seed} "
            f"view={self.view_size}/{self.reference_view_size})"
        )


class ParityError(AssertionError):
    """Raised by :func:`assert_parity` when a chaos run diverged."""

    def __init__(self, report: ParityReport) -> None:
        details = []
        if not report.view_match:
            details.append(
                f"view mismatch ({report.view_size} vs "
                f"{report.reference_view_size} reference tuples; "
                f"missing={report.missing_tuples[:5]}, "
                f"extra={report.extra_tuples[:5]})"
            )
        if not report.annotation_match:
            details.append("canonical provenance annotations differ")
        super().__init__(f"chaos parity violated: {report!r}: " + "; ".join(details))
        self.report = report


def apply_workload(executor, workload: ChaosWorkload) -> int:
    """Run every workload phase on ``executor``; returns the phase count."""
    count = 0
    for label, inserts, deletes in workload.phases():
        executor.apply_mixed(edge_inserts=inserts, edge_deletes=deletes, label=label)
        count += 1
    return count


def run_reference(
    query_plan,
    strategy: str,
    workload: ChaosWorkload,
    node_count: int = 12,
    max_events: int = 5_000_000,
):
    """The fault-free baseline: ``(view, annotations, horizon, phases)``.

    Runs on the plain in-process simulator with the default latency model —
    the same topology every chaos run uses — so the recorded horizon ``T`` is
    the coordinate system the chaos plan's unit-interval schedules scale to.
    """
    executor = build_executor(
        query_plan, strategy, node_count=node_count,
        max_events=max_events, experiment="chaos-reference",
    )
    phases = apply_workload(executor, workload)
    return (
        executor.view(),
        executor.view_annotations(),
        executor.network.now,
        phases,
    )


def _annotations_comparable(strategy) -> bool:
    """Annotation bit-identity is only well-defined for eager provenance."""
    return (
        strategy.provenance_kind != "none"
        and strategy.ship_mode is ShipMode.EAGER
    )


def _compare(reference_view, reference_annotations, executor) -> Dict[str, object]:
    view = executor.view()
    missing = sorted(repr(t) for t in reference_view - view)[:10]
    extra = sorted(repr(t) for t in view - reference_view)[:10]
    view_match = not missing and not extra and len(view) == len(reference_view)
    compared = _annotations_comparable(executor.strategy)
    annotation_match = not compared or (
        view_match and executor.view_annotations() == reference_annotations
    )
    return {
        "view_match": view_match,
        "annotation_match": annotation_match,
        "annotations_compared": compared,
        "view_size": len(view),
        "reference_view_size": len(reference_view),
        "missing_tuples": missing,
        "extra_tuples": extra,
    }


# -- scheduling a plan's storms over the reference horizon ---------------------------
def _schedule_remove_when_present(executor: ChaosExecutor, node_id: int, at_time: float,
                                  tries: int = 0) -> None:
    """Remove ``node_id`` once it exists; its add-node may still be deferred."""

    def attempt(now: float) -> None:
        network = executor.network
        if (
            node_id < network.node_count
            and network.is_active(node_id)
            and node_id in executor.placement.nodes
        ):
            executor.remove_node(node_id, now=now)
        elif tries < _REMOVE_RETRIES:
            _schedule_remove_when_present(executor, node_id, now + 0.05, tries + 1)
        # else: the add never landed (cluster stayed degraded); skip the remove.

    executor.network.schedule_control(attempt, at_time)


def _schedule_scaling_storm(
    executor: ChaosExecutor, spec: ScalingStormSpec, horizon: float
) -> None:
    """Lay the scaling storm's adds/rebalance/removes over the horizon.

    Added node ids are deterministic (the network allocates sequentially and
    control events fire in virtual-time order), so removes can be scheduled
    up front against ``base_count + i``.
    """
    base_count = executor.network.node_count
    lo, hi = spec.window
    slots = spec.add_nodes + 2  # adds early, rebalance mid, removes at the end
    for index in range(spec.add_nodes):
        frac = lo + (hi - lo) * (index + 1) / slots
        executor.schedule_add_node(frac * horizon)
    if spec.rebalance:
        frac = lo + (hi - lo) * (spec.add_nodes + 1) / slots
        executor.schedule_rebalance(frac * horizon)
    if spec.remove_added:
        for index in range(spec.add_nodes):
            _schedule_remove_when_present(
                executor,
                base_count + index,
                hi * horizon * (1 + 0.01 * index),
            )


def schedule_chaos(executor: ChaosExecutor, chaos_plan: ChaosPlan, horizon: float) -> None:
    """Install a plan's crash and scaling storms on a simulator-backend run.

    (Link faults ride along automatically: the :class:`ChaosExecutor` attached
    its interposer at construction when the plan has an active link spec.)
    """
    if chaos_plan.storm is not None:
        scenario = chaos_plan.storm_scenario(executor.network.node_count)
        scenario.scaled(horizon).apply(executor)
    if chaos_plan.scaling is not None and chaos_plan.scaling.add_nodes > 0:
        _schedule_scaling_storm(executor, chaos_plan.scaling, horizon)


# -- the two backend runners ---------------------------------------------------------
def verify_sim_parity(
    query_plan,
    strategy: str,
    chaos_plan: ChaosPlan,
    workload: ChaosWorkload,
    node_count: int = 12,
    supervisor_policy: Optional[RetryPolicy] = None,
    max_events: int = 5_000_000,
) -> ParityReport:
    """Chaos on the in-process simulator vs the fault-free reference."""
    reference_view, reference_annotations, horizon, phases = run_reference(
        query_plan, strategy, workload, node_count=node_count, max_events=max_events
    )
    executor = chaos_executor(
        query_plan,
        strategy,
        chaos_plan=chaos_plan,
        supervisor_policy=supervisor_policy,
        recovery_policy=RecoveryPolicy.CHECKPOINT_REPLAY,
        node_count=node_count,
        max_events=max_events,
    )
    schedule_chaos(executor, chaos_plan, horizon)
    apply_workload(executor, workload)
    comparison = _compare(reference_view, reference_annotations, executor)
    return ParityReport(
        backend="sim",
        scheme=executor.strategy.label,
        profile=chaos_plan.name,
        seed=chaos_plan.seed,
        horizon=horizon,
        phases=phases,
        chaos=executor.chaos_stats(),
        **comparison,
    )


def verify_process_parity(
    query_plan,
    strategy: str,
    chaos_plan: ChaosPlan,
    workload: ChaosWorkload,
    wal_dir,
    node_count: int = 12,
    workers: int = 3,
    supervisor_policy: Optional[RetryPolicy] = None,
    max_events: int = 5_000_000,
) -> ParityReport:
    """Chaos on the process backend (real SIGKILLs) vs the same sim reference.

    The reference is the *fault-free in-process* run, so one gate checks two
    invariants at once: the process backend's bit-identity argument, and the
    chaos plane's masking.  ``wal_dir`` is required — killed workers respawn
    from their command WALs.
    """
    reference_view, reference_annotations, horizon, phases = run_reference(
        query_plan, strategy, workload, node_count=node_count, max_events=max_events
    )
    executor = build_executor(
        query_plan,
        strategy,
        node_count=node_count,
        max_events=max_events,
        experiment="chaos-process",
        backend="process",
        workers=workers,
        wal_dir=wal_dir,
    )
    interposer = None
    try:
        coordinator = executor.network
        if chaos_plan.link is not None and chaos_plan.link.active:
            interposer = ChaosInterposer(chaos_plan).attach(coordinator)
        for fraction, wid in chaos_plan.kill_schedule(executor.workers):
            coordinator.schedule_worker_kill(fraction * horizon, wid)
        if chaos_plan.respawn is not None:
            coordinator.set_respawn_chaos(chaos_plan, supervisor_policy)
        apply_workload(executor, workload)
        comparison = _compare(reference_view, reference_annotations, executor)
        chaos_stats: Dict[str, object] = {
            "chaos_profile": chaos_plan.name,
            "chaos_seed": chaos_plan.seed,
        }
        chaos_stats.update(executor.worker_fault_stats())
        if interposer is not None:
            chaos_stats.update(interposer.stats.as_dict())
        return ParityReport(
            backend="process",
            scheme=executor.strategy.label,
            profile=chaos_plan.name,
            seed=chaos_plan.seed,
            horizon=horizon,
            phases=phases,
            chaos=chaos_stats,
            **comparison,
        )
    finally:
        executor.close()


def assert_parity(report: ParityReport) -> ParityReport:
    """Raise :class:`ParityError` unless ``report`` passed; returns it."""
    if not report.passed:
        raise ParityError(report)
    return report


def parity_sweep(
    query_plan,
    strategies: Sequence[str],
    chaos_plan: ChaosPlan,
    workload: ChaosWorkload,
    node_count: int = 12,
    max_events: int = 5_000_000,
) -> List[ParityReport]:
    """One sim parity report per strategy (the benchmark/CI sweep body)."""
    return [
        verify_sim_parity(
            query_plan, strategy, chaos_plan, workload,
            node_count=node_count, max_events=max_events,
        )
        for strategy in strategies
    ]
