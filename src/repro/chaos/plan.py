"""Declarative, seeded chaos plans.

A :class:`ChaosPlan` is a frozen description of *everything adversarial* that
happens during a run: per-link message drop/duplication/extra-delay, node
crash/recover storms, real worker SIGKILLs on the process backend, and
injected recovery/respawn failures that exercise the supervisor.  Every
decision the plan makes is a **pure function** of ``(seed, stream tag,
identifiers)`` via a splitmix64-style mixer — no hidden RNG state, no
process-salted string hashing — so the same plan replays bit-identically
across runs, strategies, and backends, and two subsystems consuming the plan
concurrently can never perturb each other's random streams.

Fault *semantics* live elsewhere: the link specs drive the
:class:`~repro.chaos.interposer.ChaosInterposer` in the simulator send path,
storms become :class:`~repro.workloads.churn.ChurnScenario` schedules, kill
schedules become coordinator-side SIGKILLs, and the recovery/respawn failure
streams are consumed by the supervised recovery paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple as PyTuple

from repro.data.relation import stable_hash
from repro.workloads.churn import ChurnScenario, generate_churn

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

#: Stream tags: each chaos decision family draws from its own stream so that
#: e.g. adding a duplication spec can never shift which messages get dropped.
TAG_DROP = "chaos/drop"
TAG_DELAY = "chaos/delay"
TAG_JITTER = "chaos/jitter"
TAG_DUP = "chaos/dup"
TAG_DUP_DELAY = "chaos/dup-delay"
TAG_STORM = "chaos/storm"
TAG_KILL_TIME = "chaos/kill-time"
TAG_KILL_TARGET = "chaos/kill-target"
TAG_RECOVERY_GATE = "chaos/recovery-gate"
TAG_RECOVERY_COUNT = "chaos/recovery-count"
TAG_RESPAWN_GATE = "chaos/respawn-gate"
TAG_RESPAWN_COUNT = "chaos/respawn-count"


def mix64(*parts) -> int:
    """Mix arbitrary identifiers into a 64-bit value, deterministically.

    Strings go through :func:`~repro.data.relation.stable_hash` (FNV-1a, not
    the per-process-salted builtin); integers are folded directly.  The
    finalizer is the splitmix64 output permutation, the same family the
    placement ring uses.
    """
    acc = 0x8A5CD789635D2DFF
    for part in parts:
        if isinstance(part, str):
            part = stable_hash(part)
        acc = (acc + _GOLDEN + (part & _MASK64)) & _MASK64
        acc = ((acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        acc = ((acc ^ (acc >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def unit(*parts) -> float:
    """A deterministic float in ``[0, 1)`` derived from ``mix64``."""
    return mix64(*parts) / 2.0**64


@dataclass(frozen=True)
class LinkChaosSpec:
    """Per-link message faults, masked by the reliable in-order transport.

    The simulator models the paper's reliable FIFO channels, so link faults
    surface as *time*, never as lost state: a dropped wire copy costs one
    retransmit timeout (geometric, bounded by ``max_retransmits``), a
    duplicated copy is a ghost delivery the receiver's sequence-number dedup
    suppresses, and delay jitter reorders traffic *across* channels while the
    per-channel FIFO clamp keeps each channel in order.  That is exactly why
    a chaos run must still converge bit-identical to the fault-free run.
    """

    drop_prob: float = 0.0
    max_retransmits: int = 3
    retransmit_timeout: float = 0.004
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    max_extra_delay: float = 0.003

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")
        if self.retransmit_timeout < 0.0 or self.max_extra_delay < 0.0:
            raise ValueError("chaos delays must be non-negative")

    @property
    def active(self) -> bool:
        return self.drop_prob > 0.0 or self.dup_prob > 0.0 or self.delay_prob > 0.0


@dataclass(frozen=True)
class CrashStormSpec:
    """Node crash/recover cycles over a unit-interval window of the run."""

    cycles: int = 2
    downtime: float = 0.25
    window: PyTuple[float, float] = (0.15, 0.85)


@dataclass(frozen=True)
class WorkerKillSpec:
    """Real SIGKILLs of worker processes at virtual-time points (process backend)."""

    kills: int = 1
    window: PyTuple[float, float] = (0.25, 0.75)


@dataclass(frozen=True)
class RecoveryFaultSpec:
    """Injected failures of recovery (or respawn) attempts.

    A gated node/worker fails its first ``1 + mix % max_failures`` attempts;
    whether it is gated at all is a per-identity coin weighted by
    ``failure_prob``.  Plans meant to *pass* the parity gate keep the forced
    failure count under the supervisor's retry budget; the ``degraded``
    profile deliberately exceeds it to exercise graceful degradation.
    """

    failure_prob: float = 0.0
    max_failures: int = 0


@dataclass(frozen=True)
class ScalingStormSpec:
    """Elastic placement churn: grow, optionally shrink, optionally rebalance."""

    add_nodes: int = 0
    remove_added: bool = False
    rebalance: bool = False
    window: PyTuple[float, float] = (0.1, 0.8)


@dataclass(frozen=True)
class ChaosPlan:
    """The complete seeded fault schedule for one run."""

    seed: int = 0
    name: str = "custom"
    link: Optional[LinkChaosSpec] = None
    storm: Optional[CrashStormSpec] = None
    kills: Optional[WorkerKillSpec] = None
    recovery: Optional[RecoveryFaultSpec] = None
    respawn: Optional[RecoveryFaultSpec] = None
    scaling: Optional[ScalingStormSpec] = None

    # -- decision streams ------------------------------------------------------
    def unit(self, tag: str, *parts) -> float:
        """A plan-seeded deterministic float in ``[0, 1)`` for one decision."""
        return unit(self.seed, tag, *parts)

    def storm_scenario(self, node_count: int) -> Optional[ChurnScenario]:
        """The crash/recover schedule over the unit interval, or ``None``."""
        spec = self.storm
        if spec is None or spec.cycles <= 0:
            return None
        lo, hi = spec.window
        return generate_churn(
            node_count,
            cycles=spec.cycles,
            downtime=spec.downtime,
            start=lo,
            end=hi,
            seed=mix64(self.seed, TAG_STORM) % (2**31),
        )

    def kill_schedule(self, workers: int) -> PyTuple[PyTuple[float, int], ...]:
        """``(unit_time, worker_id)`` SIGKILL points, sorted by time."""
        spec = self.kills
        if spec is None or spec.kills <= 0 or workers <= 0:
            return ()
        lo, hi = spec.window
        events = []
        for index in range(spec.kills):
            frac = lo + (hi - lo) * unit(self.seed, TAG_KILL_TIME, index)
            wid = mix64(self.seed, TAG_KILL_TARGET, index) % workers
            events.append((frac, wid))
        return tuple(sorted(events))

    def _forced_failures(self, spec, gate_tag, count_tag, identity) -> int:
        if spec is None or spec.failure_prob <= 0.0 or spec.max_failures <= 0:
            return 0
        if unit(self.seed, gate_tag, identity) >= spec.failure_prob:
            return 0
        return 1 + mix64(self.seed, count_tag, identity) % spec.max_failures

    def forced_recovery_failures(self, node: int) -> int:
        """How many leading recovery attempts for ``node`` are doomed."""
        return self._forced_failures(
            self.recovery, TAG_RECOVERY_GATE, TAG_RECOVERY_COUNT, node
        )

    def recovery_attempt_fails(self, node: int, attempt: int) -> bool:
        """Whether recovery ``attempt`` (1-based) for ``node`` is injected to fail."""
        return attempt <= self.forced_recovery_failures(node)

    def forced_respawn_failures(self, wid: int) -> int:
        """How many leading respawn attempts for worker ``wid`` are doomed."""
        return self._forced_failures(
            self.respawn, TAG_RESPAWN_GATE, TAG_RESPAWN_COUNT, wid
        )

    def respawn_attempt_fails(self, wid: int, attempt: int) -> bool:
        """Whether respawn ``attempt`` (1-based) for worker ``wid`` is doomed."""
        return attempt <= self.forced_respawn_failures(wid)

    # -- profiles --------------------------------------------------------------
    @classmethod
    def profile(cls, name: str, seed: int = 0) -> "ChaosPlan":
        """A named, ready-made plan: ``none``, ``link``, ``storm``, ``full``,
        ``degraded`` or ``kill`` (see :data:`PROFILES`)."""
        try:
            build = PROFILES[name]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown chaos profile {name!r} (known: {known})")
        return build(seed)


#: Named profiles.  All but ``degraded`` keep injected recovery failures
#: within the default supervisor budget, so they are parity-safe.
PROFILES = {
    "none": lambda seed: ChaosPlan(seed=seed, name="none"),
    "link": lambda seed: ChaosPlan(
        seed=seed,
        name="link",
        link=LinkChaosSpec(drop_prob=0.08, dup_prob=0.06, delay_prob=0.2),
    ),
    "storm": lambda seed: ChaosPlan(
        seed=seed,
        name="storm",
        link=LinkChaosSpec(drop_prob=0.04, dup_prob=0.03, delay_prob=0.1),
        storm=CrashStormSpec(cycles=2, downtime=0.25),
    ),
    "full": lambda seed: ChaosPlan(
        seed=seed,
        name="full",
        link=LinkChaosSpec(drop_prob=0.06, dup_prob=0.05, delay_prob=0.15),
        storm=CrashStormSpec(cycles=2, downtime=0.2),
        recovery=RecoveryFaultSpec(failure_prob=0.6, max_failures=2),
        scaling=ScalingStormSpec(add_nodes=2, remove_added=True, rebalance=True),
    ),
    "degraded": lambda seed: ChaosPlan(
        seed=seed,
        name="degraded",
        storm=CrashStormSpec(cycles=1, downtime=0.3, window=(0.3, 0.8)),
        recovery=RecoveryFaultSpec(failure_prob=1.0, max_failures=1_000_000),
    ),
    "kill": lambda seed: ChaosPlan(
        seed=seed,
        name="kill",
        link=LinkChaosSpec(drop_prob=0.04, dup_prob=0.03, delay_prob=0.1),
        kills=WorkerKillSpec(kills=2),
    ),
}
