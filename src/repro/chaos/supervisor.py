"""Bounded-retry supervision with exponential backoff and seeded jitter.

The :class:`Supervisor` wraps any restartable action — node recovery on the
simulator backend, worker respawn on the process backend — in a retry loop
with a hard attempt budget.  Backoff delays grow exponentially, are capped,
and carry a deterministic jitter derived from the supervisor seed and the
action label, so two supervised actions never thundering-herd each other and
the whole schedule replays bit-identically.

The budget is the point: a permanently failing recovery must *end* — either
by raising :class:`SupervisionExhausted` or, one layer up, by degrading the
node to stale-view service — never by respawning forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple as PyTuple, Type

from repro.chaos.plan import unit


class ChaosInjectedFailure(RuntimeError):
    """An artificial failure injected by a chaos plan into a supervised action."""


class SupervisionExhausted(RuntimeError):
    """A supervised action failed every attempt in its retry budget."""

    def __init__(self, label: str, attempts: int) -> None:
        super().__init__(f"supervised action {label!r} failed {attempts} attempts; budget exhausted")
        self.label = label
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for supervised actions."""

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0 or self.jitter < 0.0:
            raise ValueError("delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")


@dataclass(frozen=True)
class SupervisionReport:
    """Outcome of one supervised action: label, attempts used, success."""

    label: str
    attempts: int
    succeeded: bool
    backoffs: PyTuple[float, ...]


@dataclass
class Supervisor:
    """Runs actions under a :class:`RetryPolicy` with deterministic backoff."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    reports: List[SupervisionReport] = field(default_factory=list)

    def backoff(self, label: str, attempt: int) -> float:
        """Delay before retrying after failed ``attempt`` (1-based):
        exponential in the attempt number, capped, plus seeded jitter."""
        delay = self.policy.base_delay * self.policy.multiplier ** (attempt - 1)
        delay = min(delay, self.policy.max_delay)
        return delay * (1.0 + self.policy.jitter * unit(self.seed, "backoff", label, attempt))

    def run(
        self,
        label: str,
        action: Callable[[int], object],
        retry_on: PyTuple[Type[BaseException], ...] = (ChaosInjectedFailure,),
        on_backoff: Optional[Callable[[int, float], None]] = None,
    ):
        """Run ``action(attempt)`` until it succeeds or the budget is spent.

        ``on_backoff(attempt, delay)`` fires between attempts — this is where
        callers consume the delay (virtual time on the simulator, a bounded
        wall-clock sleep on the process backend).  Raises
        :class:`SupervisionExhausted` (chained to the last failure) once
        ``max_attempts`` attempts have failed.
        """
        backoffs: List[float] = []
        attempt = 0
        while True:
            attempt += 1
            try:
                result = action(attempt)
            except retry_on as exc:
                if attempt >= self.policy.max_attempts:
                    self.reports.append(
                        SupervisionReport(label, attempt, False, tuple(backoffs))
                    )
                    raise SupervisionExhausted(label, attempt) from exc
                delay = self.backoff(label, attempt)
                backoffs.append(delay)
                if on_backoff is not None:
                    on_backoff(attempt, delay)
                continue
            self.reports.append(SupervisionReport(label, attempt, True, tuple(backoffs)))
            return result

    def stats(self) -> dict:
        """Aggregate counters for rows and probes."""
        retries = sum(report.attempts - 1 for report in self.reports)
        exhausted = sum(1 for report in self.reports if not report.succeeded)
        return {
            "supervised_actions": len(self.reports),
            "supervised_retries": retries,
            "supervised_exhausted": exhausted,
        }
