"""The network interposer: link faults in the simulator send path.

The interposer sits *below* the :class:`~repro.net.transport.Transport`
surface, at the link layer the paper's reliable FIFO channels are built on.
Nodes never see it.  Each remote send consults the plan's decision streams,
keyed by ``(src, dst, per-channel message index)`` — the index advances
identically on both backends because sends happen in the same virtual-time
total order — and the faults surface only in ways the reliable transport
masks:

* **Drops** — a lost wire copy costs one retransmit timeout per lost copy
  (geometric, bounded by ``max_retransmits``); the message still arrives.
* **Delay jitter** — extra latency applied *before* the per-channel FIFO
  watermark clamp, so each channel stays in order while traffic across
  channels genuinely reorders.
* **Duplicates** — a ghost wire copy is enqueued as a real event and
  suppressed at delivery by the receiver's sequence-number dedup: pure
  accounting that never advances the clock or invokes a handler.

Because none of this loses or reorders channel state, a chaos run must
converge **bit-identical** to its fault-free reference — the invariant the
parity harness (:mod:`repro.chaos.parity`) gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple as PyTuple

from repro.chaos.plan import (
    TAG_DELAY,
    TAG_DROP,
    TAG_DUP,
    TAG_DUP_DELAY,
    TAG_JITTER,
    ChaosPlan,
)
from repro.net.message import Message


@dataclass
class ChaosStats:
    """Accounting for every link fault the interposer injected."""

    messages_seen: int = 0
    dropped_copies: int = 0
    duplicates_injected: int = 0
    duplicates_suppressed: int = 0
    delayed_messages: int = 0
    extra_delay_total: float = 0.0
    max_extra_delay: float = 0.0
    duplicate_bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "chaos_messages_seen": self.messages_seen,
            "chaos_dropped_copies": self.dropped_copies,
            "chaos_duplicates_injected": self.duplicates_injected,
            "chaos_duplicates_suppressed": self.duplicates_suppressed,
            "chaos_delayed_messages": self.delayed_messages,
            "chaos_extra_delay_total_s": self.extra_delay_total,
            "chaos_max_extra_delay_s": self.max_extra_delay,
            "chaos_duplicate_bytes": self.duplicate_bytes,
        }


@dataclass
class ChaosInterposer:
    """Applies a plan's link faults to every remote send.

    Installed via :meth:`attach`; the simulator calls :meth:`apply` once per
    remote message (after latency, before the FIFO clamp) and :meth:`on_ghost`
    once per suppressed duplicate delivery.
    """

    plan: ChaosPlan
    stats: ChaosStats = field(default_factory=ChaosStats)

    def __post_init__(self) -> None:
        self._network = None
        #: Per-channel message index: the decision-stream key that makes every
        #: fault a pure function of the message's position on its channel.
        self._channel_index: Dict[PyTuple[int, int], int] = {}

    def attach(self, network) -> "ChaosInterposer":
        """Install on a :class:`~repro.net.simulator.SimulatedNetwork`."""
        network.install_chaos(self)
        self._network = network
        return self

    def apply(self, message: Message, sent_at: float, arrival: float) -> float:
        """Return the chaos-adjusted arrival time for one remote message.

        May additionally enqueue a ghost duplicate on the network.  Called
        before the real message is pushed, in both backends, so ghost events
        consume sequence numbers in the same order everywhere.
        """
        spec = self.plan.link
        if spec is None:
            return arrival
        src = message.src
        dst = message.dst
        key = (src, dst)
        index = self._channel_index.get(key, 0)
        self._channel_index[key] = index + 1
        stats = self.stats
        stats.messages_seen += 1
        plan_unit = self.plan.unit
        extra = 0.0
        dropped = 0
        if spec.drop_prob > 0.0:
            # Each lost wire copy costs one retransmit timeout; the channel
            # gives up losing copies after max_retransmits and the final copy
            # always gets through (the transport is reliable by construction).
            for attempt in range(spec.max_retransmits):
                if plan_unit(TAG_DROP, src, dst, index, attempt) < spec.drop_prob:
                    dropped += 1
                    extra += spec.retransmit_timeout
                else:
                    break
            stats.dropped_copies += dropped
        if spec.delay_prob > 0.0 and plan_unit(TAG_DELAY, src, dst, index) < spec.delay_prob:
            extra += spec.max_extra_delay * plan_unit(TAG_JITTER, src, dst, index)
            stats.delayed_messages += 1
        if spec.dup_prob > 0.0 and plan_unit(TAG_DUP, src, dst, index) < spec.dup_prob:
            ghost_delay = spec.max_extra_delay * plan_unit(TAG_DUP_DELAY, src, dst, index)
            self._network._enqueue_ghost(message, arrival + extra + ghost_delay)
            stats.duplicates_injected += 1
            stats.duplicate_bytes += message.size_bytes
        if extra > 0.0:
            stats.extra_delay_total += extra
            if extra > stats.max_extra_delay:
                stats.max_extra_delay = extra
            tracer = self._network.tracer
            if tracer is not None:
                tracer.instant(
                    src,
                    "link-chaos",
                    "chaos",
                    sim_ts=sent_at,
                    args={
                        "dst": dst,
                        "msg": message.message_id,
                        "dropped_copies": dropped,
                        "extra_delay": extra,
                    },
                )
        return arrival + extra

    def on_ghost(self, message: Message, now: float) -> None:
        """A duplicate wire copy reached the receiver and was deduplicated."""
        self.stats.duplicates_suppressed += 1
        tracer = self._network.tracer if self._network is not None else None
        if tracer is not None:
            tracer.instant(
                message.dst,
                "duplicate-suppressed",
                "chaos",
                sim_ts=now,
                args={"src": message.src, "msg": message.message_id},
            )
