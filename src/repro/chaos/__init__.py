"""The chaos plane: deterministic, seeded fault injection across the stack.

Everything here is a pure function of ``(seed, stream tag, identifiers)`` —
no wall clocks, no shared RNG state — so any chaos run can be replayed
bit-for-bit, on either backend, and compared against a fault-free reference
(:mod:`repro.chaos.parity`).

The package splits into:

* :mod:`repro.chaos.plan` — the declarative :class:`ChaosPlan` (link faults,
  crash storms, worker kills, recovery/respawn dooming, scaling storms) and
  the counter-based ``mix64`` randomness it draws from;
* :mod:`repro.chaos.interposer` — the network interposer that turns link
  specs into per-message drop/duplicate/reorder/extra-delay, masked by the
  reliable FIFO transport so converged results stay bit-identical;
* :mod:`repro.chaos.supervisor` — bounded retry with exponential backoff and
  deterministic jitter, wrapped around recovery and worker respawn;
* :mod:`repro.chaos.executor` — the elastic × fault-tolerant composition
  with supervised recovery and graceful degradation (imported as a submodule
  to keep this package import-light);
* :mod:`repro.chaos.parity` — the chaos-vs-fault-free verification harness
  (also a submodule import).
"""

from repro.chaos.interposer import ChaosInterposer, ChaosStats
from repro.chaos.plan import (
    PROFILES,
    ChaosPlan,
    CrashStormSpec,
    LinkChaosSpec,
    RecoveryFaultSpec,
    ScalingStormSpec,
    WorkerKillSpec,
    mix64,
    unit,
)
from repro.chaos.supervisor import (
    ChaosInjectedFailure,
    RetryPolicy,
    SupervisionExhausted,
    SupervisionReport,
    Supervisor,
)

__all__ = [
    "PROFILES",
    "ChaosInjectedFailure",
    "ChaosInterposer",
    "ChaosPlan",
    "ChaosStats",
    "CrashStormSpec",
    "LinkChaosSpec",
    "RecoveryFaultSpec",
    "RetryPolicy",
    "ScalingStormSpec",
    "SupervisionExhausted",
    "SupervisionReport",
    "Supervisor",
    "WorkerKillSpec",
    "mix64",
    "unit",
]
