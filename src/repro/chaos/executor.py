"""The chaos composition: durable, killable nodes that also migrate.

:class:`ChaosExecutor` is the ROADMAP's *elastic × fault-tolerant
composition*: it multiply-inherits :class:`FaultTolerantExecutor` (WAL,
checkpoints, crash/recover) and :class:`ElasticExecutor` (consistent-hash
placement, live migration) over the cooperative ``__init__`` chain, and makes
the two subsystems share one write-ahead log safely:

* every node — founding member or admitted mid-run — is fronted by a
  :class:`~repro.fault.executor.DurableNodeRuntime` (the
  :meth:`_register_node` hook);
* every migration ends with a **barrier checkpoint**: migrated state moves
  via the checkpoint codec, *not* through the logged delivery path, so
  without the barrier a crash after a migration would replay a WAL suffix
  against pre-migration placement and lose the moved slices;
* placement changes are **deferred** (bounded) while any node is down:
  migration extracts from nodes' in-memory state, which a crashed node does
  not have.

Recovery is supervised: :class:`SupervisedRecoveryManager` retries a failing
recovery with exponential backoff (consumed as virtual time on the node)
under a bounded budget, and on exhaustion the node is **degraded** instead of
the run crashing — the executor serves its last converged view snapshot
tagged with explicit :class:`StalenessInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Union

from repro.chaos.interposer import ChaosInterposer
from repro.chaos.plan import ChaosPlan
from repro.chaos.supervisor import (
    ChaosInjectedFailure,
    RetryPolicy,
    SupervisionExhausted,
    Supervisor,
)
from repro.data.batch import BatchPolicy
from repro.data.tuples import Tuple
from repro.engine.plan import RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy
from repro.fault.executor import (
    DurableNodeRuntime,
    FaultToleranceError,
    FaultTolerantExecutor,
)
from repro.fault.recovery import RecoveryManager, RecoveryPolicy
from repro.net.latency import ClusterLatencyModel, LatencyModel
from repro.placement.balancer import LoadAwareRebalancer
from repro.placement.elastic import ElasticExecutor
from repro.placement.map import PlacementError

#: How often a placement change may be re-deferred because nodes are down
#: before the executor gives up.  Bounded on purpose: a degraded node never
#: comes back, and an unbounded deferral loop would spin forever.
MAX_PLACEMENT_DEFERRALS = 25

#: Base virtual-time delay between deferral retries (grows linearly).
DEFERRAL_DELAY = 0.05


@dataclass(frozen=True)
class StalenessInfo:
    """Why (and since when) a node's view partition is served stale."""

    node: int
    since: float  # virtual time the node was degraded
    phase: str  # last phase whose converged snapshot backs the stale view
    reason: str


class SupervisedRecoveryManager(RecoveryManager):
    """A :class:`RecoveryManager` whose recoveries run under a supervisor.

    The chaos plan may doom a node's first N recovery attempts; each doomed
    attempt performs a *partial* restore+replay (the node dying mid-replay)
    before failing, and the retry is safe because recovery always begins with
    ``rebuild_node`` — the partial state is discarded wholesale.  Backoff
    between attempts is consumed as virtual time on the recovering node.  An
    exhausted budget degrades the node instead of raising into the run loop.
    """

    def __init__(
        self,
        executor: "ChaosExecutor",
        policy: RecoveryPolicy,
        supervisor: Supervisor,
        chaos_plan: Optional[ChaosPlan] = None,
    ) -> None:
        super().__init__(executor, policy)
        self.supervisor = supervisor
        self.chaos_plan = chaos_plan

    def on_recover(self, node_id: int, now: float) -> None:
        executor = self.executor
        network = executor.network
        forced = (
            self.chaos_plan.forced_recovery_failures(node_id)
            if self.chaos_plan is not None
            else 0
        )

        def attempt(attempt_no: int) -> None:
            if attempt_no <= forced:
                if self.policy is RecoveryPolicy.CHECKPOINT_REPLAY:
                    # The node dies again mid-replay: restore the checkpoint,
                    # replay a truncated suffix, abandon the rest.
                    self._restore_and_replay(node_id, now, replay_limit=attempt_no)
                    self.recovery_log[-1]["aborted_mid_replay"] = True
                raise ChaosInjectedFailure(
                    f"injected recovery failure for node {node_id} "
                    f"(attempt {attempt_no} of {forced} doomed)"
                )
            RecoveryManager.on_recover(self, node_id, now)

        def consume_backoff(attempt_no: int, delay: float) -> None:
            network.postpone_node(node_id, delay)

        try:
            self.supervisor.run(f"recover:{node_id}", attempt, on_backoff=consume_backoff)
        except SupervisionExhausted:
            network.abandon_recovery(node_id)
            executor.mark_degraded(node_id, now)


class ChaosExecutor(FaultTolerantExecutor, ElasticExecutor):
    """Durable + killable + elastic, under one seeded chaos plan."""

    def __init__(
        self,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        chaos_plan: Optional[ChaosPlan] = None,
        supervisor_policy: Optional[RetryPolicy] = None,
        **kwargs: object,
    ) -> None:
        self.chaos_plan = chaos_plan if chaos_plan is not None else ChaosPlan(name="none")
        super().__init__(plan, strategy, **kwargs)
        self.supervisor = Supervisor(
            policy=supervisor_policy or RetryPolicy(), seed=self.chaos_plan.seed
        )
        # Swap the plain recovery manager (installed by the fault-tolerant
        # __init__) for the supervised one.
        self.recovery = SupervisedRecoveryManager(
            self, self.recovery_policy, self.supervisor, self.chaos_plan
        )
        self.network.set_fault_listener(self.recovery)
        self.interposer: Optional[ChaosInterposer] = None
        if self.chaos_plan.link is not None and self.chaos_plan.link.active:
            self.interposer = ChaosInterposer(self.chaos_plan).attach(self.network)
        #: Nodes degraded to stale-view service, with why/since metadata.
        self._degraded: Dict[int, StalenessInfo] = {}
        #: Per-node view snapshot from the last phase that converged while
        #: the node was live — what a degraded node serves.
        self._converged_views: Dict[int, frozenset] = {}
        self._last_phase_label = "init"
        self._deferrals: Dict[str, int] = {}

    # -- durable membership ---------------------------------------------------------
    def _register_node(self, node_id: int, node) -> None:
        """A node admitted mid-run gets the same durability shim as founders."""
        if node_id != len(self.runtimes):
            raise FaultToleranceError(
                f"runtime list out of step: node {node_id} vs {len(self.runtimes)} runtimes"
            )
        runtime = DurableNodeRuntime(
            node, self.wal, self.checkpoints, self.checkpoint_interval
        )
        self.runtimes.append(runtime)
        self.network.register(node_id, runtime.handle)

    def _migrate(self, now: float):
        report = super()._migrate(now)
        # Migration barrier checkpoint: migrated slices travel over the
        # checkpoint codec, not the WAL-logged delivery path.  Checkpointing
        # every live node here pins the post-migration state durably, so a
        # later crash replays a WAL suffix that is consistent with the new
        # placement instead of resurrecting pre-migration ownership.
        self.checkpoint_all()
        return report

    # -- placement changes deferred while nodes are down ----------------------------
    def _defer_while_down(self, label: str, retry, now: Optional[float]) -> bool:
        """Defer a placement change while any node is down; bounded.

        Migration extracts slices from nodes' in-memory state; a crashed node
        has none to give.  The change is re-scheduled as a control event with
        a linearly growing delay, up to :data:`MAX_PLACEMENT_DEFERRALS` tries
        (a degraded node never recovers, so unbounded waiting would hang).
        """
        down = self.network.down_nodes()
        if not down:
            self._deferrals.pop(label, None)
            return False
        count = self._deferrals.get(label, 0) + 1
        if count > MAX_PLACEMENT_DEFERRALS:
            raise PlacementError(
                f"placement change {label!r} deferred {count - 1} times while "
                f"nodes {list(down)} stayed down; giving up"
            )
        self._deferrals[label] = count
        at_time = (self.network.now if now is None else now) + DEFERRAL_DELAY * count
        self.network.schedule_control(retry, at_time)
        return True

    def add_node(self, weight: Optional[int] = None, now: Optional[float] = None) -> int:
        if self._defer_while_down(
            "add-node", lambda t: self.add_node(weight=weight, now=t), now
        ):
            return -1
        return super().add_node(weight=weight, now=now)

    def remove_node(self, node_id: int, now: Optional[float] = None) -> None:
        if self._defer_while_down(
            f"remove-node:{node_id}", lambda t: self.remove_node(node_id, now=t), now
        ):
            return
        super().remove_node(node_id, now=now)

    def rebalance(self, now: Optional[float] = None):
        if self._defer_while_down("rebalance", lambda t: self.rebalance(now=t), now):
            return None
        return super().rebalance(now=now)

    # -- graceful degradation ---------------------------------------------------------
    def mark_degraded(self, node_id: int, now: float) -> None:
        """Demote ``node_id`` to stale-view service (called on supervision
        exhaustion).  The run keeps going; reads of the node's partition come
        from its last converged snapshot, tagged with staleness metadata."""
        info = StalenessInfo(
            node=node_id,
            since=now,
            phase=self._last_phase_label,
            reason="recovery retry budget exhausted",
        )
        self._degraded[node_id] = info
        tracer = self.network.tracer
        if tracer is not None:
            tracer.instant(
                node_id,
                "degraded",
                "chaos",
                sim_ts=now,
                args={"stale_as_of_phase": info.phase, "reason": info.reason},
            )
        from repro.obs.flight import maybe_dump_flight

        maybe_dump_flight(f"node {node_id} degraded: {info.reason}")

    @property
    def degraded_nodes(self) -> Dict[int, StalenessInfo]:
        """Degraded nodes and their staleness metadata (empty when healthy)."""
        return dict(self._degraded)

    def _run_phase(self, label, *args, **kwargs):
        phase = super()._run_phase(label, *args, **kwargs)
        self._snapshot_converged(label)
        return phase

    def _snapshot_converged(self, label: str) -> None:
        """Record every live node's converged partition (degraded fallback)."""
        for node in self.nodes:
            node_id = node.node_id
            if self.network.is_down(node_id) or node_id in self._degraded:
                continue
            self._converged_views[node_id] = frozenset(node.view_tuples())
        self._last_phase_label = label

    def view(self) -> Set[Tuple]:
        """The materialised view; degraded partitions come from their last
        converged snapshot instead of the (lost) in-memory node state."""
        if not self._degraded:
            return super().view()
        result: Set[Tuple] = set()
        for node in self.nodes:
            if node.node_id in self._degraded:
                result.update(self._converged_views.get(node.node_id, frozenset()))
            else:
                result.update(node.view_tuples())
        return result

    def view_with_staleness(self):
        """``(view, staleness)``: the served view plus per-node
        :class:`StalenessInfo` for every partition answered stale."""
        return self.view(), dict(self._degraded)

    # -- diagnostics ------------------------------------------------------------------
    def chaos_stats(self) -> Dict[str, object]:
        """Everything the chaos plane did to this run, flattened for rows."""
        stats: Dict[str, object] = {
            "chaos_profile": self.chaos_plan.name,
            "chaos_seed": self.chaos_plan.seed,
            "degraded_nodes": len(self._degraded),
        }
        if self.interposer is not None:
            stats.update(self.interposer.stats.as_dict())
        stats.update(self.supervisor.stats())
        return stats


def chaos_executor(
    plan: RecursiveViewPlan,
    strategy: Union[str, ExecutionStrategy],
    chaos_plan: Optional[ChaosPlan] = None,
    supervisor_policy: Optional[RetryPolicy] = None,
    recovery_policy: Union[str, RecoveryPolicy] = RecoveryPolicy.CHECKPOINT_REPLAY,
    checkpoint_interval: int = 25,
    node_count: int = 12,
    virtual_nodes: int = 64,
    rebalancer: Optional[LoadAwareRebalancer] = None,
    latency_model: Optional[LatencyModel] = None,
    processing_cost: float = 0.00002,
    max_events: int = 5_000_000,
    max_wall_seconds: Optional[float] = None,
    experiment: str = "chaos",
    batch_policy: Optional[BatchPolicy] = None,
) -> ChaosExecutor:
    """Convenience constructor mirroring the fault/elastic builders."""
    if isinstance(strategy, str):
        strategy = ExecutionStrategy.by_name(strategy)
    if latency_model is None:
        latency_model = ClusterLatencyModel(primary_cluster_size=min(node_count, 16))
    return ChaosExecutor(
        plan=plan,
        strategy=strategy,
        chaos_plan=chaos_plan,
        supervisor_policy=supervisor_policy,
        recovery_policy=recovery_policy,
        checkpoint_interval=checkpoint_interval,
        node_count=node_count,
        virtual_nodes=virtual_nodes,
        rebalancer=rebalancer,
        latency_model=latency_model,
        processing_cost=processing_cost,
        max_events=max_events,
        max_wall_seconds=max_wall_seconds,
        experiment=experiment,
        batch_policy=batch_policy,
    )
