"""Span-based tracing of the distributed engine (wall + simulated clocks).

One :class:`Tracer` records the full batch lifecycle as Chrome trace events —
inject, route, admit, operator work, kernel time, GC pauses, ship and
delivery — on **per-node tracks**, with flow events linking a message's send
to its delivery and instant events for the control plane (crash, recover,
placement changes, migrations).  The export side
(:mod:`repro.obs.export`) renders the event list as Chrome trace-event JSON
(loadable in Perfetto or ``about://tracing``) or as a JSONL structured log.

**Track layout.**  Every processor node is one trace *process* (``pid`` =
node id) with three lanes:

* ``pipeline`` (tid 1) — delivery spans and their nested admit / routing /
  operator children, exactly the four phase-time buckets the per-phase
  telemetry reports (``net``/``routing``/``operator`` categories);
* ``kernel`` (tid 2) — one aggregate span per delivery covering the wall
  time the delivery spent inside the BDD kernel loops (category ``kernel``);
* ``gc`` (tid 3) — annotation-kernel collection passes that fired while this
  node's handler was running (category ``gc``).

Three synthetic processes carry everything that is not a node:
``cluster-control`` (placement changes, migrations, injected workload),
``bdd-kernel`` (GC passes outside any handler) and ``harness`` (experiment
phases and per-run markers).

**Zero overhead off.**  The disabled tracer is the :data:`NULL_TRACER` null
object; instrumented hot paths hold ``None`` instead of it and pay exactly
one pointer comparison per delivered batch (see
:meth:`repro.net.simulator.SimulatedNetwork.set_tracer` and
:class:`repro.engine.runtime.ProcessorNode`).  ``benchmarks/test_obs_overhead.py``
gates this.

**Clocks.**  The primary timestamp of every event is the wall clock
(microseconds since the tracer was created — what Perfetto lays out), and the
simulated clock rides along in every event's ``args`` as ``sim``, so a trace
answers both "where did the wall time go" and "when in virtual time did this
happen".
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

#: Per-node lanes (Chrome ``tid``).
PIPELINE_TID = 1
KERNEL_TID = 2
GC_TID = 3

#: Synthetic processes (Chrome ``pid``) for non-node tracks.  Far above any
#: plausible node id so the two namespaces never collide.
CONTROL_PID = 1 << 20
KERNEL_PID = (1 << 20) + 1
HARNESS_PID = (1 << 20) + 2

_SYNTHETIC_NAMES = {
    CONTROL_PID: "cluster-control",
    KERNEL_PID: "bdd-kernel",
    HARNESS_PID: "harness",
}

_LANE_NAMES = {PIPELINE_TID: "pipeline", KERNEL_TID: "kernel", GC_TID: "gc"}


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths additionally cache ``None`` instead of this object so the
    disabled cost is a pointer comparison, not even a method call; the null
    object exists so *cold* call sites (GC passes, control-plane events,
    phase boundaries) can call the tracer unconditionally.
    """

    enabled = False

    def begin(self, pid, name, cat, tid=PIPELINE_TID, sim_ts=None, args=None):
        return None

    def end(self, span, args=None, sim_ts=None):
        return None

    def instant(self, pid, name, cat, tid=PIPELINE_TID, sim_ts=None, args=None):
        return None

    def flow_start(self, pid, sim_ts=None):
        return None

    def flow_finish(self, flow_id, pid):
        return None

    def kernel_slice(self, pid, seconds, sim_ts=None, name="kernel"):
        return None

    def set_node_context(self, pid):
        return None

    def clear_node_context(self):
        return None

    def context_pid(self, default):
        return default

    def finish(self):
        return None


#: The process-wide disabled tracer (shared, stateless).
NULL_TRACER = NullTracer()

#: The active tracer; :func:`install_tracer` swaps it, everything else reads it.
_ACTIVE: Any = NULL_TRACER


def install_tracer(tracer: Optional["Tracer"]) -> Any:
    """Install ``tracer`` as the process-wide active tracer; returns the previous one.

    Passing ``None`` restores the disabled :data:`NULL_TRACER`.  Executors
    pick the active tracer up at construction, so install it *before*
    building the executor whose run should be traced.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


def current_tracer() -> Any:
    """The process-wide active tracer (the null object when tracing is off)."""
    return _ACTIVE


class Tracer:
    """Records spans, instants and flow links as Chrome trace events.

    Spans are *complete* events (``ph: "X"``): :meth:`begin` appends the
    event and returns it as the token :meth:`end` later stamps the duration
    onto — two timestamps and two dictionary writes per span, cheap enough
    for per-delivery use.  Per-track open-span stacks are maintained so an
    export can close dangling spans (:meth:`finish`) and so the nesting
    property ("a track's spans form a proper tree") is testable.
    """

    enabled = True

    def __init__(self) -> None:
        self._t0 = perf_counter()
        #: Flat chrome-format event list (metadata events added at export).
        self.events: List[Dict[str, Any]] = []
        self._open: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
        self._flow_ids = itertools.count(1)
        self._tracks: set = set()
        #: Node whose handler is currently running (for attributing GC passes
        #: fired from inside kernel operations to the right node track).
        self._context_pid: Optional[int] = None
        #: Per-pid display-name overrides (process backend: "node 3 [pid 71002]").
        self._process_labels: Dict[int, str] = {}

    # -- clock -------------------------------------------------------------------
    def _now_us(self) -> float:
        return (perf_counter() - self._t0) * 1e6

    # -- spans -------------------------------------------------------------------
    def begin(
        self,
        pid: int,
        name: str,
        cat: str,
        tid: int = PIPELINE_TID,
        sim_ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Open a span; returns the event token to pass to :meth:`end`."""
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": cat,
            "ts": self._now_us(),
            "dur": 0.0,
        }
        if sim_ts is not None or args:
            event_args = dict(args) if args else {}
            if sim_ts is not None:
                event_args["sim"] = sim_ts
            event["args"] = event_args
        self._tracks.add((pid, tid))
        self.events.append(event)
        self._open.setdefault((pid, tid), []).append(event)
        return event

    def end(
        self,
        span: Optional[Dict[str, Any]],
        args: Optional[Dict[str, Any]] = None,
        sim_ts: Optional[float] = None,
    ) -> None:
        """Close a span opened by :meth:`begin` (None tokens are ignored)."""
        if span is None:
            return
        span["dur"] = self._now_us() - span["ts"]
        if args or sim_ts is not None:
            event_args = span.setdefault("args", {})
            if args:
                event_args.update(args)
            if sim_ts is not None:
                event_args["sim_end"] = sim_ts
        stack = self._open.get((span["pid"], span["tid"]))
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # defensive: out-of-order close
            stack.remove(span)

    def instant(
        self,
        pid: int,
        name: str,
        cat: str,
        tid: int = PIPELINE_TID,
        sim_ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a point-in-time event (crash, recover, placement change...)."""
        event: Dict[str, Any] = {
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": cat,
            "ts": self._now_us(),
        }
        if sim_ts is not None or args:
            event_args = dict(args) if args else {}
            if sim_ts is not None:
                event_args["sim"] = sim_ts
            event["args"] = event_args
        self._tracks.add((pid, tid))
        self.events.append(event)

    # -- flows (message causality) --------------------------------------------------
    def flow_start(self, pid: int, sim_ts: Optional[float] = None) -> int:
        """Open a flow arrow at the sender (inside the sender's current span)."""
        flow_id = next(self._flow_ids)
        event: Dict[str, Any] = {
            "ph": "s",
            "id": flow_id,
            "pid": pid,
            "tid": PIPELINE_TID,
            "name": "msg",
            "cat": "flow",
            "ts": self._now_us(),
        }
        if sim_ts is not None:
            event["args"] = {"sim": sim_ts}
        self._tracks.add((pid, PIPELINE_TID))
        self.events.append(event)
        return flow_id

    def flow_finish(self, flow_id: Optional[int], pid: int) -> None:
        """Land a flow arrow at the receiver (inside the delivery span)."""
        if flow_id is None:
            return
        self.events.append(
            {
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": pid,
                "tid": PIPELINE_TID,
                "name": "msg",
                "cat": "flow",
                "ts": self._now_us(),
            }
        )

    # -- aggregate kernel lane ---------------------------------------------------------
    def kernel_slice(
        self, pid: int, seconds: float, sim_ts: Optional[float] = None, name: str = "kernel"
    ) -> None:
        """One aggregate kernel-time span for the delivery that just finished.

        Placed on the node's ``kernel`` lane covering the last ``seconds`` of
        wall clock: the kernel loops' cumulative share of the delivery, ending
        now.  Kept on its own lane because the kernel time interleaves with
        the operator spans on the pipeline lane (it accrues *inside* them).
        """
        if seconds <= 0.0:
            return
        now = self._now_us()
        duration = seconds * 1e6
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": pid,
            "tid": KERNEL_TID,
            "name": name,
            "cat": "kernel",
            "ts": now - duration,
            "dur": duration,
        }
        if sim_ts is not None:
            event["args"] = {"sim": sim_ts}
        self._tracks.add((pid, KERNEL_TID))
        self.events.append(event)

    # -- node context (GC attribution) ------------------------------------------------
    def set_node_context(self, pid: int) -> None:
        """Mark ``pid`` as the node whose handler is currently executing."""
        self._context_pid = pid

    def clear_node_context(self) -> None:
        self._context_pid = None

    def context_pid(self, default: int) -> int:
        """The current node context, or ``default`` outside any handler."""
        return self._context_pid if self._context_pid is not None else default

    # -- multi-process merge --------------------------------------------------------
    def label_process(self, pid: int, label: str) -> None:
        """Override the exported display name of track ``pid``."""
        self._process_labels[pid] = label

    def absorb(
        self,
        events: List[Dict[str, Any]],
        tracks,
        t0: float,
        pid_offset: int = 0,
        label: Optional[str] = None,
    ) -> None:
        """Fold a worker tracer's drained events into this (coordinator) tracer.

        ``t0`` is the worker tracer's ``perf_counter`` origin; both sides of a
        process pool read ``CLOCK_MONOTONIC``, so shifting every timestamp by
        ``(t0 - self._t0)`` lands the worker's spans on the coordinator's wall
        clock.  Synthetic pids (>= :data:`CONTROL_PID` — the shared
        ``bdd-kernel``/``cluster-control`` lanes) are remapped by
        ``pid_offset`` so two workers' GC spans never interleave on one track
        and break its nesting tree; node pids are globally unique already and
        pass through untouched.  ``label`` names the remapped synthetic tracks
        (e.g. ``"bdd-kernel [worker 1, pid 71002]"``).

        Flow ids get the same treatment: every worker tracer counts its own
        flows from 1, so two workers' arrows would collide in the merged
        timeline (Perfetto pairs ``s``/``f`` events by id — a collision draws
        arrows between unrelated deliveries).  Shifting each worker's ids by
        ``pid_offset << 32`` keeps them disjoint from every other worker's
        and from the coordinator's own counter.
        """
        offset_us = (t0 - self._t0) * 1e6
        flow_offset = pid_offset << 32
        remapped = {}
        for pid, tid in tracks:
            new_pid = pid + pid_offset if pid >= CONTROL_PID else pid
            remapped[pid] = new_pid
            self._tracks.add((new_pid, tid))
            if label is not None:
                base = _SYNTHETIC_NAMES.get(pid) if pid >= CONTROL_PID else f"node {pid}"
                self._process_labels.setdefault(new_pid, f"{base} [{label}]")
        for event in events:
            pid = event["pid"]
            event["pid"] = remapped.get(pid, pid + pid_offset if pid >= CONTROL_PID else pid)
            event["ts"] += offset_us
            if flow_offset and event["ph"] in ("s", "f"):
                event["id"] += flow_offset
            self.events.append(event)

    # -- export ------------------------------------------------------------------------
    def open_span_count(self) -> int:
        """Spans currently open (should be 0 at any quiescent point)."""
        return sum(len(stack) for stack in self._open.values())

    def finish(self) -> None:
        """Close any dangling spans (defensive; a clean run leaves none)."""
        for stack in self._open.values():
            while stack:
                self.end(stack[-1])

    def chrome_events(self) -> List[Dict[str, Any]]:
        """The event list plus track-naming metadata, ready for JSON export."""
        metadata: List[Dict[str, Any]] = []
        pids = sorted({pid for pid, _ in self._tracks})
        for pid in pids:
            name = self._process_labels.get(pid) or _SYNTHETIC_NAMES.get(pid, f"node {pid}")
            metadata.append(
                {"ph": "M", "pid": pid, "tid": 0, "name": "process_name", "args": {"name": name}}
            )
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )
        for pid, tid in sorted(self._tracks):
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": _LANE_NAMES.get(tid, f"lane {tid}")},
                }
            )
        return metadata + self.events

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events, {len(self._tracks)} tracks)"
