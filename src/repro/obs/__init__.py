"""Unified observability: span tracing, metrics registry, Perfetto export.

See :mod:`repro.obs.trace` for the tracer and track model,
:mod:`repro.obs.metrics` for the counter/gauge/histogram registry and probe
API, and :mod:`repro.obs.export` for the Chrome trace-event / JSONL writers
and validators.
"""

from repro.obs.metrics import (
    MetricsLog,
    MetricsRegistry,
    current_metrics_log,
    install_metrics_log,
)
from repro.obs.trace import (
    CONTROL_PID,
    HARNESS_PID,
    KERNEL_PID,
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
)

__all__ = [
    "CONTROL_PID",
    "HARNESS_PID",
    "KERNEL_PID",
    "NULL_TRACER",
    "MetricsLog",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "current_metrics_log",
    "current_tracer",
    "install_metrics_log",
    "install_tracer",
]
