"""Unified observability: span tracing, metrics registry, Perfetto export.

See :mod:`repro.obs.trace` for the tracer and track model,
:mod:`repro.obs.metrics` for the counter/gauge/histogram registry and probe
API, :mod:`repro.obs.export` for the Chrome trace-event / JSONL writers and
validators, :mod:`repro.obs.explain` for the provenance-native explain engine
and :mod:`repro.obs.flight` for the always-on bounded flight recorder.
"""

from repro.obs.explain import (
    ExplainEngine,
    Explanation,
    inject_explain_flows,
    parse_view_tuple,
)
from repro.obs.flight import FlightRecorder, maybe_dump_flight
from repro.obs.metrics import (
    MetricsLog,
    MetricsRegistry,
    current_metrics_log,
    install_metrics_log,
)
from repro.obs.trace import (
    CONTROL_PID,
    HARNESS_PID,
    KERNEL_PID,
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
)

__all__ = [
    "CONTROL_PID",
    "HARNESS_PID",
    "KERNEL_PID",
    "NULL_TRACER",
    "ExplainEngine",
    "Explanation",
    "FlightRecorder",
    "MetricsLog",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "current_metrics_log",
    "current_tracer",
    "inject_explain_flows",
    "install_metrics_log",
    "install_tracer",
    "maybe_dump_flight",
    "parse_view_tuple",
]
