"""The explain engine: decode *why* a view tuple holds, from its provenance.

The paper's absorption provenance already records, inside every derived
tuple's BDD annotation, the exact base tuples each derivation rests on.  This
module surfaces that to an operator: given a view tuple (``"reachable(a, b)"``
on the CLI, a :class:`~repro.data.tuples.Tuple` on the API), it

1. pulls the tuple's annotation from whichever node owns it and reduces it to
   the **minimal derivation products** via the antichain machinery of
   :func:`repro.provenance.tracker.canonical_annotation` — so the answer is
   identical whether the run was in-process or sharded across worker
   processes with private BDD managers;
2. resolves every base variable in every product back to its origin tuple and
   the node that owns it (the engine names variables
   ``((relation, *values), version)``, and ownership is a partitioner
   lookup);
3. when the run was traced, correlates the involved nodes with the tracer's
   flow events to reconstruct the cross-node message path that delivered the
   derivation.

Three renderings: a text tree (:meth:`Explanation.render_text`), stable JSON
(:meth:`Explanation.as_json` — deterministic ordering, used by the
sim-vs-process equality tests), and Perfetto flow arrows injected into an
existing ``--trace`` file (:func:`inject_explain_flows`) so the derivation is
*visible* in the timeline: one arrow per supporting base tuple, from its
owner's track to the view owner's track.

Stores that cannot enumerate products (set semantics under DRed, counting
vectors) still answer the membership half of the question; ``products`` is
``None`` and the renderings say so instead of pretending.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.data.tuples import Tuple
from repro.obs.export import load_trace_events
from repro.provenance.tracker import format_base_key

_TARGET_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*\(\s*(.*?)\s*\)\s*$")
_INT_RE = re.compile(r"^[+-]?\d+$")

#: Flow ids injected by :func:`inject_explain_flows` start here — far above
#: both a tracer's own counter and the worker-merge remap stride
#: (``pid_offset << 32``), so injected arrows can never collide with recorded
#: ones.
_INJECTED_FLOW_BASE = 1 << 40

#: Keep at most this many reconstructed message-path hops (the tail of the
#: run is what explains the *current* derivation).
_MAX_PATH_HOPS = 32


def parse_view_tuple(plan, target) -> Tuple:
    """Parse ``"reachable(a, b)"`` into a view tuple of ``plan``'s result schema.

    Accepts a ready :class:`Tuple` unchanged.  Values are matched textually:
    surrounding quotes are stripped and purely numeric arguments are coerced
    to ``int`` (the schemas used by the figures carry either string node names
    or integer ids).  Raises :class:`ValueError` on anything that does not
    name a ``plan.result_schema`` tuple.
    """
    if isinstance(target, Tuple):
        return target
    schema = plan.result_schema
    match = _TARGET_RE.match(str(target))
    if not match:
        raise ValueError(
            f"cannot parse view tuple {target!r}; expected "
            f"{schema.relation}({', '.join(schema.attributes)})"
        )
    relation, arg_text = match.groups()
    if relation != schema.relation:
        raise ValueError(
            f"plan {plan.name!r} materialises {schema.relation!r}, not {relation!r}"
        )
    values: List[Any] = []
    if arg_text:
        for raw in arg_text.split(","):
            raw = raw.strip()
            if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
                raw = raw[1:-1]
            values.append(int(raw) if _INT_RE.match(raw) else raw)
    if len(values) != schema.arity:
        raise ValueError(
            f"{schema.relation!r} expects {schema.arity} values, got {len(values)}"
        )
    return schema.tuple(*values)


class Explanation:
    """One answered "why is this tuple in the view" question."""

    def __init__(
        self,
        target: Tuple,
        found: bool,
        scheme: str,
        owner: Optional[int],
        products: Optional[List[List[Dict[str, Any]]]],
        message_path: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.target = target
        self.found = found
        self.scheme = scheme
        self.owner = owner
        #: Minimal derivation products, each a list of resolved base refs
        #: (``{"label", "relation", "values", "version", "owner"}``), or
        #: ``None`` when the store cannot enumerate products.
        self.products = products
        #: Cross-node hops reconstructed from trace flow events (empty when
        #: the run was untraced).
        self.message_path = message_path or []

    @property
    def target_label(self) -> str:
        return f"{self.target.relation}({', '.join(str(v) for v in self.target.values)})"

    def base_owners(self) -> List[int]:
        """Every distinct owning node referenced by the products, sorted."""
        owners = set()
        for product in self.products or ():
            for ref in product:
                if ref["owner"] is not None:
                    owners.add(ref["owner"])
        return sorted(owners)

    def as_json(self) -> Dict[str, Any]:
        """A deterministic, JSON-serialisable form (stable across backends)."""
        return {
            "view": self.target_label,
            "relation": self.target.relation,
            "values": list(self.target.values),
            "found": self.found,
            "scheme": self.scheme,
            "owner": self.owner,
            "products": self.products,
            "message_path": self.message_path,
        }

    def render_text(self) -> str:
        """The operator-facing tree rendering."""
        lines = []
        if not self.found:
            lines.append(f"{self.target_label} — NOT in the view [{self.scheme}]")
            lines.append("  no derivation supports it (or it was absorbed away)")
            return "\n".join(lines)
        lines.append(f"{self.target_label} — derivable [{self.scheme}]")
        if self.owner is not None:
            lines.append(f"  owner: node {self.owner}")
        if self.products is None:
            lines.append(
                f"  the {self.scheme!r} scheme does not enumerate derivation "
                "products (set/counting semantics); membership only"
            )
        else:
            count = len(self.products)
            lines.append(f"  {count} minimal derivation product{'s' if count != 1 else ''}:")
            for index, product in enumerate(self.products):
                last_product = index == len(self.products) - 1
                branch = "└─" if last_product else "├─"
                stem = "   " if last_product else "│  "
                if not product:
                    lines.append(f"  {branch} product {index + 1}: (unconditionally true)")
                    continue
                lines.append(f"  {branch} product {index + 1}:")
                for ref in product:
                    where = f"  @ node {ref['owner']}" if ref["owner"] is not None else ""
                    lines.append(f"  {stem}   {ref['label']}{where}")
        if self.message_path:
            lines.append("  message path (trace flows, oldest first):")
            for hop in self.message_path:
                sim = f"  (sim {hop['sim']:.6f}s)" if hop.get("sim") is not None else ""
                lines.append(f"    node {hop['src']} → node {hop['dst']}{sim}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "derivable" if self.found else "absent"
        products = "?" if self.products is None else len(self.products)
        return f"Explanation({self.target_label}, {state}, products={products})"


class ExplainEngine:
    """Turns canonical annotations into resolved, renderable explanations."""

    def __init__(self, plan, partitioner, scheme: str) -> None:
        self.plan = plan
        self.partitioner = partitioner
        self.scheme = scheme
        self._schemas = {
            plan.edge_schema.relation: plan.edge_schema,
            plan.result_schema.relation: plan.result_schema,
        }

    # -- base-variable resolution --------------------------------------------------
    def resolve_base(self, key) -> Dict[str, Any]:
        """One base variable as ``{label, relation, values, version, owner}``."""
        relation: Optional[str] = None
        values: List[Any] = []
        version = 0
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[0], tuple)
            and key[0]
            and isinstance(key[1], int)
        ):
            relation, values = key[0][0], list(key[0][1:])
            version = key[1]
        owner: Optional[int] = None
        schema = self._schemas.get(relation)
        if schema is not None and len(values) == schema.arity:
            origin = schema.tuple(*values)
            if relation == self.plan.result_schema.relation:
                owner = self.partitioner.node_for(self.plan.result_partition_value(origin))
            else:
                owner = self.partitioner.node_for(origin.partition_value)
        return {
            "label": format_base_key(key),
            "relation": relation,
            "values": values,
            "version": version,
            "owner": owner,
        }

    def owner_of(self, target: Tuple) -> int:
        return self.partitioner.node_for(self.plan.result_partition_value(target))

    # -- canonical-form normalisation ----------------------------------------------
    @staticmethod
    def _product_sets(canonical) -> Optional[List[frozenset]]:
        """Canonical annotation → minimal base-key product sets, or ``None``.

        Absorption canonicalises to a frozenset of frozensets already;
        relative annotations are frozensets of ``Derivation`` objects whose
        ``leaves`` are the base keys (not absorbed, so the antichain reduction
        is applied here).  Anything else — counting integers, DRed booleans —
        has no product structure.
        """
        if not isinstance(canonical, frozenset):
            return None
        products: List[frozenset] = []
        for element in canonical:
            if isinstance(element, frozenset):
                products.append(element)
            elif hasattr(element, "leaves"):
                products.append(frozenset(element.leaves))
            else:
                return None
        minimal: List[frozenset] = []
        for product in sorted(products, key=len):
            if not any(kept <= product for kept in minimal):
                minimal.append(product)
        return minimal

    # -- the main entry point --------------------------------------------------------
    def build(
        self,
        target: Tuple,
        canonical,
        trace_events: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> Explanation:
        """Assemble an :class:`Explanation` from a canonical annotation.

        ``canonical`` is what :func:`~repro.provenance.tracker.canonical_annotation`
        produced for the target's stored annotation — or ``None`` when no node
        holds the tuple at all.
        """
        owner = self.owner_of(target)
        if canonical is None:
            return Explanation(target, False, self.scheme, owner, None)
        product_sets = self._product_sets(canonical)
        if product_sets is None:
            # Membership-only store (DRed set semantics, counting vectors).
            return Explanation(target, bool(canonical), self.scheme, owner, None)
        products = [
            sorted(
                (self.resolve_base(key) for key in product),
                key=lambda ref: ref["label"],
            )
            for product in product_sets
        ]
        products.sort(key=lambda product: (len(product), [ref["label"] for ref in product]))
        explanation = Explanation(
            target, bool(products), self.scheme, owner, products
        )
        if trace_events:
            involved = set(explanation.base_owners())
            involved.add(owner)
            explanation.message_path = correlate_flows(trace_events, involved)
        return explanation


def correlate_flows(
    events: Iterable[Dict[str, Any]],
    pids,
    limit: int = _MAX_PATH_HOPS,
) -> List[Dict[str, Any]]:
    """Reconstruct cross-node hops among ``pids`` from recorded flow events.

    Flow starts (``ph: "s"``) and finishes (``ph: "f"``) pair by ``id``; a
    pair whose endpoints both belong to the involved node set is one hop of
    the message path that moved the derivation.  Returns the **last**
    ``limit`` hops in recording order — the tail of the run is what fed the
    current annotation state.
    """
    starts: Dict[Any, Dict[str, Any]] = {}
    hops: List[Dict[str, Any]] = []
    for event in events:
        phase = event.get("ph")
        if phase == "s":
            starts[event.get("id")] = event
        elif phase == "f":
            start = starts.get(event.get("id"))
            if start is None:
                continue
            src, dst = start.get("pid"), event.get("pid")
            if src in pids and dst in pids and src != dst:
                hops.append(
                    {
                        "src": src,
                        "dst": dst,
                        "sim": (start.get("args") or {}).get("sim"),
                    }
                )
    return hops[-limit:]


def inject_explain_flows(explanation: Explanation, path) -> int:
    """Append the explanation as Perfetto flow arrows to an existing trace file.

    For every minimal derivation product, one flow arrow per supporting base
    tuple is drawn from the base owner's pipeline track to the view owner's —
    plus an ``explain:<tuple>`` instant on the owner track — so opening the
    trace shows *which* nodes' data the selected view tuple rests on.  The
    arrows land after the last recorded timestamp (per-track monotonicity is
    preserved) with ids above :data:`_INJECTED_FLOW_BASE` (no collision with
    recorded flows).  Returns the number of events appended.
    """
    if explanation.owner is None or not explanation.products:
        return 0
    events = load_trace_events(path)
    anchor = max((event.get("ts", 0.0) for event in events), default=0.0) + 10.0
    injected: List[Dict[str, Any]] = [
        {
            "ph": "i",
            "s": "t",
            "pid": explanation.owner,
            "tid": 1,
            "ts": anchor,
            "name": f"explain:{explanation.target_label}",
            "cat": "explain",
            "args": {
                "products": len(explanation.products),
                "scheme": explanation.scheme,
            },
        }
    ]
    flow_id = _INJECTED_FLOW_BASE
    offset = 0.0
    for index, product in enumerate(explanation.products):
        for ref in product:
            if ref["owner"] is None:
                continue
            flow_id += 1
            offset += 1.0
            name = f"explain:{ref['label']}"
            injected.append(
                {
                    "ph": "s",
                    "id": flow_id,
                    "pid": ref["owner"],
                    "tid": 1,
                    "ts": anchor + offset,
                    "name": name,
                    "cat": "explain",
                    "args": {"product": index + 1},
                }
            )
            injected.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": explanation.owner,
                    "tid": 1,
                    "ts": anchor + offset + 0.5,
                    "name": name,
                    "cat": "explain",
                }
            )
    _append_events(path, events, injected)
    return len(injected)


def _append_events(path, existing, injected) -> None:
    """Rewrite/append the trace file with ``injected`` after ``existing``."""
    if str(path).endswith(".jsonl"):
        with open(path, "a", encoding="utf-8") as handle:
            for event in injected:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        trace_events = document.get("traceEvents")
        if isinstance(trace_events, list):
            trace_events.extend(injected)
        else:
            raise ValueError("trace object has no traceEvents list")
    else:
        document.extend(injected)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


__all__ = [
    "ExplainEngine",
    "Explanation",
    "correlate_flows",
    "inject_explain_flows",
    "parse_view_tuple",
]
