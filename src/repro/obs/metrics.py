"""Central metrics registry unifying the engine's scattered stat objects.

The engine grew one telemetry island per subsystem — ``KernelPhaseStats`` in
the executor, ``RoutingStats`` in the routing layer, ``NetworkStats`` on the
simulator, the BDD manager's ``cache_stats()``/``gc_stats()`` — each with its
own shape and its own snapshot discipline.  :class:`MetricsRegistry` gives
them one home: subsystems register *probes* (callables returning flat
name→number dictionaries, read lazily at snapshot time so live objects are
never copied eagerly) alongside plain :class:`Counter`, :class:`Gauge` and
:class:`Histogram` instruments, and every consumer reads one
:meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.delta` API.

New live probes introduced with the registry (per the observability issue):

* per-node event-queue depth (:meth:`repro.net.simulator.SimulatedNetwork.queue_depths`),
* per-fixpoint-round delta-size histogram
  (:attr:`repro.operators.fixpoint.FixpointOperator.round_delta_sizes`),
* WAL append counters/rates (:class:`repro.fault.wal.UpdateLog`).

:class:`MetricsLog` accumulates snapshots over a run (the harness records one
per executor phase) for ``--metrics-json`` export.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value, read from ``fn`` at snapshot time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn


class Histogram:
    """Power-of-two bucketed distribution of non-negative integer samples.

    Bucket ``k`` counts samples whose bit length is ``k`` — i.e. values in
    ``[2**(k-1), 2**k)``, with bucket 0 holding exact zeros.  Coarse on
    purpose: recording is one ``bit_length`` plus one dictionary update, cheap
    enough for per-fixpoint-round use.
    """

    __slots__ = ("name", "buckets", "count", "total", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max = 0

    def observe(self, value: int) -> None:
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (for cluster rollups)."""
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def as_flat(self) -> Dict[str, int]:
        """Flat name→number view: one ``_p2_<k>`` key per occupied bucket."""
        flat = {
            f"{self.name}_count": self.count,
            f"{self.name}_sum": self.total,
            f"{self.name}_max": self.max,
        }
        for bucket in sorted(self.buckets):
            flat[f"{self.name}_p2_{bucket}"] = self.buckets[bucket]
        return flat


class MetricsRegistry:
    """One registry per executor: instruments plus lazily-read subsystem probes.

    A *probe* is a zero-argument callable returning a flat name→number
    dictionary; its keys are namespaced with the registering prefix.  Probes
    read the live stat objects only when :meth:`snapshot` runs, so an idle
    registry costs nothing and a registered subsystem keeps mutating its own
    counters exactly as before.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: List[tuple] = []
        #: Evaluated gauge/probe values carried by a materialized registry
        #: (probes are process-local callables and cannot cross a queue).
        self._frozen: Dict[str, float] = {}
        self._created = perf_counter()

    # -- instruments --------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        instrument = Gauge(name, fn)
        self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def register_probe(self, prefix: str, fn: Callable[[], Dict[str, Any]]) -> None:
        """Register a subsystem stat reader; its keys get ``prefix.`` prepended."""
        self._probes.append((prefix, fn))

    # -- reading ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """One flat name→number view of every instrument and probe, right now."""
        snap: Dict[str, float] = {"elapsed_s": round(perf_counter() - self._created, 6)}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.fn()
        for histogram in self._histograms.values():
            snap.update(histogram.as_flat())
        for prefix, fn in self._probes:
            for key, value in fn().items():
                snap[f"{prefix}.{key}"] = value
        snap.update(self._frozen)
        return snap

    # -- multi-process aggregation -------------------------------------------------
    def materialize(self) -> "MetricsRegistry":
        """A picklable snapshot of this registry, safe to ship across a queue.

        Gauges and probes are process-local callables (they close over live
        stat objects), so a worker cannot send its registry as-is.
        ``materialize`` evaluates every gauge and probe *now* and stores the
        results as frozen values on a fresh registry alongside copies of the
        counters and histograms.  The result snapshots identically to the
        source (modulo ``elapsed_s``, captured at materialization time) and
        round-trips through ``pickle``.
        """
        frozen = MetricsRegistry()
        for name, counter in self._counters.items():
            copy = frozen.counter(name)
            copy.value = counter.value
        for name, histogram in self._histograms.items():
            frozen.histogram(name).merge(histogram)
        frozen._frozen = dict(self._frozen)
        for name, gauge in self._gauges.items():
            frozen._frozen[name] = gauge.fn()
        for prefix, fn in self._probes:
            for key, value in fn().items():
                frozen._frozen[f"{prefix}.{key}"] = value
        frozen._frozen["elapsed_s"] = round(perf_counter() - self._created, 6)
        return frozen

    def merge(self, other: "MetricsRegistry", prefix: Optional[str] = None) -> None:
        """Fold a *materialized* registry into this one.

        Counters and frozen values are summed, histograms bucket-merged;
        ``elapsed_s`` takes the max (wall clocks overlap, they don't add).
        With ``prefix``, every key from ``other`` lands under ``prefix.<key>``
        instead (per-worker views next to the cluster aggregate).
        """
        tag = f"{prefix}." if prefix else ""
        for name, counter in other._counters.items():
            self.counter(tag + name).inc(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(tag + name).merge(histogram)
        frozen = dict(other._frozen)
        for name, gauge in other._gauges.items():
            frozen[name] = gauge.fn()
        for probe_prefix, fn in other._probes:
            for key, value in fn().items():
                frozen[f"{probe_prefix}.{key}"] = value
        for key, value in frozen.items():
            if key == "elapsed_s" and not tag:
                self._frozen[key] = max(self._frozen.get(key, 0.0), value)
            elif isinstance(value, (int, float)):
                self._frozen[tag + key] = self._frozen.get(tag + key, 0) + value
            else:
                self._frozen[tag + key] = value

    @staticmethod
    def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
        """Numeric difference of two snapshots (keys only in ``after`` pass through)."""
        diff: Dict[str, float] = {}
        for key, value in after.items():
            base = before.get(key)
            if isinstance(value, (int, float)) and isinstance(base, (int, float)):
                diff[key] = value - base
            else:
                diff[key] = value
        return diff


class MetricsLog:
    """An append-only log of labelled snapshots, for ``--metrics-json``."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def record(self, labels: Dict[str, Any], snapshot: Dict[str, float]) -> None:
        entry = dict(labels)
        entry["metrics"] = snapshot
        self.records.append(entry)

    def __len__(self) -> int:
        return len(self.records)


#: The process-wide metrics log the harness installs for ``--metrics-json``;
#: ``None`` (the default) means per-phase snapshots are not being collected.
_ACTIVE_LOG: Optional[MetricsLog] = None


def install_metrics_log(log: Optional[MetricsLog]) -> Optional[MetricsLog]:
    """Install ``log`` as the process-wide snapshot sink; returns the previous one."""
    global _ACTIVE_LOG
    previous = _ACTIVE_LOG
    _ACTIVE_LOG = log
    return previous


def current_metrics_log() -> Optional[MetricsLog]:
    return _ACTIVE_LOG
