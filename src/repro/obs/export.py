"""Trace and metrics serialisation: Chrome trace-event JSON and JSONL.

Two trace formats from one :class:`~repro.obs.trace.Tracer`:

* **Chrome trace-event JSON** (the default, any other extension): the object
  form ``{"traceEvents": [...]}`` that Perfetto (https://ui.perfetto.dev) and
  ``about://tracing`` load directly;
* **JSONL structured event log** (``*.jsonl``): one JSON event per line, for
  ``jq``/pandas-style post-processing without loading the whole trace.

:func:`validate_chrome_trace` is the shared validity check used by the tests
and by ``scripts/validate_trace.py`` in CI: the JSON must parse, every
complete event needs a non-negative duration, spans within a track must nest
properly (a proper tree — no partial overlap), and required categories and
per-node tracks must be present.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import Tracer

#: Tolerance (microseconds) for float jitter in nesting comparisons.
_NEST_EPSILON_US = 0.5


def chrome_trace_dict(tracer: Tracer) -> Dict[str, Any]:
    """The Perfetto-loadable object form of a finished trace."""
    tracer.finish()
    return {
        "traceEvents": tracer.chrome_events(),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "wall-us (sim time in args)"},
    }


def write_trace(tracer: Tracer, path: Any) -> None:
    """Write the trace to ``path`` — JSONL when it ends in ``.jsonl``,
    Chrome trace-event JSON otherwise."""
    if str(path).endswith(".jsonl"):
        tracer.finish()
        with open(path, "w", encoding="utf-8") as handle:
            for event in tracer.chrome_events():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace_dict(tracer), handle)


def write_metrics_json(log: Any, path: Any) -> None:
    """Write a :class:`~repro.obs.metrics.MetricsLog` as one JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"snapshots": log.records}, handle, indent=2, sort_keys=True)


def load_trace_events(path: Any) -> List[Dict[str, Any]]:
    """Load events back from either export format."""
    if str(path).endswith(".jsonl"):
        with open(path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object has no traceEvents list")
        return events
    if isinstance(data, list):  # bare array form is also legal chrome format
        return data
    raise ValueError(f"unrecognised trace JSON shape: {type(data).__name__}")


def validate_span_nesting(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Check that complete events nest properly within each (pid, tid) track.

    Spans on one track must form a proper tree: sorted by start (ties broken
    longest-first), every span either starts after the enclosing span ends or
    lies entirely inside it.  Partial overlap — a span crossing another's end
    boundary — is a recording bug and is reported.  Returns a list of
    human-readable violations (empty means valid).
    """
    errors: List[str] = []
    tracks: Dict[tuple, List[Dict[str, Any]]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        duration = event.get("dur")
        if duration is None or duration < 0:
            errors.append(f"complete event without non-negative dur: {event.get('name')}")
            continue
        tracks.setdefault((event.get("pid"), event.get("tid")), []).append(event)
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[Dict[str, Any]] = []
        for span in spans:
            start, end = span["ts"], span["ts"] + span["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - _NEST_EPSILON_US:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end + _NEST_EPSILON_US:
                    errors.append(
                        f"track ({pid}, {tid}): span {span['name']!r} "
                        f"[{start:.1f}, {end:.1f}]us overlaps end of "
                        f"{stack[-1]['name']!r} [{stack[-1]['ts']:.1f}, {parent_end:.1f}]us"
                    )
                    continue
            stack.append(span)
    return errors


def validate_flow_balance(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Check that flow events pair up: unique starts, finishes after starts.

    On a merged multi-process trace this is the corruption detector for the
    worker-merge id remap: two workers both counting flows from 1 collide on
    merge, which shows up here as a duplicate start id.  Also reported:
    finishes without a start, finishes that precede their start, and starts
    that never finish (a dangling arrow — legal mid-run, a leak in a complete
    phase-quiescent trace).  Returns human-readable violations (empty = valid).
    """
    errors: List[str] = []
    starts: Dict[Any, Dict[str, Any]] = {}
    finished = set()
    for event in events:
        phase = event.get("ph")
        if phase == "s":
            flow_id = event.get("id")
            if flow_id in starts:
                errors.append(
                    f"flow id {flow_id!r} started twice "
                    "(unremapped worker-merge collision?)"
                )
            else:
                starts[flow_id] = event
        elif phase == "f":
            flow_id = event.get("id")
            start = starts.get(flow_id)
            if start is None:
                errors.append(f"flow id {flow_id!r} finished without a start")
                continue
            finished.add(flow_id)
            if event.get("ts", 0.0) < start.get("ts", 0.0) - _NEST_EPSILON_US:
                errors.append(
                    f"flow id {flow_id!r} finishes at {event.get('ts'):.1f}us, "
                    f"before its start at {start.get('ts'):.1f}us"
                )
    dangling = len(starts) - len(finished)
    if dangling:
        errors.append(f"{dangling} flow start(s) never finished")
    return errors


#: Tolerance (microseconds) for per-track timestamp regressions.  Larger than
#: the nesting epsilon: merged traces shift worker clocks by a float origin
#: difference, so adjacent events legitimately jitter by float rounding.
_MONOTONIC_EPSILON_US = 1.0


def validate_track_monotonicity(
    events: Iterable[Dict[str, Any]], tolerance_us: float = _MONOTONIC_EPSILON_US
) -> List[str]:
    """Check that each (pid, tid) track's timestamps never run backwards.

    Every track has a single writer appending in real time (workers included —
    a merged trace shifts a whole worker's clock uniformly and remaps shared
    synthetic tracks to per-worker pids), so within one track, file order must
    be timestamp order.  A regression beyond ``tolerance_us`` means two
    processes' events were interleaved onto one track — exactly the corruption
    an unremapped pid collision produces.  One error per offending track.
    """
    errors: List[str] = []
    last_ts: Dict[tuple, float] = {}
    flagged = set()
    for event in events:
        if event.get("ph") == "M":
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if ts is None:
            continue
        previous = last_ts.get(track)
        if previous is not None and ts < previous - tolerance_us and track not in flagged:
            flagged.add(track)
            errors.append(
                f"track {track}: timestamp runs backwards "
                f"({previous:.1f}us -> {ts:.1f}us; interleaved writers?)"
            )
        if previous is None or ts > previous:
            last_ts[track] = ts
    return errors


def trace_summary(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Shape overview of an event list: counts, categories, tracks, flows."""
    categories: Dict[str, int] = {}
    node_pids = set()
    tracks = set()
    spans = instants = flow_starts = flow_finishes = 0
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        cat = event.get("cat")
        if cat:
            categories[cat] = categories.get(cat, 0) + 1
        tracks.add((event.get("pid"), event.get("tid")))
        if phase == "X":
            spans += 1
        elif phase == "i":
            instants += 1
        elif phase == "s":
            flow_starts += 1
        elif phase == "f":
            flow_finishes += 1
        pid = event.get("pid", 0)
        if isinstance(pid, int) and pid < (1 << 20):
            node_pids.add(pid)
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "flow_starts": flow_starts,
        "flow_finishes": flow_finishes,
        "categories": categories,
        "tracks": len(tracks),
        "node_pids": sorted(node_pids),
    }


def validate_chrome_trace(
    path: Any,
    require_categories: Optional[Sequence[str]] = None,
    require_node_tracks: int = 1,
) -> Dict[str, Any]:
    """Full validity check of an exported trace file; returns its summary.

    Raises :class:`ValueError` describing every problem found: unparseable
    JSON shape, negative durations, nesting violations, missing required
    span categories, or fewer per-node tracks than ``require_node_tracks``.
    """
    events = load_trace_events(path)
    problems = validate_span_nesting(events)
    summary = trace_summary(events)
    if require_categories:
        span_categories = {
            event.get("cat") for event in events if event.get("ph") == "X"
        }
        missing = [cat for cat in require_categories if cat not in span_categories]
        if missing:
            problems.append(f"missing span categories: {', '.join(missing)}")
    if len(summary["node_pids"]) < require_node_tracks:
        problems.append(
            f"expected ≥{require_node_tracks} per-node tracks, "
            f"found {len(summary['node_pids'])}"
        )
    if problems:
        raise ValueError("; ".join(problems))
    return summary
