"""The flight recorder: a bounded ring-buffer tracer cheap enough to leave on.

Where :class:`~repro.obs.trace.Tracer` keeps *every* event for a full
Perfetto export, the :class:`FlightRecorder` keeps only the **last N** spans /
instants / flows per track owner (one fixed-capacity ring of preallocated
tuple slots per pid) — so a run that processes millions of deliveries holds a
constant-size post-mortem buffer instead of an unbounded event list.  It is a
drop-in for the tracer's duck-typed surface (``begin``/``end``/``instant``/
``flow_start``/``flow_finish``/``kernel_slice``/node context), which means the
hot paths need no new branches: installing it through
:func:`~repro.obs.trace.install_tracer` routes the existing instrumentation
into the rings.  When neither a tracer nor a recorder is installed the hot
paths still hold ``None`` — the structural zero-overhead-off discipline is
untouched.

On failure — a crash-purge, a worker process dying, a wall/event budget
overrun, or any harness exception — :func:`maybe_dump_flight` writes the
rings out as a normal Chrome trace file (loadable in Perfetto, checkable by
``scripts/validate_trace.py``), stamped with a ``flight-dump`` instant
carrying the failure reason and the eviction count.  The process backend
additionally folds the rings of every still-live worker into the
coordinator's recorder before dumping (see
:meth:`repro.parallel.scheduler.ProcessCoordinator.collect_flight_rings`), so
the post-mortem timeline covers the whole cluster, not just the coordinator.

Records are plain tuples, one of four shapes::

    ("X", pid, tid, ts_us, dur_us, name, cat, sim)   # complete span
    ("i", pid, tid, ts_us, name, cat, sim)           # instant
    ("s", pid, ts_us, flow_id, sim)                  # flow start
    ("f", pid, ts_us, flow_id)                       # flow finish

Spans enter their ring at :meth:`FlightRecorder.end` time, so a ring never
holds a half-written span and eviction can never create partial overlap — a
dump always passes the span-nesting validator.  Spans still open at dump time
(the phase the failure interrupted) are synthesised into closed spans ending
"now", which is exactly the last thing the system was doing.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import (
    CONTROL_PID,
    HARNESS_PID,
    KERNEL_TID,
    PIPELINE_TID,
    _LANE_NAMES,
    _SYNTHETIC_NAMES,
    current_tracer,
)

#: Events retained per track owner (pid). 256 spans cover several phases of
#: context on a node while keeping a 12-node cluster's recorder under ~4k
#: retained tuples.
DEFAULT_RING_CAPACITY = 256


class _Ring:
    """A fixed-capacity ring of record tuples.

    The slot list is preallocated once and only ever rewritten in place, so
    steady-state recording is an index store plus an increment — no list
    growth, no allocation beyond the record tuple itself.
    """

    __slots__ = ("slots", "capacity", "index", "written")

    def __init__(self, capacity: int) -> None:
        self.slots: List[Optional[tuple]] = [None] * capacity
        self.capacity = capacity
        self.index = 0
        self.written = 0

    def put(self, record: tuple) -> None:
        self.slots[self.index] = record
        self.index += 1
        if self.index == self.capacity:
            self.index = 0
        self.written += 1

    def snapshot(self) -> List[tuple]:
        """Retained records, oldest first."""
        if self.written <= self.capacity:
            return list(self.slots[: self.written])
        return self.slots[self.index :] + self.slots[: self.index]

    @property
    def evicted(self) -> int:
        return self.written - self.capacity if self.written > self.capacity else 0


class FlightRecorder:
    """Bounded always-on tracer variant; same recording surface as ``Tracer``."""

    enabled = True
    #: Duck-type marker the process backend uses to ship the flag to workers
    #: without importing this module on the hot path.
    is_flight_recorder = True

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        dump_path: Optional[Any] = None,
    ) -> None:
        self._t0 = perf_counter()
        self.capacity = capacity
        #: Where :func:`maybe_dump_flight` writes on failure (None = never dump).
        self.dump_path = dump_path
        self._rings: Dict[int, _Ring] = {}
        self._open: Dict[Tuple[int, int], List[list]] = {}
        self._flow_seq = 0
        self._context_pid: Optional[int] = None
        self._process_labels: Dict[int, str] = {}

    # -- clock -------------------------------------------------------------------
    def _now_us(self) -> float:
        return (perf_counter() - self._t0) * 1e6

    def _ring(self, pid: int) -> _Ring:
        ring = self._rings.get(pid)
        if ring is None:
            ring = self._rings[pid] = _Ring(self.capacity)
        return ring

    # -- recording surface (tracer duck type) --------------------------------------
    def begin(self, pid, name, cat, tid=PIPELINE_TID, sim_ts=None, args=None):
        token = [pid, tid, name, cat, self._now_us(), sim_ts]
        self._open.setdefault((pid, tid), []).append(token)
        return token

    def end(self, span, args=None, sim_ts=None) -> None:
        if span is None:
            return
        pid, tid, name, cat, ts, sim = span
        self._ring(pid).put(("X", pid, tid, ts, self._now_us() - ts, name, cat, sim))
        stack = self._open.get((pid, tid))
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # defensive: out-of-order close
            stack.remove(span)

    def instant(self, pid, name, cat, tid=PIPELINE_TID, sim_ts=None, args=None) -> None:
        self._ring(pid).put(("i", pid, tid, self._now_us(), name, cat, sim_ts))

    def flow_start(self, pid, sim_ts=None) -> int:
        self._flow_seq += 1
        flow_id = self._flow_seq
        self._ring(pid).put(("s", pid, self._now_us(), flow_id, sim_ts))
        return flow_id

    def flow_finish(self, flow_id, pid) -> None:
        if flow_id is None:
            return
        self._ring(pid).put(("f", pid, self._now_us(), flow_id))

    def kernel_slice(self, pid, seconds, sim_ts=None, name="kernel") -> None:
        if seconds <= 0.0:
            return
        now = self._now_us()
        duration = seconds * 1e6
        self._ring(pid).put(
            ("X", pid, KERNEL_TID, now - duration, duration, name, "kernel", sim_ts)
        )

    def set_node_context(self, pid) -> None:
        self._context_pid = pid

    def clear_node_context(self) -> None:
        self._context_pid = None

    def context_pid(self, default):
        return self._context_pid if self._context_pid is not None else default

    def label_process(self, pid: int, label: str) -> None:
        self._process_labels[pid] = label

    def finish(self) -> None:
        """Close any dangling spans into their rings."""
        for stack in self._open.values():
            while stack:
                self.end(stack[-1])

    # -- introspection ----------------------------------------------------------------
    def retained_records(self) -> int:
        return sum(
            ring.written if ring.written < ring.capacity else ring.capacity
            for ring in self._rings.values()
        )

    def evicted_records(self) -> int:
        return sum(ring.evicted for ring in self._rings.values())

    def open_span_count(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    # -- cross-process merge -----------------------------------------------------------
    def snapshot_records(self) -> List[tuple]:
        """All retained records (closed spans only), picklable as-is.

        Non-destructive — a worker answering a post-mortem ``flight`` RPC
        keeps its rings, because the coordinator may ask again (recovery).
        """
        records: List[tuple] = []
        for pid in sorted(self._rings):
            records.extend(self._rings[pid].snapshot())
        return records

    def absorb_records(
        self,
        records: List[tuple],
        t0: float,
        pid_offset: int = 0,
        label: Optional[str] = None,
    ) -> None:
        """Fold a worker recorder's records into this (coordinator) recorder.

        Same clock/pid discipline as :meth:`repro.obs.trace.Tracer.absorb`:
        both sides read ``CLOCK_MONOTONIC``, so shifting by the origin
        difference aligns the timelines; synthetic pids shift by
        ``pid_offset``; flow ids shift by ``pid_offset << 32`` so two
        workers' private flow counters never collide in the merged dump.
        """
        offset_us = (t0 - self._t0) * 1e6
        flow_offset = pid_offset << 32
        labelled = set()
        for record in records:
            kind = record[0]
            pid = record[1]
            new_pid = pid + pid_offset if pid >= CONTROL_PID else pid
            if kind in ("X", "i"):
                record = (kind, new_pid, record[2], record[3] + offset_us) + record[4:]
            else:  # "s" / "f"
                record = (
                    (kind, new_pid, record[2] + offset_us, record[3] + flow_offset)
                    + record[4:]
                )
            if label is not None and new_pid not in labelled:
                labelled.add(new_pid)
                base = (
                    _SYNTHETIC_NAMES.get(pid) if pid >= CONTROL_PID else f"node {pid}"
                )
                self._process_labels.setdefault(new_pid, f"{base} [{label}]")
            self._ring(new_pid).put(record)

    # -- export -------------------------------------------------------------------------
    def snapshot_events(self) -> List[Dict[str, Any]]:
        """The retained timeline as Chrome events (ts-sorted, open spans closed).

        Open spans are synthesised into complete events ending now *without*
        popping them — snapshotting mid-run must not disturb recording.
        """
        records = self.snapshot_records()
        now = self._now_us()
        for stack in self._open.values():
            for pid, tid, name, cat, ts, sim in stack:
                records.append(("X", pid, tid, ts, now - ts, name, cat, sim))
        events = [_record_to_event(record) for record in records]
        events.sort(key=lambda event: event["ts"])
        return events

    def _metadata_events(self, events) -> List[Dict[str, Any]]:
        tracks = sorted({(event["pid"], event.get("tid", 0)) for event in events})
        metadata: List[Dict[str, Any]] = []
        for pid in sorted({pid for pid, _ in tracks}):
            name = self._process_labels.get(pid) or _SYNTHETIC_NAMES.get(pid, f"node {pid}")
            metadata.append(
                {"ph": "M", "pid": pid, "tid": 0, "name": "process_name", "args": {"name": name}}
            )
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )
        for pid, tid in tracks:
            metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": _LANE_NAMES.get(tid, f"lane {tid}")},
                }
            )
        return metadata

    def dump(self, path: Any, reason: str) -> str:
        """Write the retained timeline as a loadable Chrome trace; returns the path.

        The dump carries a ``flight-dump`` instant on the harness track with
        the failure ``reason``, the eviction count (how much history the rings
        dropped) and the ring capacity — so a post-mortem reader knows both
        *why* the dump exists and *how far back* it can see.
        """
        events = self.snapshot_events()
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": HARNESS_PID,
                "tid": PIPELINE_TID,
                "ts": self._now_us(),
                "name": "flight-dump",
                "cat": "flight",
                "args": {
                    "reason": reason,
                    "evicted": self.evicted_records(),
                    "ring_capacity": self.capacity,
                },
            }
        )
        payload = self._metadata_events(events) + events
        path = str(path)
        if path.endswith(".jsonl"):
            with open(path, "w", encoding="utf-8") as handle:
                for event in payload:
                    handle.write(json.dumps(event, sort_keys=True))
                    handle.write("\n")
        else:
            document = {
                "traceEvents": payload,
                "displayTimeUnit": "ms",
                "otherData": {"producer": "repro.obs.flight", "reason": reason},
            }
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({self.retained_records()} retained, "
            f"{self.evicted_records()} evicted, capacity {self.capacity}/track)"
        )


def _record_to_event(record: tuple) -> Dict[str, Any]:
    """One ring record as a Chrome trace event dict."""
    kind = record[0]
    if kind == "X":
        _, pid, tid, ts, dur, name, cat, sim = record
        event: Dict[str, Any] = {
            "ph": "X", "pid": pid, "tid": tid, "ts": ts, "dur": dur,
            "name": name, "cat": cat,
        }
    elif kind == "i":
        _, pid, tid, ts, name, cat, sim = record
        event = {
            "ph": "i", "s": "t", "pid": pid, "tid": tid, "ts": ts,
            "name": name, "cat": cat,
        }
    elif kind == "s":
        _, pid, ts, flow_id, sim = record
        event = {
            "ph": "s", "id": flow_id, "pid": pid, "tid": PIPELINE_TID,
            "ts": ts, "name": "msg", "cat": "flow",
        }
    else:
        _, pid, ts, flow_id = record
        sim = None
        event = {
            "ph": "f", "bp": "e", "id": flow_id, "pid": pid, "tid": PIPELINE_TID,
            "ts": ts, "name": "msg", "cat": "flow",
        }
    if sim is not None:
        event["args"] = {"sim": sim}
    return event


def maybe_dump_flight(reason: str, path: Optional[Any] = None) -> Optional[str]:
    """Dump the installed flight recorder, if there is one with somewhere to dump.

    The single post-mortem entry point every failure path calls (phase
    failures, crash-purges, harness exceptions): a no-op unless the active
    tracer is a :class:`FlightRecorder` with a ``dump_path`` (or an explicit
    ``path`` is given).  Returns the written path, or ``None``.
    """
    recorder = current_tracer()
    if not isinstance(recorder, FlightRecorder):
        return None
    target = path if path is not None else recorder.dump_path
    if target is None:
        return None
    return recorder.dump(target, reason)


__all__ = ["DEFAULT_RING_CAPACITY", "FlightRecorder", "maybe_dump_flight"]
