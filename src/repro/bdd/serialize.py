"""Compact, manager-independent serialization of BDDs.

A :class:`~repro.bdd.manager.BDD` handle is only meaningful inside the manager
that hash-consed it, so provenance annotations cannot be checkpointed (or
shipped to a restarted node) as-is.  This module flattens a BDD into a
self-contained :class:`SerializedBDD` — the reachable decision nodes in
bottom-up order, each as a ``(variable, low, high)`` triple over *variable
names* rather than manager-local indices — plus a packed byte encoding
(12 bytes per node before the name table) for durable storage.

Deserialization rebuilds the function **semantically**, composing
``ite(var, high, low)`` bottom-up through the target manager's ``apply``
machinery.  That makes round-trips safe even when the target manager declares
its variables in a different order than the source manager did (the node ids
differ, but the function — and therefore the absorption-provenance semantics —
is identical).
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Hashable, List, Tuple as PyTuple

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.node import FALSE, TRUE

#: Struct format of one encoded decision node: (name_ref, low_ref, high_ref).
_NODE_FORMAT = "<III"
_NODE_SIZE = struct.calcsize(_NODE_FORMAT)
_HEADER_FORMAT = "<II"
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)


@dataclass(frozen=True)
class SerializedBDD:
    """A manager-independent description of a Boolean function.

    ``nodes`` lists the decision nodes in bottom-up (children-first) order.
    Node references use a uniform encoding: ``0`` is the FALSE terminal, ``1``
    the TRUE terminal, and ``i + 2`` refers to ``nodes[i]``.  ``names`` is the
    table of variable names; each node stores an index into it.
    """

    names: PyTuple[Hashable, ...]
    nodes: PyTuple[PyTuple[int, int, int], ...]
    root: int

    @property
    def node_count(self) -> int:
        """Number of decision nodes in the serialized function."""
        return len(self.nodes)

    def size_bytes(self) -> int:
        """Size of the byte encoding produced by :func:`bdd_to_bytes`."""
        return _HEADER_SIZE + _NODE_SIZE * len(self.nodes) + len(
            pickle.dumps(self.names, protocol=pickle.HIGHEST_PROTOCOL)
        )


def serialize_bdd(bdd: BDD) -> SerializedBDD:
    """Flatten ``bdd`` into a :class:`SerializedBDD` (shared subgraphs kept shared).

    The traversal holds raw node ids, which is safe because it performs no
    kernel operations: the manager's compacting GC only runs at the end of a
    public operation, so the table cannot be renumbered mid-walk.

    The name table is emitted in the *source manager's variable order* (not
    traversal-discovery order), so deserialization into a fresh manager
    declares the variables in the same relative order and the bottom-up
    ``ite`` rebuild stays linear instead of re-sorting every node under an
    inverted order.
    """
    manager = bdd.manager
    table = manager._table
    root = bdd.node
    if root == FALSE:
        return SerializedBDD((), (), FALSE)
    if root == TRUE:
        return SerializedBDD((), (), TRUE)

    variables: set = set()
    raw_nodes: List[PyTuple[int, int, int]] = []  # (var index, low_ref, high_ref)
    node_refs: dict = {}  # manager node id -> serialized reference

    stack: List[PyTuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node <= TRUE or node in node_refs:
            continue
        var, low, high = table.triple(node)
        if not expanded:
            stack.append((node, True))
            stack.append((high, False))
            stack.append((low, False))
            continue
        variables.add(var)
        low_ref = low if low <= TRUE else node_refs[low]
        high_ref = high if high <= TRUE else node_refs[high]
        node_refs[node] = len(raw_nodes) + 2
        raw_nodes.append((var, low_ref, high_ref))

    ordered = sorted(variables)
    position = {var: index for index, var in enumerate(ordered)}
    names = tuple(manager.name_of(var) for var in ordered)
    nodes = tuple(
        (position[var], low_ref, high_ref) for var, low_ref, high_ref in raw_nodes
    )
    return SerializedBDD(names, nodes, node_refs[root])


def deserialize_bdd(serialized: SerializedBDD, manager: BDDManager) -> BDD:
    """Rebuild the serialized function inside ``manager``.

    Unknown variable names are declared on the fly; known names reuse the
    manager's existing variables, so annotations restored after a restart keep
    referring to the same base tuples.

    The rebuild enrolls in the manager's GC protocol: the ``built`` handles
    are live roots throughout, and automatic collection is deferred for the
    duration so a large restore triggers at most one compaction at the end.
    """
    with manager.defer_gc():
        built: List[BDD] = [manager.false, manager.true]
        variables = [manager.variable(name) for name in serialized.names]
        for name_ref, low_ref, high_ref in serialized.nodes:
            built.append(
                manager.ite(variables[name_ref], built[high_ref], built[low_ref])
            )
        return built[serialized.root]


def bdd_to_bytes(bdd: BDD) -> bytes:
    """Encode ``bdd`` as bytes: a packed node array followed by the name table."""
    serialized = serialize_bdd(bdd)
    header = struct.pack(_HEADER_FORMAT, serialized.root, len(serialized.nodes))
    body = b"".join(struct.pack(_NODE_FORMAT, *triple) for triple in serialized.nodes)
    names = pickle.dumps(serialized.names, protocol=pickle.HIGHEST_PROTOCOL)
    return header + body + names


def bdd_from_bytes(data: bytes, manager: BDDManager) -> BDD:
    """Inverse of :func:`bdd_to_bytes`."""
    root, count = struct.unpack_from(_HEADER_FORMAT, data)
    nodes = tuple(
        struct.unpack_from(_NODE_FORMAT, data, _HEADER_SIZE + index * _NODE_SIZE)
        for index in range(count)
    )
    names = pickle.loads(data[_HEADER_SIZE + count * _NODE_SIZE :])
    return deserialize_bdd(SerializedBDD(names, nodes, root), manager)
