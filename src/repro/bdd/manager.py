"""A reduced ordered BDD manager.

The manager owns a :class:`~repro.bdd.node.NodeTable` plus memoisation caches
for the binary ``apply`` operations, negation, restriction, support and
node-count computation.  :class:`BDD` objects are thin immutable handles
(manager + node id) with operator overloading, which is how the provenance
layer and operators manipulate absorption provenance::

    mgr = BDDManager()
    p1, p2, p3 = mgr.variables("p1", "p2", "p3")
    pv = (p1 & p2) | (p1 & p2 & p3)     # absorption collapses this to p1 & p2
    assert pv == (p1 & p2)
    assert pv.restrict({"p1": False}).is_false()

The per-tuple provenance size metric in the paper is reported from
:meth:`BDD.node_count` / :meth:`BDD.size_bytes`; the count is memoised per
canonical node, which is safe because the node table is append-only — a node
id always denotes the same function, so its size never changes.

All memo caches are **bounded**: when a cache reaches ``cache_limit`` entries
it is dropped wholesale (the classic BDD-package "cache reset" policy — the
node table itself, and therefore canonicity, is unaffected; subsequent
operations simply recompute).  Hit/miss/eviction counters for every cache are
surfaced through :meth:`BDDManager.cache_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.node import FALSE, TERMINAL_VAR, TRUE, NodeTable

#: Estimated in-memory bytes per BDD node: variable index, low and high
#: pointers plus hash-table overhead.  Used for the "per-tuple provenance
#: overhead (B)" metric; JavaBDD nodes cost roughly the same.
BYTES_PER_NODE = 16

_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

#: Default bound on each memo cache (entries); reaching it drops the cache.
DEFAULT_CACHE_LIMIT = 1 << 20


@dataclass
class CacheCounters:
    """Hit/miss/eviction counters for one memo cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self, size: int) -> Dict[str, int]:
        """A plain-dict view including the cache's current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": size,
        }


@dataclass
class BDDOperationStats:
    """Work counters for one manager: apply/restrict invocations and caches.

    ``apply_calls`` counts every (recursive) step of the Shannon expansion in
    ``_apply`` and ``restrict_calls`` every step of ``_restrict`` — the two
    numbers the batch-throughput benchmark compares between batched and
    tuple-at-a-time execution.
    """

    apply_calls: int = 0
    restrict_calls: int = 0
    apply: CacheCounters = field(default_factory=CacheCounters)
    negate: CacheCounters = field(default_factory=CacheCounters)
    restrict: CacheCounters = field(default_factory=CacheCounters)
    support: CacheCounters = field(default_factory=CacheCounters)
    size: CacheCounters = field(default_factory=CacheCounters)


class BDDError(Exception):
    """Raised on misuse of the BDD layer (unknown variables, mixed managers)."""


class BDD:
    """An immutable handle to a Boolean function owned by a :class:`BDDManager`."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: "BDDManager", node: int) -> None:
        self.manager = manager
        self.node = node

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "BDD truth value is ambiguous; use .is_true() / .is_false() / .is_satisfiable()"
        )

    def __repr__(self) -> str:
        if self.is_false():
            return "BDD(False)"
        if self.is_true():
            return "BDD(True)"
        return f"BDD(node={self.node}, vars={sorted(self.support_names())})"

    # -- constants ---------------------------------------------------------
    def is_false(self) -> bool:
        """True iff this is the constant-false function (tuple not derivable)."""
        return self.node == FALSE

    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        return self.node == TRUE

    def is_satisfiable(self) -> bool:
        """True iff some assignment makes the function true.

        Because ROBDDs are canonical, any non-FALSE node is satisfiable.
        """
        return self.node != FALSE

    # -- boolean algebra ----------------------------------------------------
    def __and__(self, other: "BDD") -> "BDD":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "BDD") -> "BDD":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "BDD") -> "BDD":
        return self.manager.apply_xor(self, other)

    def __invert__(self) -> "BDD":
        return self.manager.negate(self)

    def implies(self, other: "BDD") -> bool:
        """Return True iff ``self -> other`` is a tautology."""
        return (self & ~other).is_false()

    def equivalent(self, other: "BDD") -> bool:
        """Canonical equality: same manager node id."""
        return self == other

    # -- cofactors / restriction --------------------------------------------
    def restrict(self, assignment: Mapping[Hashable, bool]) -> "BDD":
        """Substitute constants for variables (by *name*) and simplify.

        This is the operation the paper calls ``restrict(oldPv, NOT u.pv)``
        for single-variable deletions: setting a deleted base tuple's variable
        to ``False`` everywhere.
        """
        return self.manager.restrict(self, assignment)

    def without(self, names: Iterable[Hashable]) -> "BDD":
        """Set every variable in ``names`` to False (deletion of base tuples)."""
        return self.manager.restrict(self, {name: False for name in names})

    def exist(self, names: Iterable[Hashable]) -> "BDD":
        """Existentially quantify the given variables out of the function."""
        return self.manager.exist(self, names)

    # -- structure / metrics -------------------------------------------------
    def node_count(self) -> int:
        """Number of decision nodes in this BDD (terminals excluded)."""
        return self.manager.node_count(self)

    def size_bytes(self) -> int:
        """Estimated encoded size of this provenance annotation in bytes."""
        return self.manager.size_bytes(self)

    def support(self) -> FrozenSet[int]:
        """Variable *indices* the function depends on."""
        return self.manager.support(self)

    def support_names(self) -> FrozenSet[Hashable]:
        """Variable *names* the function depends on."""
        return frozenset(self.manager.name_of(idx) for idx in self.support())

    def sat_count(self) -> int:
        """Number of satisfying assignments over the manager's declared variables."""
        return self.manager.sat_count(self)

    def any_sat(self) -> Optional[Dict[Hashable, bool]]:
        """Return one satisfying assignment (partial, by name) or None."""
        return self.manager.any_sat(self)

    def iter_products(self) -> Iterator[FrozenSet[Hashable]]:
        """Iterate over the positive-literal products of a monotone function.

        For absorption provenance (which is monotone in base tuples) this
        enumerates the minimal "witness" sets of base tuples, i.e. the
        prime implicants restricted to positive literals.  Useful for
        debugging and for the relative-provenance comparison.
        """
        return self.manager.iter_products(self)

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate under a *total* assignment of the support variables."""
        return self.manager.evaluate(self, assignment)


class BDDManager:
    """Creates variables and performs hash-consed BDD operations.

    Variables are identified by arbitrary hashable *names* (the provenance
    layer uses base-tuple keys); the manager assigns each a position in the
    global variable order in creation order.
    """

    def __init__(self, cache_limit: int = DEFAULT_CACHE_LIMIT) -> None:
        if cache_limit <= 0:
            raise ValueError("cache_limit must be positive")
        self._table = NodeTable()
        self.cache_limit = cache_limit
        self.stats = BDDOperationStats()
        self._apply_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[Tuple[int, Tuple[Tuple[int, bool], ...]], int] = {}
        self._support_cache: Dict[int, FrozenSet[int]] = {}
        #: node id -> number of decision nodes reachable from it.  Node ids
        #: are append-only (the table never frees or rewrites a node), so a
        #: memoised count can never go stale; the bound exists purely to cap
        #: memory.
        self._size_cache: Dict[int, int] = {}
        self._index_by_name: Dict[Hashable, int] = {}
        self._name_by_index: List[Hashable] = []

    def _bound(self, cache: Dict, counters: CacheCounters) -> None:
        """Drop ``cache`` wholesale when it reaches the configured limit."""
        if len(cache) >= self.cache_limit:
            cache.clear()
            counters.evictions += 1

    def cache_stats(self) -> Dict[str, object]:
        """Work and cache counters (hits, misses, evictions, live entries)."""
        stats = self.stats
        return {
            "apply_calls": stats.apply_calls,
            "restrict_calls": stats.restrict_calls,
            "cache_limit": self.cache_limit,
            "apply": stats.apply.snapshot(len(self._apply_cache)),
            "negate": stats.negate.snapshot(len(self._not_cache)),
            "restrict": stats.restrict.snapshot(len(self._restrict_cache)),
            "support": stats.support.snapshot(len(self._support_cache)),
            "size": stats.size.snapshot(len(self._size_cache)),
        }

    # -- variable management ------------------------------------------------
    def variable(self, name: Hashable) -> BDD:
        """Return (creating if needed) the BDD for the single variable ``name``."""
        index = self._index_by_name.get(name)
        if index is None:
            index = len(self._name_by_index)
            self._index_by_name[name] = index
            self._name_by_index.append(name)
        node = self._table.make(index, FALSE, TRUE)
        return BDD(self, node)

    def variables(self, *names: Hashable) -> Tuple[BDD, ...]:
        """Create several variables at once, in order."""
        return tuple(self.variable(name) for name in names)

    def has_variable(self, name: Hashable) -> bool:
        """True if ``name`` has been declared as a variable."""
        return name in self._index_by_name

    def name_of(self, index: int) -> Hashable:
        """Map a variable index back to its name."""
        return self._name_by_index[index]

    def index_of(self, name: Hashable) -> int:
        """Map a variable name to its order index (raises BDDError if unknown)."""
        try:
            return self._index_by_name[name]
        except KeyError as exc:
            raise BDDError(f"unknown BDD variable: {name!r}") from exc

    @property
    def variable_count(self) -> int:
        """Number of declared variables."""
        return len(self._name_by_index)

    @property
    def table_size(self) -> int:
        """Total number of nodes ever allocated (terminals included)."""
        return len(self._table)

    # -- constants ------------------------------------------------------------
    @property
    def true(self) -> BDD:
        """The constant-true function."""
        return BDD(self, TRUE)

    @property
    def false(self) -> BDD:
        """The constant-false function."""
        return BDD(self, FALSE)

    # -- core apply -----------------------------------------------------------
    def _check(self, *operands: BDD) -> None:
        for operand in operands:
            if operand.manager is not self:
                raise BDDError("cannot combine BDDs from different managers")

    def apply_and(self, left: BDD, right: BDD) -> BDD:
        """Conjunction (used when operators join tuples)."""
        self._check(left, right)
        return BDD(self, self._apply(_OP_AND, left.node, right.node))

    def apply_or(self, left: BDD, right: BDD) -> BDD:
        """Disjunction (used when a tuple gains an alternative derivation)."""
        self._check(left, right)
        return BDD(self, self._apply(_OP_OR, left.node, right.node))

    def apply_xor(self, left: BDD, right: BDD) -> BDD:
        """Exclusive-or (used by tests to compare functions)."""
        self._check(left, right)
        return BDD(self, self._apply(_OP_XOR, left.node, right.node))

    def negate(self, operand: BDD) -> BDD:
        """Logical negation."""
        self._check(operand)
        return BDD(self, self._negate(operand.node))

    def conjoin(self, operands: Iterable[BDD]) -> BDD:
        """AND a collection of BDDs together (empty -> True)."""
        result = TRUE
        for operand in operands:
            self._check(operand)
            result = self._apply(_OP_AND, result, operand.node)
            if result == FALSE:
                break
        return BDD(self, result)

    def disjoin(self, operands: Iterable[BDD]) -> BDD:
        """OR a collection of BDDs together (empty -> False)."""
        result = FALSE
        for operand in operands:
            self._check(operand)
            result = self._apply(_OP_OR, result, operand.node)
            if result == TRUE:
                break
        return BDD(self, result)

    def ite(self, cond: BDD, then: BDD, otherwise: BDD) -> BDD:
        """If-then-else composition: ``(cond AND then) OR (NOT cond AND otherwise)``."""
        self._check(cond, then, otherwise)
        positive = self._apply(_OP_AND, cond.node, then.node)
        negative = self._apply(_OP_AND, self._negate(cond.node), otherwise.node)
        return BDD(self, self._apply(_OP_OR, positive, negative))

    def _terminal_apply(self, op: int, left: int, right: int) -> Optional[int]:
        if op == _OP_AND:
            if left == FALSE or right == FALSE:
                return FALSE
            if left == TRUE:
                return right
            if right == TRUE:
                return left
            if left == right:
                return left
        elif op == _OP_OR:
            if left == TRUE or right == TRUE:
                return TRUE
            if left == FALSE:
                return right
            if right == FALSE:
                return left
            if left == right:
                return left
        else:  # XOR
            if left == right:
                return FALSE
            if left == FALSE:
                return right
            if right == FALSE:
                return left
        return None

    def _apply(self, op: int, left: int, right: int) -> int:
        self.stats.apply_calls += 1
        terminal = self._terminal_apply(op, left, right)
        if terminal is not None:
            return terminal
        # Canonicalise commutative operand order for better cache hit rates.
        if left > right:
            left, right = right, left
        key = (op, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.stats.apply.hits += 1
            return cached
        self.stats.apply.misses += 1
        table = self._table
        lvar = table.var_of(left)
        rvar = table.var_of(right)
        var = lvar if lvar <= rvar else rvar
        if lvar == var:
            l_low, l_high = table.low_of(left), table.high_of(left)
        else:
            l_low = l_high = left
        if rvar == var:
            r_low, r_high = table.low_of(right), table.high_of(right)
        else:
            r_low = r_high = right
        low = self._apply(op, l_low, r_low)
        high = self._apply(op, l_high, r_high)
        node = table.make(var, low, high)
        self._bound(self._apply_cache, self.stats.apply)
        self._apply_cache[key] = node
        return node

    def _negate(self, node: int) -> int:
        if node == FALSE:
            return TRUE
        if node == TRUE:
            return FALSE
        cached = self._not_cache.get(node)
        if cached is not None:
            self.stats.negate.hits += 1
            return cached
        self.stats.negate.misses += 1
        table = self._table
        var, low, high = table.triple(node)
        result = table.make(var, self._negate(low), self._negate(high))
        self._bound(self._not_cache, self.stats.negate)
        self._not_cache[node] = result
        return result

    # -- restriction / quantification -----------------------------------------
    def restrict(self, operand: BDD, assignment: Mapping[Hashable, bool]) -> BDD:
        """Substitute constants for named variables.

        Unknown variable names are ignored (they cannot occur in the function),
        which lets callers blindly zero out deleted base tuples.
        """
        self._check(operand)
        indexed: List[Tuple[int, bool]] = []
        for name, value in assignment.items():
            index = self._index_by_name.get(name)
            if index is not None:
                indexed.append((index, bool(value)))
        if not indexed:
            return operand
        indexed.sort()
        key_suffix = tuple(indexed)
        mapping = dict(indexed)
        node = self._restrict(operand.node, mapping, key_suffix)
        return BDD(self, node)

    def _restrict(
        self,
        node: int,
        mapping: Dict[int, bool],
        key_suffix: Tuple[Tuple[int, bool], ...],
    ) -> int:
        if node <= TRUE:
            return node
        self.stats.restrict_calls += 1
        key = (node, key_suffix)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            self.stats.restrict.hits += 1
            return cached
        self.stats.restrict.misses += 1
        table = self._table
        var, low, high = table.triple(node)
        if var in mapping:
            result = self._restrict(high if mapping[var] else low, mapping, key_suffix)
        else:
            new_low = self._restrict(low, mapping, key_suffix)
            new_high = self._restrict(high, mapping, key_suffix)
            result = table.make(var, new_low, new_high)
        self._bound(self._restrict_cache, self.stats.restrict)
        self._restrict_cache[key] = result
        return result

    def exist(self, operand: BDD, names: Iterable[Hashable]) -> BDD:
        """Existential quantification over the named variables."""
        self._check(operand)
        result = operand
        for name in names:
            if name not in self._index_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = self.apply_or(low, high)
        return result

    # -- structural queries -----------------------------------------------------
    def node_count(self, operand: BDD) -> int:
        """Count decision nodes reachable from ``operand`` (terminals excluded).

        Memoised per canonical root node: annotations are re-measured on
        every send (the per-tuple provenance metric) and on every state-bytes
        probe, and the count of a node id can never change because the node
        table is append-only.
        """
        self._check(operand)
        root = operand.node
        if root <= TRUE:
            return 0
        cached = self._size_cache.get(root)
        if cached is not None:
            self.stats.size.hits += 1
            return cached
        self.stats.size.misses += 1
        seen: Set[int] = set()
        stack = [root]
        table = self._table
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(table.low_of(node))
            stack.append(table.high_of(node))
        self._bound(self._size_cache, self.stats.size)
        self._size_cache[root] = len(seen)
        return len(seen)

    def size_bytes(self, operand: BDD) -> int:
        """Approximate wire/memory size of the annotation in bytes.

        Terminals (True/False annotations) still cost a small constant, which
        matches the paper's observation that set-semantics execution (DRed)
        has a small but non-zero per-tuple overhead.
        """
        count = self.node_count(operand)
        return max(count, 1) * BYTES_PER_NODE

    def support(self, operand: BDD) -> FrozenSet[int]:
        """Set of variable indices the function depends on."""
        self._check(operand)
        return self._support(operand.node)

    def _support(self, node: int) -> FrozenSet[int]:
        if node <= TRUE:
            return frozenset()
        cached = self._support_cache.get(node)
        if cached is not None:
            self.stats.support.hits += 1
            return cached
        self.stats.support.misses += 1
        table = self._table
        var, low, high = table.triple(node)
        result = frozenset({var}) | self._support(low) | self._support(high)
        self._bound(self._support_cache, self.stats.support)
        self._support_cache[node] = result
        return result

    def sat_count(self, operand: BDD) -> int:
        """Number of satisfying assignments over all declared variables."""
        self._check(operand)
        total_vars = self.variable_count
        cache: Dict[int, int] = {}
        table = self._table

        def count(node: int) -> int:
            # Returns #solutions over variables strictly below `level(node)`,
            # normalised at the end.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            if node in cache:
                return cache[node]
            var, low, high = table.triple(node)
            low_count = count(low) << (self._gap(low) - var - 1)
            high_count = count(high) << (self._gap(high) - var - 1)
            result = low_count + high_count
            cache[node] = result
            return result

        root = operand.node
        if root == FALSE:
            return 0
        if root == TRUE:
            return 1 << total_vars
        return count(root) << (table.var_of(root))

    def _gap(self, node: int) -> int:
        if node <= TRUE:
            return self.variable_count
        return self._table.var_of(node)

    def any_sat(self, operand: BDD) -> Optional[Dict[Hashable, bool]]:
        """Return one (partial) satisfying assignment keyed by variable name."""
        self._check(operand)
        node = operand.node
        if node == FALSE:
            return None
        assignment: Dict[Hashable, bool] = {}
        table = self._table
        while node > TRUE:
            var, low, high = table.triple(node)
            if high != FALSE:
                assignment[self._name_by_index[var]] = True
                node = high
            else:
                assignment[self._name_by_index[var]] = False
                node = low
        return assignment

    def evaluate(self, operand: BDD, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        self._check(operand)
        node = operand.node
        table = self._table
        while node > TRUE:
            var = table.var_of(node)
            name = self._name_by_index[var]
            if name not in assignment:
                raise BDDError(f"assignment missing variable {name!r}")
            node = table.high_of(node) if assignment[name] else table.low_of(node)
        return node == TRUE

    def iter_products(self, operand: BDD) -> Iterator[FrozenSet[Hashable]]:
        """Enumerate positive-literal products of a monotone function.

        Each yielded frozenset of variable names, when all set to True (and all
        other variables False), satisfies the function.  For monotone functions
        (absorption provenance) these are exactly the minimal support sets of
        derivations that survive absorption.
        """
        self._check(operand)
        table = self._table
        seen: Set[FrozenSet[Hashable]] = set()

        def walk(node: int, acc: Tuple[Hashable, ...]) -> Iterator[FrozenSet[Hashable]]:
            if node == FALSE:
                return
            if node == TRUE:
                product = frozenset(acc)
                if product not in seen:
                    seen.add(product)
                    yield product
                return
            var, low, high = table.triple(node)
            name = self._name_by_index[var]
            yield from walk(low, acc)
            yield from walk(high, acc + (name,))

        yield from walk(operand.node, ())

    # -- conversion -------------------------------------------------------------
    def from_products(self, products: Iterable[Iterable[Hashable]]) -> BDD:
        """Build the disjunction of conjunctions of the named variables.

        ``from_products([["p1", "p2"], ["p3"]])`` is ``(p1 & p2) | p3``.
        """
        result = self.false
        for product in products:
            term = self.true
            for name in product:
                term = term & self.variable(name)
            result = result | term
        return result

    def clear_caches(self) -> None:
        """Drop operation caches (the node table itself is kept).

        Counters survive the clear — they describe cumulative work, not the
        current cache contents.  The node-count memo is also dropped; it will
        repopulate with identical values (node ids are immutable).
        """
        self._apply_cache.clear()
        self._not_cache.clear()
        self._restrict_cache.clear()
        self._support_cache.clear()
        self._size_cache.clear()
