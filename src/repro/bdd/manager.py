"""A reduced ordered BDD manager with an iterative, garbage-collected kernel.

The manager owns a :class:`~repro.bdd.node.NodeTable` plus memoisation caches
for the binary ``apply`` operations, negation, restriction, support and
node-count computation.  :class:`BDD` objects are thin immutable handles
(manager + node id) with operator overloading, which is how the provenance
layer and operators manipulate absorption provenance::

    mgr = BDDManager()
    p1, p2, p3 = mgr.variables("p1", "p2", "p3")
    pv = (p1 & p2) | (p1 & p2 & p3)     # absorption collapses this to p1 & p2
    assert pv == (p1 & p2)
    assert pv.restrict({"p1": False}).is_false()

**Iterative kernel.**  The hot operations — ``_apply`` (AND/OR/XOR/DIFF),
``_negate``, ``_restrict`` and ``_support`` — run as explicit-stack loops over
the node table's flat arrays, with the arrays bound to locals and the
hash-consing inlined.  There is no Python recursion on these paths, so
provenance depth is bounded by memory, not by the interpreter's recursion
limit, and there is no per-step function-call overhead.

**Garbage collection.**  The node table is *compacting*: when the dead
fraction of the table crosses ``gc_threshold``, a mark-and-sweep pass drops
unreachable nodes, renumbers the survivors and rebuilds the unique table.
Roots are discovered automatically — every live :class:`BDD` handle registers
itself in a weak set at construction and is renumbered in place — and
subsystems that hold annotations in bulk (the runtime's per-port operator
state, the checkpoint codec, placement migration) additionally enroll through
:meth:`BDDManager.add_root_source` / :meth:`BDDManager.defer_gc`.  Collections
only ever run at the *end* of a public operation (never while a kernel loop
holds raw node ids), so callers never observe a dangling id.  The id-keyed
memo caches are *remapped* through the renumbering, so warm sub-results
survive a compaction.

All memo caches are **bounded**: when a cache reaches ``cache_limit`` entries
it is dropped wholesale (the classic BDD-package "cache reset" policy — the
node table itself, and therefore canonicity, is unaffected; subsequent
operations simply recompute).  Hit/miss/eviction counters for every cache are
surfaced through :meth:`BDDManager.cache_stats`, and GC/pause/peak-size
telemetry through :meth:`BDDManager.gc_stats`.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.bdd.node import FALSE, TRUE, NodeTable
from repro.obs.trace import GC_TID, KERNEL_PID, current_tracer

#: Estimated in-memory bytes per BDD node: variable index, low and high
#: pointers plus hash-table overhead.  Used for the "per-tuple provenance
#: overhead (B)" metric; JavaBDD nodes cost roughly the same.
BYTES_PER_NODE = 16

_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2
#: ``left AND NOT right`` — the ``deltaPv`` operation of Algorithm 1, run as a
#: single cache-keyed binary op instead of a negate followed by a conjoin.
_OP_DIFF = 3

#: Default bound on each memo cache (entries); reaching it drops the cache.
DEFAULT_CACHE_LIMIT = 1 << 20

#: Default dead-node fraction of the table that triggers a compaction.
DEFAULT_GC_THRESHOLD = 0.25

#: Default minimum table size before automatic GC is considered at all (and
#: the floor for the post-collection re-trigger size).
DEFAULT_GC_MIN_TABLE = 8192

#: Default table-growth factor between collections: after a compaction the
#: next pass triggers at ``live * gc_growth`` nodes.  Larger values trade a
#: proportionally higher bounded peak for fewer collection pauses.
DEFAULT_GC_GROWTH = 3.0

#: Handle-registry length at which dead weakrefs are swept out.
DEFAULT_HANDLE_PRUNE = 1 << 16

_weakref = weakref.ref


@dataclass
class CacheCounters:
    """Hit/miss/eviction counters for one memo cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self, size: int) -> Dict[str, int]:
        """A plain-dict view including the cache's current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": size,
        }


@dataclass
class BDDOperationStats:
    """Work counters for one manager: apply/restrict invocations and caches.

    ``apply_calls`` counts every step of the Shannon expansion in ``_apply``
    and ``restrict_calls`` every step of ``_restrict`` — the two numbers the
    batch-throughput benchmark compares between batched and tuple-at-a-time
    execution.
    """

    apply_calls: int = 0
    restrict_calls: int = 0
    apply: CacheCounters = field(default_factory=CacheCounters)
    negate: CacheCounters = field(default_factory=CacheCounters)
    restrict: CacheCounters = field(default_factory=CacheCounters)
    support: CacheCounters = field(default_factory=CacheCounters)
    size: CacheCounters = field(default_factory=CacheCounters)


@dataclass
class BDDGCStats:
    """Telemetry for the compacting garbage collector.

    ``passes`` counts every mark phase; a pass either ends in a
    ``compaction`` (table rebuilt, ids renumbered) or is ``skipped`` when the
    dead fraction was below the threshold (the trigger size backs off
    instead).  Pause times cover the whole pass, mark included.
    """

    passes: int = 0
    compactions: int = 0
    skipped: int = 0
    nodes_reclaimed: int = 0
    pause_seconds: float = 0.0
    max_pause_seconds: float = 0.0
    peak_table_size: int = 2


class BDDError(Exception):
    """Raised on misuse of the BDD layer (unknown variables, mixed managers)."""


class BDD:
    """An immutable handle to a Boolean function owned by a :class:`BDDManager`.

    Handles are weakly tracked by their manager: every live handle is a GC
    root, and a table compaction rewrites ``node`` in place — so the identity
    ``same function iff same (manager, node)`` keeps holding across
    collections, but raw ``node`` ids must never be stored outside a handle.
    """

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: "BDDManager", node: int) -> None:
        self.manager = manager
        self.node = node
        # Identity-tracked (a plain list of weakrefs, not a WeakSet: handles
        # of the same node compare equal, and a set would silently drop the
        # duplicates — every handle object must be renumbered on compaction).
        manager._handles.append(_weakref(self))

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        # The manager's identity hash is cached at manager construction; a
        # node id is a small int, so this is a single xor with no tuple
        # allocation or id() call on the hot dictionary paths.
        #
        # CAVEAT: a GC compaction rewrites ``node`` in place, so the hash of
        # a live handle can change across a collection.  Hash containers
        # keyed by handles must either be short-lived relative to GC (drop
        # them on staleness) or key by ``id(handle)`` instead; entries
        # inserted before a compaction degrade to cache misses, never to
        # wrong equality (``__eq__`` always compares current ids).
        return self.manager._id ^ self.node

    def __bool__(self) -> bool:
        raise TypeError(
            "BDD truth value is ambiguous; use .is_true() / .is_false() / .is_satisfiable()"
        )

    def __repr__(self) -> str:
        if self.is_false():
            return "BDD(False)"
        if self.is_true():
            return "BDD(True)"
        return f"BDD(node={self.node}, vars={sorted(self.support_names())})"

    # -- constants ---------------------------------------------------------
    def is_false(self) -> bool:
        """True iff this is the constant-false function (tuple not derivable)."""
        return self.node == FALSE

    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        return self.node == TRUE

    def is_satisfiable(self) -> bool:
        """True iff some assignment makes the function true.

        Because ROBDDs are canonical, any non-FALSE node is satisfiable.
        """
        return self.node != FALSE

    # -- boolean algebra ----------------------------------------------------
    def __and__(self, other: "BDD") -> "BDD":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "BDD") -> "BDD":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "BDD") -> "BDD":
        return self.manager.apply_xor(self, other)

    def __invert__(self) -> "BDD":
        return self.manager.negate(self)

    def implies(self, other: "BDD") -> bool:
        """Return True iff ``self -> other`` is a tautology."""
        return self.manager.diff(self, other).is_false()

    def equivalent(self, other: "BDD") -> bool:
        """Canonical equality: same manager node id."""
        return self == other

    # -- cofactors / restriction --------------------------------------------
    def restrict(self, assignment: Mapping[Hashable, bool]) -> "BDD":
        """Substitute constants for variables (by *name*) and simplify.

        This is the operation the paper calls ``restrict(oldPv, NOT u.pv)``
        for single-variable deletions: setting a deleted base tuple's variable
        to ``False`` everywhere.
        """
        return self.manager.restrict(self, assignment)

    def without(self, names: Iterable[Hashable]) -> "BDD":
        """Set every variable in ``names`` to False (deletion of base tuples)."""
        return self.manager.restrict(self, {name: False for name in names})

    def exist(self, names: Iterable[Hashable]) -> "BDD":
        """Existentially quantify the given variables out of the function."""
        return self.manager.exist(self, names)

    # -- structure / metrics -------------------------------------------------
    def node_count(self) -> int:
        """Number of decision nodes in this BDD (terminals excluded)."""
        return self.manager.node_count(self)

    def size_bytes(self) -> int:
        """Estimated encoded size of this provenance annotation in bytes."""
        return self.manager.size_bytes(self)

    def support(self) -> FrozenSet[int]:
        """Variable *indices* the function depends on."""
        return self.manager.support(self)

    def support_names(self) -> FrozenSet[Hashable]:
        """Variable *names* the function depends on."""
        return frozenset(self.manager.name_of(idx) for idx in self.support())

    def sat_count(self) -> int:
        """Number of satisfying assignments over the manager's declared variables."""
        return self.manager.sat_count(self)

    def any_sat(self) -> Optional[Dict[Hashable, bool]]:
        """Return one satisfying assignment (partial, by name) or None."""
        return self.manager.any_sat(self)

    def iter_products(self) -> Iterator[FrozenSet[Hashable]]:
        """Iterate over the positive-literal products of a monotone function.

        For absorption provenance (which is monotone in base tuples) this
        enumerates the minimal "witness" sets of base tuples, i.e. the
        prime implicants restricted to positive literals.  Useful for
        debugging and for the relative-provenance comparison.
        """
        return self.manager.iter_products(self)

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate under a *total* assignment of the support variables."""
        return self.manager.evaluate(self, assignment)


class BDDManager:
    """Creates variables and performs hash-consed BDD operations.

    Variables are identified by arbitrary hashable *names* (the provenance
    layer uses base-tuple keys); the manager assigns each a position in the
    global variable order in creation order.

    ``gc_threshold`` is the dead-node fraction of the table that triggers a
    compaction once the table holds at least ``gc_min_table`` nodes; ``0``
    disables automatic collection (explicit :meth:`collect` still works).
    """

    def __init__(
        self,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
        gc_threshold: float = DEFAULT_GC_THRESHOLD,
        gc_min_table: int = DEFAULT_GC_MIN_TABLE,
        gc_growth: float = DEFAULT_GC_GROWTH,
    ) -> None:
        if cache_limit <= 0:
            raise ValueError("cache_limit must be positive")
        if gc_threshold < 0 or gc_threshold > 1:
            raise ValueError("gc_threshold must be within [0, 1]")
        if gc_min_table < 2:
            raise ValueError("gc_min_table must be at least 2")
        if gc_growth < 1.0:
            raise ValueError("gc_growth must be at least 1.0")
        self.gc_growth = gc_growth
        self._table = NodeTable()
        self.cache_limit = cache_limit
        self.stats = BDDOperationStats()
        self.gc_threshold = gc_threshold
        self.gc_min_table = gc_min_table
        self.gc = BDDGCStats()
        #: Identity hash cached for :meth:`BDD.__hash__` (avoids per-hash id()).
        self._id = id(self)
        #: Weak references to every live handle into this manager (GC roots,
        #: renumbered in place).  Dead entries are pruned during collections
        #: and whenever the list outgrows ``_handle_prune_size``.
        self._handles: List["weakref.ref[BDD]"] = []
        self._handle_prune_size = DEFAULT_HANDLE_PRUNE
        #: Extra root providers: zero-arg callables yielding BDD handles.
        self._root_sources: List = []
        #: Table size at which the next automatic collection is considered.
        self._gc_trigger_size = gc_min_table
        #: Nesting depth of :meth:`defer_gc` sections (0 = GC allowed).
        self._gc_defer = 0
        #: Wall seconds spent inside the kernel loops (apply/negate/restrict).
        self._kernel_seconds = 0.0
        self._apply_cache: Dict[int, int] = {}
        self._not_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[Tuple[int, Tuple[Tuple[int, bool], ...]], int] = {}
        self._support_cache: Dict[int, FrozenSet[int]] = {}
        #: node id -> number of decision nodes reachable from it.  Node ids
        #: are stable between collections; compaction drops this memo along
        #: with every other id-keyed cache.
        self._size_cache: Dict[int, int] = {}
        self._index_by_name: Dict[Hashable, int] = {}
        self._name_by_index: List[Hashable] = []
        #: Canonical handles for the terminals and variables.  Terminal ids
        #: never move; variable handles are registered like any other handle,
        #: so compaction renumbers them in place.  Caching avoids a handle
        #: allocation per ``true``/``false``/``variable`` call on hot paths
        #: (at the cost of keeping each declared variable's node live).
        self._true_handle = BDD(self, TRUE)
        self._false_handle = BDD(self, FALSE)
        self._variable_handles: Dict[Hashable, BDD] = {}

    def _bound(self, cache: Dict, counters: CacheCounters) -> None:
        """Drop ``cache`` wholesale when it reaches the configured limit."""
        if len(cache) >= self.cache_limit:
            cache.clear()
            counters.evictions += 1

    def cache_stats(self) -> Dict[str, object]:
        """Work and cache counters (hits, misses, evictions, live entries)."""
        stats = self.stats
        return {
            "apply_calls": stats.apply_calls,
            "restrict_calls": stats.restrict_calls,
            "cache_limit": self.cache_limit,
            "apply": stats.apply.snapshot(len(self._apply_cache)),
            "negate": stats.negate.snapshot(len(self._not_cache)),
            "restrict": stats.restrict.snapshot(len(self._restrict_cache)),
            "support": stats.support.snapshot(len(self._support_cache)),
            "size": stats.size.snapshot(len(self._size_cache)),
        }

    # -- variable management ------------------------------------------------
    def variable(self, name: Hashable) -> BDD:
        """Return (creating if needed) the BDD for the single variable ``name``."""
        handle = self._variable_handles.get(name)
        if handle is not None:
            return handle
        index = self._index_by_name.get(name)
        if index is None:
            index = len(self._name_by_index)
            self._index_by_name[name] = index
            self._name_by_index.append(name)
        handle = BDD(self, self._table.make(index, FALSE, TRUE))
        self._variable_handles[name] = handle
        return handle

    def variables(self, *names: Hashable) -> Tuple[BDD, ...]:
        """Create several variables at once, in order."""
        return tuple(self.variable(name) for name in names)

    def has_variable(self, name: Hashable) -> bool:
        """True if ``name`` has been declared as a variable."""
        return name in self._index_by_name

    def name_of(self, index: int) -> Hashable:
        """Map a variable index back to its name."""
        return self._name_by_index[index]

    def index_of(self, name: Hashable) -> int:
        """Map a variable name to its order index (raises BDDError if unknown)."""
        try:
            return self._index_by_name[name]
        except KeyError as exc:
            raise BDDError(f"unknown BDD variable: {name!r}") from exc

    @property
    def variable_count(self) -> int:
        """Number of declared variables."""
        return len(self._name_by_index)

    @property
    def table_size(self) -> int:
        """Current number of nodes in the table (terminals included)."""
        return len(self._table)

    # -- constants ------------------------------------------------------------
    @property
    def true(self) -> BDD:
        """The constant-true function."""
        return self._true_handle

    @property
    def false(self) -> BDD:
        """The constant-false function."""
        return self._false_handle

    # -- core apply -----------------------------------------------------------
    def _check(self, *operands: BDD) -> None:
        for operand in operands:
            if operand.manager is not self:
                raise BDDError("cannot combine BDDs from different managers")

    def apply_and(self, left: BDD, right: BDD) -> BDD:
        """Conjunction (used when operators join tuples).

        Returns the *operand handle itself* when the result is one of the
        operands (absorption makes that the common case), avoiding a handle
        allocation and registry entry per suppressed delta.
        """
        if left.manager is not self or right.manager is not self:
            raise BDDError("cannot combine BDDs from different managers")
        node = self._apply(_OP_AND, left.node, right.node)
        if node == left.node:
            return left
        if node == right.node:
            return right
        result = BDD(self, node)
        self._maybe_collect()
        return result

    def apply_or(self, left: BDD, right: BDD) -> BDD:
        """Disjunction (used when a tuple gains an alternative derivation)."""
        if left.manager is not self or right.manager is not self:
            raise BDDError("cannot combine BDDs from different managers")
        node = self._apply(_OP_OR, left.node, right.node)
        if node == left.node:
            return left
        if node == right.node:
            return right
        result = BDD(self, node)
        self._maybe_collect()
        return result

    def apply_xor(self, left: BDD, right: BDD) -> BDD:
        """Exclusive-or (used by tests to compare functions)."""
        if left.manager is not self or right.manager is not self:
            raise BDDError("cannot combine BDDs from different managers")
        result = BDD(self, self._apply(_OP_XOR, left.node, right.node))
        self._maybe_collect()
        return result

    def diff(self, left: BDD, right: BDD) -> BDD:
        """``left AND NOT right`` as a single kernel operation.

        This is the ``deltaPv = newPv AND NOT oldPv`` step of Algorithm 1; a
        dedicated op avoids materialising the negation of ``right``.
        """
        if left.manager is not self or right.manager is not self:
            raise BDDError("cannot combine BDDs from different managers")
        node = self._apply(_OP_DIFF, left.node, right.node)
        if node == left.node:
            return left
        result = BDD(self, node)
        self._maybe_collect()
        return result

    def negate(self, operand: BDD) -> BDD:
        """Logical negation."""
        self._check(operand)
        result = BDD(self, self._negate(operand.node))
        self._maybe_collect()
        return result

    def conjoin(self, operands: Iterable[BDD]) -> BDD:
        """AND a collection of BDDs together, left to right (empty -> True)."""
        result = TRUE
        for operand in operands:
            self._check(operand)
            result = self._apply(_OP_AND, result, operand.node)
            if result == FALSE:
                break
        wrapped = BDD(self, result)
        self._maybe_collect()
        return wrapped

    def disjoin(self, operands: Iterable[BDD]) -> BDD:
        """OR a collection of BDDs together, left to right (empty -> False)."""
        result = FALSE
        for operand in operands:
            self._check(operand)
            result = self._apply(_OP_OR, result, operand.node)
            if result == TRUE:
                break
        wrapped = BDD(self, result)
        self._maybe_collect()
        return wrapped

    def conjoin_many(self, operands: Iterable[BDD]) -> BDD:
        """AND many BDDs with balanced-tree reduction (empty -> True).

        Pairwise reduction keeps the intermediate results small and the apply
        cache hot: a chain of ``k`` operands performs ``k - 1`` applies at
        depth ``log k`` instead of a depth-``k`` ladder whose left operand
        keeps regrowing.  The result is canonical, so it is bit-identical to
        the chained :meth:`conjoin`.
        """
        nodes: List[int] = []
        last = None
        for operand in operands:
            if operand.manager is not self:
                raise BDDError("cannot combine BDDs from different managers")
            node = operand.node
            if node == FALSE:
                return self._false_handle
            if node != TRUE:
                nodes.append(node)
                last = operand
        if not nodes:
            return self._true_handle
        if len(nodes) == 1:
            return last
        result = self._reduce_balanced(_OP_AND, nodes, TRUE, FALSE)
        if result == FALSE:
            return self._false_handle
        wrapped = BDD(self, result)
        self._maybe_collect()
        return wrapped

    def disjoin_many(self, operands: Iterable[BDD]) -> BDD:
        """OR many BDDs with balanced-tree reduction (empty -> False)."""
        nodes: List[int] = []
        last = None
        for operand in operands:
            if operand.manager is not self:
                raise BDDError("cannot combine BDDs from different managers")
            node = operand.node
            if node == TRUE:
                return self._true_handle
            if node != FALSE:
                nodes.append(node)
                last = operand
        if not nodes:
            return self._false_handle
        if len(nodes) == 1:
            return last
        result = self._reduce_balanced(_OP_OR, nodes, FALSE, TRUE)
        if result == TRUE:
            return self._true_handle
        wrapped = BDD(self, result)
        self._maybe_collect()
        return wrapped

    def _reduce_balanced(self, op: int, nodes: List[int], unit: int, absorbing: int) -> int:
        """Pairwise-reduce ``nodes`` under ``op`` (raw ids; no GC inside)."""
        if not nodes:
            return unit
        apply_ = self._apply
        while len(nodes) > 1:
            merged: List[int] = []
            for index in range(0, len(nodes) - 1, 2):
                result = apply_(op, nodes[index], nodes[index + 1])
                if result == absorbing:
                    return absorbing
                merged.append(result)
            if len(nodes) & 1:
                merged.append(nodes[-1])
            nodes = merged
        return nodes[0]

    def ite(self, cond: BDD, then: BDD, otherwise: BDD) -> BDD:
        """If-then-else composition: ``(cond AND then) OR (NOT cond AND otherwise)``."""
        self._check(cond, then, otherwise)
        positive = self._apply(_OP_AND, cond.node, then.node)
        negative = self._apply(_OP_AND, self._negate(cond.node), otherwise.node)
        result = BDD(self, self._apply(_OP_OR, positive, negative))
        self._maybe_collect()
        return result

    def _terminal_apply(self, op: int, left: int, right: int) -> Optional[int]:
        """Terminal-rule result of ``op`` on ``(left, right)``, or None.

        Kept as a helper for the *entry* fast path only; the kernel loop
        inlines the same rules per step.
        """
        if op == _OP_AND:
            if left == 0 or right == 0:
                return 0
            if left == 1:
                return right
            if right == 1 or left == right:
                return left
        elif op == _OP_OR:
            if left == 1 or right == 1:
                return 1
            if left == 0:
                return right
            if right == 0 or left == right:
                return left
        elif op == _OP_XOR:
            if left == right:
                return 0
            if left == 0:
                return right
            if right == 0:
                return left
        else:  # DIFF: left AND NOT right
            if left == 0 or right == 1 or left == right:
                return 0
            if right == 0:
                return left
        return None

    def _apply(self, op: int, left: int, right: int) -> int:
        """Iterative Shannon expansion for the binary ops (no Python recursion).

        The entry fast path resolves terminal rules and root cache hits
        without touching the loop machinery (the overwhelmingly common case
        for absorption workloads, where most public ops are small deltas
        against already-seen operands).  Frames on the explicit stack are
        ``(False, left, right)`` expansions and ``(True, cache_key, var)``
        combinations; completed sub-results flow through ``results`` in
        post-order.  The node-table arrays and the unique table are bound to
        locals and the hash-consing is inlined, so a step costs
        dictionary/list operations only.
        """
        t0 = _perf_counter()
        stats = self.stats
        # -- entry fast path: terminal rule or root cache hit ----------------
        terminal = self._terminal_apply(op, left, right)
        if terminal is not None:
            stats.apply_calls += 1
            self._kernel_seconds += _perf_counter() - t0
            return terminal
        is_diff = op == _OP_DIFF
        if not is_diff and left > right:
            # Canonicalise commutative operand order for cache hit rates.
            left, right = right, left
        cache = self._apply_cache
        cache_get = cache.get
        root_key = (((left << 32) | right) << 2) | op
        cached = cache_get(root_key)
        if cached is not None:
            stats.apply_calls += 1
            stats.apply.hits += 1
            self._kernel_seconds += _perf_counter() - t0
            return cached
        # -- slow path: explicit-stack expansion -----------------------------
        counters = stats.apply
        table = self._table
        var_arr = table._var
        low_arr = table._low
        high_arr = table._high
        unique = table._unique
        unique_get = unique.get
        #: Remaining cache inserts before the bounded cache resets; computed
        #: once per kernel call instead of a len() per insert.
        room = self.cache_limit - len(cache)

        calls = 1
        hits = 0
        misses = 1
        results: List[int] = []
        push_result = results.append
        lvar = var_arr[left]
        rvar = var_arr[right]
        if lvar < rvar:
            var = lvar
            stack = [
                (True, root_key, var),
                (False, high_arr[left], right),
                (False, low_arr[left], right),
            ]
        elif rvar < lvar:
            var = rvar
            stack = [
                (True, root_key, var),
                (False, left, high_arr[right]),
                (False, left, low_arr[right]),
            ]
        else:
            var = lvar
            stack = [
                (True, root_key, var),
                (False, high_arr[left], high_arr[right]),
                (False, low_arr[left], low_arr[right]),
            ]
        push = stack.append
        pop = stack.pop
        while stack:
            combine, a, b = pop()
            if combine:
                # a = cache key, b = decision variable.
                high = results.pop()
                low = results[-1]
                if low == high:
                    node = low
                else:
                    bucket = unique_get(b)
                    if bucket is None:
                        bucket = unique[b] = {}
                    ukey = (low << 32) | high
                    node = bucket.get(ukey)
                    if node is None:
                        node = len(var_arr)
                        var_arr.append(b)
                        low_arr.append(low)
                        high_arr.append(high)
                        bucket[ukey] = node
                if room <= 0:
                    cache.clear()
                    counters.evictions += 1
                    room = self.cache_limit
                cache[a] = node
                room -= 1
                results[-1] = node
                continue
            calls += 1
            # Terminal rules, inlined per op (a = left, b = right).
            if op == _OP_AND:
                if a == 0 or b == 0:
                    push_result(0)
                    continue
                if a == 1:
                    push_result(b)
                    continue
                if b == 1 or a == b:
                    push_result(a)
                    continue
            elif op == _OP_OR:
                if a == 1 or b == 1:
                    push_result(1)
                    continue
                if a == 0:
                    push_result(b)
                    continue
                if b == 0 or a == b:
                    push_result(a)
                    continue
            elif op == _OP_XOR:
                if a == b:
                    push_result(0)
                    continue
                if a == 0:
                    push_result(b)
                    continue
                if b == 0:
                    push_result(a)
                    continue
            else:  # DIFF: a AND NOT b
                if a == 0 or b == 1 or a == b:
                    push_result(0)
                    continue
                if b == 0:
                    push_result(a)
                    continue
                # a == 1 falls through: DIFF(1, b) expands into the negation
                # of b through the same cache (terminal cofactors handle it).
            if not is_diff and a > b:
                a, b = b, a
            key = (((a << 32) | b) << 2) | op
            cached = cache_get(key)
            if cached is not None:
                hits += 1
                push_result(cached)
                continue
            misses += 1
            lvar = var_arr[a]
            rvar = var_arr[b]
            if lvar < rvar:
                push((True, key, lvar))
                push((False, high_arr[a], b))
                push((False, low_arr[a], b))
            elif rvar < lvar:
                push((True, key, rvar))
                push((False, a, high_arr[b]))
                push((False, a, low_arr[b]))
            else:
                push((True, key, lvar))
                push((False, high_arr[a], high_arr[b]))
                push((False, low_arr[a], low_arr[b]))
        stats.apply_calls += calls
        counters.hits += hits
        counters.misses += misses
        self._kernel_seconds += _perf_counter() - t0
        return results[0]

    def _negate(self, node: int) -> int:
        """Iterative negation (explicit stack, memoised per node)."""
        if node <= TRUE:
            return 1 - node
        t0 = _perf_counter()
        counters = self.stats.negate
        cache = self._not_cache
        cache_get = cache.get
        cached = cache_get(node)
        if cached is not None:
            counters.hits += 1
            self._kernel_seconds += _perf_counter() - t0
            return cached
        table = self._table
        var_arr = table._var
        low_arr = table._low
        high_arr = table._high
        make = table.make
        room = self.cache_limit - len(cache)

        hits = 0
        misses = 1
        results: List[int] = []
        push_result = results.append
        stack: List[Tuple[bool, int]] = [
            (True, node),
            (False, high_arr[node]),
            (False, low_arr[node]),
        ]
        push = stack.append
        pop = stack.pop
        while stack:
            combine, n = pop()
            if combine:
                high = results.pop()
                low = results[-1]
                result = make(var_arr[n], low, high)
                if room <= 0:
                    cache.clear()
                    counters.evictions += 1
                    room = self.cache_limit
                cache[n] = result
                room -= 1
                results[-1] = result
                continue
            if n <= TRUE:
                push_result(1 - n)
                continue
            cached = cache_get(n)
            if cached is not None:
                hits += 1
                push_result(cached)
                continue
            misses += 1
            push((True, n))
            push((False, high_arr[n]))
            push((False, low_arr[n]))
        counters.hits += hits
        counters.misses += misses
        self._kernel_seconds += _perf_counter() - t0
        return results[0]

    # -- restriction / quantification -----------------------------------------
    def restrict(self, operand: BDD, assignment: Mapping[Hashable, bool]) -> BDD:
        """Substitute constants for named variables.

        Unknown variable names are ignored (they cannot occur in the function),
        which lets callers blindly zero out deleted base tuples.  The common
        single-variable case skips the sort and mapping rebuild entirely.
        """
        self._check(operand)
        index_by_name = self._index_by_name
        if len(assignment) == 1:
            ((name, value),) = assignment.items()
            index = index_by_name.get(name)
            if index is None:
                return operand
            value = bool(value)
            node = self._restrict(operand.node, {index: value}, ((index, value),))
            result = BDD(self, node)
            self._maybe_collect()
            return result
        indexed: List[Tuple[int, bool]] = []
        for name, value in assignment.items():
            index = index_by_name.get(name)
            if index is not None:
                indexed.append((index, bool(value)))
        if not indexed:
            return operand
        indexed.sort()
        key_suffix = tuple(indexed)
        mapping = dict(indexed)
        node = self._restrict(operand.node, mapping, key_suffix)
        result = BDD(self, node)
        self._maybe_collect()
        return result

    def _restrict(
        self,
        node: int,
        mapping: Dict[int, bool],
        key_suffix: Tuple[Tuple[int, bool], ...],
    ) -> int:
        """Iterative restriction (explicit stack; no Python recursion).

        Frame tags: ``0`` expand, ``1`` combine two child results, ``2`` cache
        a passthrough result (the node's variable was assigned a constant).
        """
        if node <= TRUE:
            return node
        t0 = _perf_counter()
        stats = self.stats
        cache = self._restrict_cache
        cache_get = cache.get
        cached = cache_get((node, key_suffix))
        if cached is not None:
            stats.restrict_calls += 1
            stats.restrict.hits += 1
            self._kernel_seconds += _perf_counter() - t0
            return cached
        counters = stats.restrict
        table = self._table
        var_arr = table._var
        low_arr = table._low
        high_arr = table._high
        make = table.make
        get_assigned = mapping.get
        room = self.cache_limit - len(cache)

        calls = 1
        hits = 0
        misses = 1
        results: List[int] = []
        push_result = results.append
        assigned = get_assigned(var_arr[node])
        if assigned is None:
            stack = [(1, node), (0, high_arr[node]), (0, low_arr[node])]
        else:
            stack = [(2, node), (0, high_arr[node] if assigned else low_arr[node])]
        push = stack.append
        pop = stack.pop
        while stack:
            tag, n = pop()
            if tag == 0:
                if n <= TRUE:
                    push_result(n)
                    continue
                calls += 1
                cached = cache_get((n, key_suffix))
                if cached is not None:
                    hits += 1
                    push_result(cached)
                    continue
                misses += 1
                assigned = get_assigned(var_arr[n])
                if assigned is None:
                    push((1, n))
                    push((0, high_arr[n]))
                    push((0, low_arr[n]))
                else:
                    push((2, n))
                    push((0, high_arr[n] if assigned else low_arr[n]))
            elif tag == 1:
                high = results.pop()
                low = results[-1]
                result = make(var_arr[n], low, high)
                if room <= 0:
                    cache.clear()
                    counters.evictions += 1
                    room = self.cache_limit
                cache[(n, key_suffix)] = result
                room -= 1
                results[-1] = result
            else:
                if room <= 0:
                    cache.clear()
                    counters.evictions += 1
                    room = self.cache_limit
                cache[(n, key_suffix)] = results[-1]
                room -= 1
        stats.restrict_calls += calls
        counters.hits += hits
        counters.misses += misses
        self._kernel_seconds += _perf_counter() - t0
        return results[0]

    def exist(self, operand: BDD, names: Iterable[Hashable]) -> BDD:
        """Existential quantification over the named variables."""
        self._check(operand)
        result = operand
        for name in names:
            if name not in self._index_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = self.apply_or(low, high)
        return result

    # -- garbage collection ------------------------------------------------------
    def add_root_source(self, provider) -> None:
        """Enroll an extra GC root provider.

        ``provider`` is a zero-argument callable returning an iterable of
        :class:`BDD` handles (raw node ids are also accepted for marking, but
        only handles are renumbered — always yield handles), or ``None`` to
        signal that its owner is gone, which deregisters the provider at the
        next collection (so node rebuilds under fault/elastic churn cannot
        accumulate dead providers).  Live handles are tracked automatically;
        sources exist for subsystems that hold annotations in bulk (operator
        state tables, codecs, migration) to make their enrollment in the
        root protocol explicit and robust.
        """
        self._root_sources.append(provider)

    def remove_root_source(self, provider) -> None:
        """Withdraw a provider previously passed to :meth:`add_root_source`."""
        self._root_sources.remove(provider)

    @contextmanager
    def defer_gc(self):
        """Context manager: suspend automatic collection within the block.

        Used by codec paths (serialize/deserialize, checkpoint capture and
        restore, migration slices) that interleave many small kernel calls:
        deferral batches what would be several small collections into at most
        one at block exit.
        """
        self._gc_defer += 1
        try:
            yield self
        finally:
            self._gc_defer -= 1
            if not self._gc_defer:
                self._maybe_collect()

    def _maybe_collect(self) -> None:
        """Run a collection pass when the table has outgrown the trigger size."""
        if (
            len(self._table._var) >= self._gc_trigger_size
            and self.gc_threshold > 0.0
            and not self._gc_defer
        ):
            self.collect()
        elif len(self._handles) >= self._handle_prune_size:
            self._prune_handles()

    def _prune_handles(self) -> None:
        """Sweep dead weakrefs out of the handle registry."""
        self._handles = [ref for ref in self._handles if ref() is not None]
        self._handle_prune_size = max(2 * len(self._handles), DEFAULT_HANDLE_PRUNE)

    def collect(self, force: bool = False) -> Dict[str, object]:
        """Mark-and-sweep the node table; compact and renumber when worthwhile.

        Roots are every live :class:`BDD` handle plus anything yielded by the
        enrolled root sources.  When the dead fraction reaches
        ``gc_threshold`` (or ``force`` is true) the table is compacted, every
        live handle's node id is rewritten in place, and the id-keyed memo
        caches are remapped through the renumbering; otherwise the pass only
        backs off the trigger size.  Returns a summary of the pass.
        """
        tracer = current_tracer()
        span = None
        if tracer.enabled:
            # GC runs are rare and already pay a full table scan, so looking
            # up the global tracer here (instead of plumbing one through every
            # manager owner) costs nothing measurable.  The node-context pid
            # attributes passes triggered inside a delivery to that node's
            # track; passes outside any handler land on the shared
            # ``bdd-kernel`` track.
            span = tracer.begin(
                tracer.context_pid(KERNEL_PID),
                "gc-pass",
                "gc",
                tid=GC_TID,
                args={"forced": force},
            )
        t0 = _perf_counter()
        gc = self.gc
        table = self._table
        low_arr = table._low
        high_arr = table._high
        size = len(low_arr)
        if size > gc.peak_table_size:
            gc.peak_table_size = size

        marked = bytearray(size)
        marked[FALSE] = 1
        marked[TRUE] = 1
        stack: List[int] = []
        push = stack.append
        # Strong-ref the live handles for the duration of the pass (they are
        # both the root set and the renumbering targets) and prune dead refs.
        handles: List[BDD] = []
        live_refs: List["weakref.ref[BDD]"] = []
        for ref in self._handles:
            handle = ref()
            if handle is None:
                continue
            handles.append(handle)
            live_refs.append(ref)
            n = handle.node
            if not marked[n]:
                marked[n] = 1
                push(n)
        self._handles = live_refs
        self._handle_prune_size = max(2 * len(live_refs), DEFAULT_HANDLE_PRUNE)
        live_sources = []
        for source in self._root_sources:
            roots = source()
            if roots is None:
                continue  # owner gone: deregister by omission
            live_sources.append(source)
            for item in roots:
                n = item.node if isinstance(item, BDD) else item
                if not marked[n]:
                    marked[n] = 1
                    push(n)
        self._root_sources = live_sources
        pop = stack.pop
        while stack:
            n = pop()
            child = low_arr[n]
            if not marked[child]:
                marked[child] = 1
                push(child)
            child = high_arr[n]
            if not marked[child]:
                marked[child] = 1
                push(child)

        live = sum(marked)
        dead = size - live
        gc.passes += 1
        compacted = force or (size > 0 and dead >= size * self.gc_threshold)
        if compacted:
            remap = table.compact(marked)
            for handle in handles:
                handle.node = remap[handle.node]
            self._remap_caches(marked, remap)
            gc.compactions += 1
            gc.nodes_reclaimed += dead
            self._gc_trigger_size = max(int(live * self.gc_growth), self.gc_min_table)
        else:
            gc.skipped += 1
            self._gc_trigger_size = max(int(size * self.gc_growth), self.gc_min_table)
        pause = _perf_counter() - t0
        gc.pause_seconds += pause
        if pause > gc.max_pause_seconds:
            gc.max_pause_seconds = pause
        summary = {
            "compacted": compacted,
            "live_nodes": live,
            "dead_nodes": dead,
            "reclaimed": dead if compacted else 0,
            "pause_s": pause,
        }
        if span is not None:
            tracer.end(span, args=summary)
        return summary

    def _remap_caches(self, marked: bytearray, remap: List[int]) -> None:
        """Renumber the memo caches through ``remap`` instead of dropping them.

        Every cached sub-result over surviving nodes stays warm across the
        compaction (recomputing them is far costlier than one dict rebuild);
        entries touching reclaimed nodes are dropped.  Memoised *values*
        (node counts, support sets) are id-independent and survive verbatim.
        """
        apply_cache = self._apply_cache
        rebuilt: Dict[int, int] = {}
        for key, value in apply_cache.items():
            if not marked[value]:
                continue
            operands = key >> 2
            a = operands >> 32
            b = operands & 0xFFFFFFFF
            if marked[a] and marked[b]:
                rebuilt[(((remap[a] << 32) | remap[b]) << 2) | (key & 3)] = remap[value]
        self._apply_cache = rebuilt
        self._not_cache = {
            remap[node]: remap[value]
            for node, value in self._not_cache.items()
            if marked[node] and marked[value]
        }
        self._restrict_cache = {
            (remap[node], suffix): remap[value]
            for (node, suffix), value in self._restrict_cache.items()
            if marked[node] and marked[value]
        }
        self._support_cache = {
            remap[node]: value
            for node, value in self._support_cache.items()
            if marked[node]
        }
        self._size_cache = {
            remap[node]: value
            for node, value in self._size_cache.items()
            if marked[node]
        }

    @property
    def kernel_seconds(self) -> float:
        """Cumulative wall seconds spent inside the kernel loops (monotonic).

        The tracer diffs this around each delivery to synthesise per-node
        kernel-time spans; ``gc_stats`` reports it as ``kernel_time_s``.
        """
        return self._kernel_seconds

    def gc_stats(self) -> Dict[str, object]:
        """Kernel telemetry: table sizes, reclamation counters, pauses, time.

        ``kernel_time_s`` is the cumulative wall time spent inside the
        iterative kernel loops (apply/negate/restrict); GC pauses are counted
        separately.
        """
        gc = self.gc
        size = len(self._table)
        if size > gc.peak_table_size:
            gc.peak_table_size = size
        return {
            "table_size": size,
            "peak_table_size": gc.peak_table_size,
            "nodes_reclaimed": gc.nodes_reclaimed,
            "gc_passes": gc.passes,
            "gc_compactions": gc.compactions,
            "gc_skipped": gc.skipped,
            "gc_pause_s": gc.pause_seconds,
            "gc_max_pause_s": gc.max_pause_seconds,
            "gc_threshold": self.gc_threshold,
            "gc_trigger_size": self._gc_trigger_size,
            "kernel_time_s": self._kernel_seconds,
        }

    # -- structural queries -----------------------------------------------------
    def node_count(self, operand: BDD) -> int:
        """Count decision nodes reachable from ``operand`` (terminals excluded).

        Memoised per canonical root node: annotations are re-measured on
        every send (the per-tuple provenance metric) and on every state-bytes
        probe.  Node ids are stable between collections, and the memo is
        dropped on compaction, so the count can never go stale.
        """
        self._check(operand)
        root = operand.node
        if root <= TRUE:
            return 0
        cached = self._size_cache.get(root)
        if cached is not None:
            self.stats.size.hits += 1
            return cached
        self.stats.size.misses += 1
        table = self._table
        low_arr = table._low
        high_arr = table._high
        seen: Set[int] = {root}
        add = seen.add
        stack = [root]
        push = stack.append
        pop = stack.pop
        while stack:
            node = pop()
            child = low_arr[node]
            if child > TRUE and child not in seen:
                add(child)
                push(child)
            child = high_arr[node]
            if child > TRUE and child not in seen:
                add(child)
                push(child)
        self._bound(self._size_cache, self.stats.size)
        self._size_cache[root] = len(seen)
        return len(seen)

    def size_bytes(self, operand: BDD) -> int:
        """Approximate wire/memory size of the annotation in bytes.

        Terminals (True/False annotations) still cost a small constant, which
        matches the paper's observation that set-semantics execution (DRed)
        has a small but non-zero per-tuple overhead.
        """
        count = self.node_count(operand)
        return max(count, 1) * BYTES_PER_NODE

    def support(self, operand: BDD) -> FrozenSet[int]:
        """Set of variable indices the function depends on."""
        self._check(operand)
        return self._support(operand.node)

    def _support(self, node: int) -> FrozenSet[int]:
        """Iterative support computation, memoised per root node.

        The traversal consults the memo for every *sub*-node as well: under
        hash-consing, annotations share subgraphs heavily, so a scan over a
        provenance table (the purge fast path) pays only for nodes no earlier
        support query has reached.  The walk is a kernel loop over the node
        table, so its time bills to ``kernel_time_s`` like apply/restrict.
        """
        if node <= TRUE:
            return frozenset()
        cache = self._support_cache
        cached = cache.get(node)
        if cached is not None:
            self.stats.support.hits += 1
            return cached
        self.stats.support.misses += 1
        t0 = _perf_counter()
        table = self._table
        var_arr = table._var
        low_arr = table._low
        high_arr = table._high
        variables: Set[int] = set()
        seen: Set[int] = {node}
        stack = [node]
        while stack:
            n = stack.pop()
            variables.add(var_arr[n])
            for child in (low_arr[n], high_arr[n]):
                if child > TRUE and child not in seen:
                    seen.add(child)
                    known = cache.get(child)
                    if known is not None:
                        variables.update(known)
                    else:
                        stack.append(child)
        result = frozenset(variables)
        self._bound(cache, self.stats.support)
        cache[node] = result
        self._kernel_seconds += _perf_counter() - t0
        return result

    def sat_count(self, operand: BDD) -> int:
        """Number of satisfying assignments over all declared variables."""
        self._check(operand)
        total_vars = self.variable_count
        cache: Dict[int, int] = {}
        table = self._table

        def count(node: int) -> int:
            # Returns #solutions over variables strictly below `level(node)`,
            # normalised at the end.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            if node in cache:
                return cache[node]
            var, low, high = table.triple(node)
            low_count = count(low) << (self._gap(low) - var - 1)
            high_count = count(high) << (self._gap(high) - var - 1)
            result = low_count + high_count
            cache[node] = result
            return result

        root = operand.node
        if root == FALSE:
            return 0
        if root == TRUE:
            return 1 << total_vars
        return count(root) << (table.var_of(root))

    def _gap(self, node: int) -> int:
        if node <= TRUE:
            return self.variable_count
        return self._table.var_of(node)

    def any_sat(self, operand: BDD) -> Optional[Dict[Hashable, bool]]:
        """Return one (partial) satisfying assignment keyed by variable name."""
        self._check(operand)
        node = operand.node
        if node == FALSE:
            return None
        assignment: Dict[Hashable, bool] = {}
        table = self._table
        while node > TRUE:
            var, low, high = table.triple(node)
            if high != FALSE:
                assignment[self._name_by_index[var]] = True
                node = high
            else:
                assignment[self._name_by_index[var]] = False
                node = low
        return assignment

    def evaluate(self, operand: BDD, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        self._check(operand)
        node = operand.node
        table = self._table
        while node > TRUE:
            var = table.var_of(node)
            name = self._name_by_index[var]
            if name not in assignment:
                raise BDDError(f"assignment missing variable {name!r}")
            node = table.high_of(node) if assignment[name] else table.low_of(node)
        return node == TRUE

    def iter_products(self, operand: BDD) -> Iterator[FrozenSet[Hashable]]:
        """Enumerate positive-literal products of a monotone function.

        Each yielded frozenset of variable names, when all set to True (and all
        other variables False), satisfies the function.  For monotone functions
        (absorption provenance) these are exactly the minimal support sets of
        derivations that survive absorption.
        """
        self._check(operand)
        table = self._table
        seen: Set[FrozenSet[Hashable]] = set()

        def walk(node: int, acc: Tuple[Hashable, ...]) -> Iterator[FrozenSet[Hashable]]:
            if node == FALSE:
                return
            if node == TRUE:
                product = frozenset(acc)
                if product not in seen:
                    seen.add(product)
                    yield product
                return
            var, low, high = table.triple(node)
            name = self._name_by_index[var]
            yield from walk(low, acc)
            yield from walk(high, acc + (name,))

        yield from walk(operand.node, ())

    # -- conversion -------------------------------------------------------------
    def from_products(self, products: Iterable[Iterable[Hashable]]) -> BDD:
        """Build the disjunction of conjunctions of the named variables.

        ``from_products([["p1", "p2"], ["p3"]])`` is ``(p1 & p2) | p3``.
        """
        terms = [
            self.conjoin_many([self.variable(name) for name in product])
            for product in products
        ]
        return self.disjoin_many(terms)

    def clear_caches(self) -> None:
        """Drop operation caches (the node table itself is kept).

        Counters survive the clear — they describe cumulative work, not the
        current cache contents.  The node-count memo is also dropped; it will
        repopulate with identical values (node ids are stable between
        collections).
        """
        self._apply_cache.clear()
        self._not_cache.clear()
        self._restrict_cache.clear()
        self._support_cache.clear()
        self._size_cache.clear()
