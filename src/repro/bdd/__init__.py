"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

This package is the substrate for *absorption provenance* (Section 4 of the
paper): every view tuple is annotated with a Boolean expression over base-tuple
variables, and the expression is stored canonically as a BDD so that Boolean
absorption (``a AND (a OR b) == a``) happens automatically through hash-consing.

The public surface mirrors what the paper uses from JavaBDD:

* :class:`~repro.bdd.manager.BDDManager` — creates variables and combines
  functions with AND / OR / NOT / ITE / restrict.
* :class:`~repro.bdd.manager.BDD` — an immutable handle to a Boolean function.
* :mod:`repro.bdd.expr` — a symbolic sum-of-products representation used as a
  comparison point (ablation) and for human-readable provenance dumps.
* :mod:`repro.bdd.serialize` — a compact manager-independent encoding used by
  the fault-tolerance subsystem to checkpoint provenance annotations.
"""

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.expr import BoolExpr, Conjunction, Disjunction, Literal, FALSE_EXPR, TRUE_EXPR
from repro.bdd.serialize import (
    SerializedBDD,
    bdd_from_bytes,
    bdd_to_bytes,
    deserialize_bdd,
    serialize_bdd,
)

__all__ = [
    "BDD",
    "BDDManager",
    "BoolExpr",
    "Conjunction",
    "Disjunction",
    "Literal",
    "TRUE_EXPR",
    "FALSE_EXPR",
    "SerializedBDD",
    "serialize_bdd",
    "deserialize_bdd",
    "bdd_to_bytes",
    "bdd_from_bytes",
]
