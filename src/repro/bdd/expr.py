"""Symbolic sum-of-products Boolean expressions.

The paper chooses BDDs as the physical encoding of absorption provenance but
notes that expressions *could* be normalised to sum-of-products form with
explicit absorption logic.  This module implements that alternative encoding.
It is used:

* as an ablation point (``benchmarks/test_ablation_provenance_encoding.py``)
  comparing encoding sizes of BDDs vs. minimised DNF;
* to render human-readable provenance in examples and error messages;
* in property tests as an independent oracle for the BDD implementation.

An expression is kept as a set of *products*; each product is a frozenset of
positive literals (base-tuple variable names).  Absorption prunes any product
that is a superset of another product, which is exactly the Boolean law
``a OR (a AND b) == a`` that gives absorption provenance its name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

Product = FrozenSet[Hashable]


def _absorb(products: Iterable[Product]) -> FrozenSet[Product]:
    """Drop any product that is a strict superset of another product."""
    unique = set(products)
    kept: Set[Product] = set()
    for candidate in sorted(unique, key=len):
        if not any(existing <= candidate for existing in kept):
            kept.add(candidate)
    return frozenset(kept)


@dataclass(frozen=True)
class BoolExpr:
    """A monotone Boolean expression in minimised sum-of-products form.

    ``products`` is a frozenset of frozensets of variable names.  The empty
    set of products is ``False``; a products set containing the empty product
    is ``True`` (it absorbs everything else).
    """

    products: FrozenSet[Product] = field(default_factory=frozenset)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def false() -> "BoolExpr":
        """The constant-false expression (no derivations)."""
        return FALSE_EXPR

    @staticmethod
    def true() -> "BoolExpr":
        """The constant-true expression."""
        return TRUE_EXPR

    @staticmethod
    def variable(name: Hashable) -> "BoolExpr":
        """A single base-tuple variable."""
        return BoolExpr(frozenset({frozenset({name})}))

    @staticmethod
    def from_products(products: Iterable[Iterable[Hashable]]) -> "BoolExpr":
        """Build an expression from an iterable of products (OR of ANDs)."""
        return BoolExpr(_absorb(frozenset(product) for product in products))

    # -- predicates ----------------------------------------------------------
    def is_false(self) -> bool:
        """True iff no derivation exists."""
        return not self.products

    def is_true(self) -> bool:
        """True iff the expression is the constant True."""
        return frozenset() in self.products

    # -- algebra ---------------------------------------------------------------
    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr(_absorb(self.products | other.products))

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        if self.is_false() or other.is_false():
            return FALSE_EXPR
        combined = {
            mine | theirs for mine in self.products for theirs in other.products
        }
        return BoolExpr(_absorb(combined))

    def without(self, names: Iterable[Hashable]) -> "BoolExpr":
        """Set the named variables to False: drop every product using them."""
        removed = set(names)
        remaining = {
            product for product in self.products if not (product & removed)
        }
        return BoolExpr(frozenset(remaining))

    def restrict(self, assignment: Mapping[Hashable, bool]) -> "BoolExpr":
        """Substitute constants for variables (True literals are removed from products)."""
        false_names = {name for name, value in assignment.items() if not value}
        true_names = {name for name, value in assignment.items() if value}
        products = []
        for product in self.products:
            if product & false_names:
                continue
            products.append(product - true_names)
        return BoolExpr(_absorb(products))

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate under an assignment (missing variables default to False)."""
        for product in self.products:
            if all(assignment.get(name, False) for name in product):
                return True
        return False

    # -- metrics -----------------------------------------------------------------
    def variables(self) -> FrozenSet[Hashable]:
        """All variables mentioned by the expression."""
        names: Set[Hashable] = set()
        for product in self.products:
            names |= product
        return frozenset(names)

    def literal_count(self) -> int:
        """Total number of literal occurrences (DNF size)."""
        return sum(len(product) for product in self.products)

    def size_bytes(self) -> int:
        """Approximate encoded size: 8 bytes per literal plus 4 per product."""
        return max(8 * self.literal_count() + 4 * len(self.products), 8)

    def __repr__(self) -> str:
        if self.is_false():
            return "BoolExpr(False)"
        if self.is_true():
            return "BoolExpr(True)"
        rendered = " | ".join(
            "(" + " & ".join(str(name) for name in sorted(product, key=str)) + ")"
            for product in sorted(self.products, key=lambda p: sorted(map(str, p)))
        )
        return f"BoolExpr({rendered})"


def Literal(name: Hashable) -> BoolExpr:
    """Convenience constructor for a single-variable expression."""
    return BoolExpr.variable(name)


def Conjunction(*names: Hashable) -> BoolExpr:
    """Convenience constructor for a single product of variables."""
    return BoolExpr.from_products([names])


def Disjunction(*exprs: BoolExpr) -> BoolExpr:
    """Convenience constructor OR-ing several expressions together."""
    result = FALSE_EXPR
    for expr in exprs:
        result = result | expr
    return result


#: The constant-false expression.
FALSE_EXPR = BoolExpr(frozenset())
#: The constant-true expression.
TRUE_EXPR = BoolExpr(frozenset({frozenset()}))
