"""Node storage for the ROBDD manager.

Nodes are stored in flat parallel arrays inside :class:`NodeTable` and are
referenced by integer ids.  Two ids are reserved:

* ``0`` — the ``FALSE`` terminal
* ``1`` — the ``TRUE`` terminal

Every other id refers to a decision node ``(var, low, high)`` where ``low`` is
the cofactor for ``var = 0`` and ``high`` the cofactor for ``var = 1``.  The
table enforces the two ROBDD invariants:

* *No redundant tests*: a node with ``low == high`` is never created; the
  shared child id is returned instead.
* *Uniqueness*: the ``(var, low, high)`` triple is hash-consed, so structurally
  equal functions share the same id and equality checks are O(1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Reserved node id for the constant ``False`` function.
FALSE = 0
#: Reserved node id for the constant ``True`` function.
TRUE = 1

#: Variable index used by the terminal nodes; larger than any real variable so
#: that the "top variable" of a pair of nodes is always well defined.
TERMINAL_VAR = 1 << 60


class NodeTable:
    """Hash-consed storage for BDD nodes.

    The table only creates canonical nodes; callers (the manager) are
    responsible for variable ordering being respected, which it is by
    construction of the Shannon expansion in ``BDDManager._apply``.
    """

    __slots__ = ("_var", "_low", "_high", "_unique")

    def __init__(self) -> None:
        # Slot 0 is FALSE, slot 1 is TRUE.
        self._var: List[int] = [TERMINAL_VAR, TERMINAL_VAR]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}

    def __len__(self) -> int:
        return len(self._var)

    def var_of(self, node: int) -> int:
        """Return the decision variable of ``node`` (``TERMINAL_VAR`` for terminals)."""
        return self._var[node]

    def low_of(self, node: int) -> int:
        """Return the ``var = 0`` cofactor of ``node``."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """Return the ``var = 1`` cofactor of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """Return True for the FALSE/TRUE terminals."""
        return node <= TRUE

    def make(self, var: int, low: int, high: int) -> int:
        """Return the canonical node id for ``(var, low, high)``.

        Applies the reduction rules: merges redundant tests and reuses
        existing isomorphic nodes.
        """
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def triple(self, node: int) -> Tuple[int, int, int]:
        """Return ``(var, low, high)`` of ``node`` (terminals included)."""
        return self._var[node], self._low[node], self._high[node]
