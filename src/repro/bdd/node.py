"""Node storage for the ROBDD manager.

Nodes are stored in flat parallel arrays inside :class:`NodeTable` and are
referenced by integer ids.  Two ids are reserved:

* ``0`` — the ``FALSE`` terminal
* ``1`` — the ``TRUE`` terminal

Every other id refers to a decision node ``(var, low, high)`` where ``low`` is
the cofactor for ``var = 0`` and ``high`` the cofactor for ``var = 1``.  The
table enforces the two ROBDD invariants:

* *No redundant tests*: a node with ``low == high`` is never created; the
  shared child id is returned instead.
* *Uniqueness*: the ``(var, low, high)`` triple is hash-consed, so structurally
  equal functions share the same id and equality checks are O(1).

The unique table is a two-level dictionary — variable index to a sub-dict
keyed by the packed ``(low << 32) | high`` integer — so the hot hash-consing
path allocates no key tuples.  (Node ids fit comfortably in 32 bits: a
4-billion-node table is far beyond what a pure-Python process can hold.)

The table is **compactable**: :meth:`NodeTable.compact` drops every node the
manager's mark phase did not reach and renumbers the survivors, preserving
the children-before-parents id order that the manager's iterative kernels
rely on.  Node ids are therefore only stable *between* collections; all
id-keyed caches are owned by the manager, which drops them on compaction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Reserved node id for the constant ``False`` function.
FALSE = 0
#: Reserved node id for the constant ``True`` function.
TRUE = 1

#: Variable index used by the terminal nodes; larger than any real variable so
#: that the "top variable" of a pair of nodes is always well defined.
TERMINAL_VAR = 1 << 60


class NodeTable:
    """Hash-consed storage for BDD nodes.

    The table only creates canonical nodes; callers (the manager) are
    responsible for variable ordering being respected, which it is by
    construction of the Shannon expansion in ``BDDManager._apply``.
    """

    __slots__ = ("_var", "_low", "_high", "_unique")

    def __init__(self) -> None:
        # Slot 0 is FALSE, slot 1 is TRUE.
        self._var: List[int] = [TERMINAL_VAR, TERMINAL_VAR]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        #: var index -> ((low << 32) | high) -> node id.
        self._unique: Dict[int, Dict[int, int]] = {}

    def __len__(self) -> int:
        return len(self._var)

    def var_of(self, node: int) -> int:
        """Return the decision variable of ``node`` (``TERMINAL_VAR`` for terminals)."""
        return self._var[node]

    def low_of(self, node: int) -> int:
        """Return the ``var = 0`` cofactor of ``node``."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """Return the ``var = 1`` cofactor of ``node``."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """Return True for the FALSE/TRUE terminals."""
        return node <= TRUE

    def make(self, var: int, low: int, high: int) -> int:
        """Return the canonical node id for ``(var, low, high)``.

        Applies the reduction rules: merges redundant tests and reuses
        existing isomorphic nodes.
        """
        if low == high:
            return low
        bucket = self._unique.get(var)
        if bucket is None:
            bucket = self._unique[var] = {}
        key = (low << 32) | high
        found = bucket.get(key)
        if found is not None:
            return found
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        bucket[key] = node
        return node

    def triple(self, node: int) -> Tuple[int, int, int]:
        """Return ``(var, low, high)`` of ``node`` (terminals included)."""
        return self._var[node], self._low[node], self._high[node]

    def compact(self, marked: bytearray) -> List[int]:
        """Drop every unmarked node, renumber survivors, rebuild the unique table.

        ``marked`` is one byte per current node id (terminals must be marked).
        Survivors keep their relative order, so children still precede their
        parents.  Returns the old-id -> new-id remap list; entries for dead
        nodes are meaningless and must not be consulted.
        """
        old_var, old_low, old_high = self._var, self._low, self._high
        size = len(old_var)
        remap = [0] * size
        remap[TRUE] = TRUE
        new_var: List[int] = [TERMINAL_VAR, TERMINAL_VAR]
        new_low: List[int] = [FALSE, TRUE]
        new_high: List[int] = [FALSE, TRUE]
        unique: Dict[int, Dict[int, int]] = {}
        for node in range(2, size):
            if not marked[node]:
                continue
            var = old_var[node]
            low = remap[old_low[node]]
            high = remap[old_high[node]]
            new_id = len(new_var)
            remap[node] = new_id
            new_var.append(var)
            new_low.append(low)
            new_high.append(high)
            bucket = unique.get(var)
            if bucket is None:
                bucket = unique[var] = {}
            bucket[(low << 32) | high] = new_id
        self._var, self._low, self._high = new_var, new_low, new_high
        self._unique = unique
        return remap
