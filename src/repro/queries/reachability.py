"""Query 1 — network reachability (transitive closure of the ``link`` relation).

Datalog, as in Section 2 of the paper::

    reachable(x, y) :- link(x, y).
    reachable(x, y) :- link(x, z), reachable(z, y).

Both relations are partitioned on their first attribute; computing the view
requires shipping ``link`` tuples to the node owning their ``dst`` (to join
with ``reachable.src``) and shipping join results to the node owning their new
``src`` (Figure 4).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.data.tuples import Tuple, make_schema
from repro.engine.plan import RecursiveViewPlan

#: ``link(src, dst)`` — router link state, partitioned by ``src``.
LINK_SCHEMA = make_schema("link", ["src", "dst"])
#: ``reachable(src, dst)`` — the recursive view, partitioned by ``src``.
REACHABLE_SCHEMA = make_schema("reachable", ["src", "dst"])


def link(src: Any, dst: Any) -> Tuple:
    """Build a ``link`` tuple."""
    return LINK_SCHEMA.tuple(src, dst)


def reachable(src: Any, dst: Any) -> Tuple:
    """Build a ``reachable`` tuple."""
    return REACHABLE_SCHEMA.tuple(src, dst)


def _base_case(edge: Tuple) -> Tuple:
    """``reachable(x, y) :- link(x, y)``."""
    return reachable(edge["src"], edge["dst"])


def _recursive_case(edge: Tuple, view: Tuple) -> Optional[Tuple]:
    """``reachable(x, y) :- link(x, z), reachable(z, y)`` (join key already matched)."""
    return reachable(edge["src"], view["dst"])


def reachability_plan(max_hops: Optional[int] = None) -> RecursiveViewPlan:
    """The distributed plan for Query 1.

    ``max_hops`` optionally bounds the radius (the "reachable pairs within a
    radius" enhancement mentioned in Section 2); when set, the view schema
    gains a ``hops`` attribute and the recursion stops at the bound.
    """
    if max_hops is None:
        return RecursiveViewPlan(
            name="reachable",
            edge_schema=LINK_SCHEMA,
            result_schema=REACHABLE_SCHEMA,
            edge_join_attribute="dst",
            result_join_attribute="src",
            make_base=_base_case,
            combine=_recursive_case,
        )
    return _bounded_reachability_plan(max_hops)


#: ``reachableWithin(src, dst, hops)`` — radius-bounded variant of the view.
BOUNDED_REACHABLE_SCHEMA = make_schema("reachableWithin", ["src", "dst", "hops"])


def _bounded_reachability_plan(max_hops: int) -> RecursiveViewPlan:
    if max_hops <= 0:
        raise ValueError("max_hops must be positive")

    def base(edge: Tuple) -> Tuple:
        return BOUNDED_REACHABLE_SCHEMA.tuple(edge["src"], edge["dst"], 1)

    def step(edge: Tuple, view: Tuple) -> Optional[Tuple]:
        hops = view["hops"] + 1
        if hops > max_hops:
            return None
        return BOUNDED_REACHABLE_SCHEMA.tuple(edge["src"], view["dst"], hops)

    return RecursiveViewPlan(
        name=f"reachableWithin{max_hops}",
        edge_schema=LINK_SCHEMA,
        result_schema=BOUNDED_REACHABLE_SCHEMA,
        edge_join_attribute="dst",
        result_join_attribute="src",
        make_base=base,
        combine=step,
    )
