"""Convenience constructors for distributed executors.

Most callers (examples, benchmarks, tests) build an executor the same way:
pick a plan, pick a strategy by its figure label, choose the cluster size.
``build_executor`` packages that, including the paper's default of 12 query
processors and the two-cluster latency model used when scaling beyond 16.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.data.batch import BatchPolicy
from repro.engine.executor import DistributedViewExecutor
from repro.engine.plan import RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy
from repro.net.latency import ClusterLatencyModel, LatencyModel
from repro.net.partition import HashPartitioner

#: Default number of query processors (the paper's default setting).
DEFAULT_NODE_COUNT = 12


def build_executor(
    plan: RecursiveViewPlan,
    strategy: Union[str, ExecutionStrategy],
    node_count: int = DEFAULT_NODE_COUNT,
    latency_model: Optional[LatencyModel] = None,
    partitioner: Optional[HashPartitioner] = None,
    processing_cost: float = 0.00002,
    max_events: int = 5_000_000,
    max_wall_seconds: Optional[float] = None,
    experiment: str = "experiment",
    batch_policy: Optional[BatchPolicy] = None,
    backend: str = "sim",
    workers: Optional[int] = None,
    wal_dir=None,
) -> DistributedViewExecutor:
    """Build a ready-to-run executor for ``plan`` under ``strategy``.

    ``strategy`` may be an :class:`ExecutionStrategy` or one of the figure
    labels (``"DRed"``, ``"Absorption Lazy"``, ...).  The latency model
    defaults to the paper's two-cluster topology (Gigabit inside the first 16
    nodes, a slower shared link to any nodes beyond).

    ``backend`` selects where node handlers run: ``"sim"`` (default) on this
    interpreter thread, ``"process"`` across ``workers`` real OS processes
    with bit-identical results (see :mod:`repro.parallel`).  ``wal_dir``
    enables per-worker command WALs so a killed worker process is respawned
    and replayed instead of aborting the run.
    """
    if isinstance(strategy, str):
        strategy = ExecutionStrategy.by_name(strategy)
    if partitioner is not None:
        # The partitioner is the source of truth for cluster size (the
        # executor derives its node count from it), so the default latency
        # model must be sized from it too.
        node_count = partitioner.node_count
    if latency_model is None:
        latency_model = ClusterLatencyModel(primary_cluster_size=min(node_count, 16))
    common = dict(
        plan=plan,
        strategy=strategy,
        node_count=node_count,
        latency_model=latency_model,
        partitioner=partitioner,
        processing_cost=processing_cost,
        max_events=max_events,
        max_wall_seconds=max_wall_seconds,
        experiment=experiment,
        batch_policy=batch_policy,
    )
    if backend == "process":
        from repro.parallel.backend import ProcessExecutor

        return ProcessExecutor(workers=workers, wal_dir=wal_dir, **common)
    if backend != "sim":
        raise ValueError(f"unknown backend {backend!r} (expected 'sim' or 'process')")
    return DistributedViewExecutor(**common)
