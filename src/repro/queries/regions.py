"""Query 3 — contiguous triggered sensor regions (the "largest region" query).

Datalog, as in Section 2 of the paper::

    activeRegion(rid, x) :- sensor(x, posx), mainSensorInRegion(rid, x), isTriggered(x).
    activeRegion(rid, y) :- sensor(x, posx), sensor(y, posy), isTriggered(x),
                            activeRegion(rid, x), distance(posx, posy) < k.
    regionSizes(rid, count<x>) :- activeRegion(rid, x).
    largestRegion(max<size>)   :- regionSizes(rid, size).
    largestRegions(rid)        :- regionSizes(rid, size), largestRegion(size).

For distributed execution we factor the recursion the same way the paper's
engine does: the non-recursive subgoals (``sensor`` positions, trigger state,
the ``distance < k`` predicate) collapse into a **proximity** base relation
whose tuples ``proximity(src, dst)`` say "``src`` is triggered and ``dst`` is
within ``k`` metres of it", and the seeds (``mainSensorInRegion`` of triggered
reference sensors) enter the view directly.  Trigger / untrigger events on a
sensor become insertions / deletions of its incident proximity edges and seed
tuples (see :mod:`repro.workloads.sensors`), so region membership is
maintained incrementally like any other recursive view.

The final aggregates (``regionSizes``, ``largestRegion``, ``largestRegions``)
are provided as helpers over the materialised view.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.data.tuples import Tuple, make_schema
from repro.engine.plan import RecursiveViewPlan

#: ``proximity(src, dst)`` — ``src`` is a triggered sensor and ``dst`` lies
#: within ``k`` metres of it; partitioned by ``src``.
PROXIMITY_SCHEMA = make_schema("proximity", ["src", "dst"])
#: ``activeRegion(sensor, region)`` — sensor membership in a contiguous
#: region, partitioned by ``sensor`` (the recursive join attribute).
ACTIVE_REGION_SCHEMA = make_schema("activeRegion", ["sensor", "region"])


def proximity(src: Any, dst: Any) -> Tuple:
    """Build a proximity edge tuple."""
    return PROXIMITY_SCHEMA.tuple(src, dst)


def active_region(sensor: Any, region: Any) -> Tuple:
    """Build an ``activeRegion`` membership tuple."""
    return ACTIVE_REGION_SCHEMA.tuple(sensor, region)


def _recursive_case(edge: Tuple, view: Tuple) -> Optional[Tuple]:
    """``activeRegion(rid, y) :- proximity(x, y), activeRegion(rid, x)``."""
    return active_region(edge["dst"], view["region"])


def region_plan() -> RecursiveViewPlan:
    """The distributed plan for Query 3.

    The base case is provided by *seed* tuples (triggered reference sensors)
    inserted directly into the view via
    :meth:`repro.engine.executor.DistributedViewExecutor.insert_seeds`, so the
    plan itself has no edge-derived base case.
    """
    return RecursiveViewPlan(
        name="activeRegion",
        edge_schema=PROXIMITY_SCHEMA,
        result_schema=ACTIVE_REGION_SCHEMA,
        edge_join_attribute="src",
        result_join_attribute="sensor",
        make_base=None,
        combine=_recursive_case,
    )


# -- final aggregates over the materialised view --------------------------------------

def region_sizes(memberships: Iterable[Tuple]) -> Dict[Any, int]:
    """``regionSizes(rid, count(sensor))``: number of member sensors per region."""
    members: Dict[Any, Set[Any]] = defaultdict(set)
    for membership in memberships:
        members[membership["region"]].add(membership["sensor"])
    return {region: len(sensors) for region, sensors in members.items()}


def largest_region_size(memberships: Iterable[Tuple]) -> int:
    """``largestRegion(max(size))``: the size of the largest region (0 if none)."""
    sizes = region_sizes(memberships)
    return max(sizes.values()) if sizes else 0


def largest_regions(memberships: Iterable[Tuple]) -> List[Any]:
    """``largestRegions(rid)``: every region achieving the maximum size."""
    memberships = list(memberships)
    sizes = region_sizes(memberships)
    if not sizes:
        return []
    maximum = max(sizes.values())
    return sorted((region for region, size in sizes.items() if size == maximum), key=str)


def members_of(memberships: Iterable[Tuple], region: Any) -> Set[Any]:
    """The set of sensors currently in ``region``."""
    return {m["sensor"] for m in memberships if m["region"] == region}
