"""The paper's example queries as distributed recursive view plans.

* :mod:`repro.queries.reachability` — Query 1: network reachability
  (transitive closure of ``link``);
* :mod:`repro.queries.shortest_path` — Query 2: path enumeration with
  cost/hop aggregate selections and the derived views ``minCost``,
  ``minHops``, ``cheapestPath``, ``fewestHops``, ``shortestCheapestPath``;
* :mod:`repro.queries.regions` — Query 3: contiguous triggered sensor regions
  seeded from reference sensors, with ``regionSizes`` / ``largestRegion``;
* :mod:`repro.queries.builder` — convenience constructors for executors.
"""

from repro.queries.builder import build_executor
from repro.queries.reachability import (
    LINK_SCHEMA,
    REACHABLE_SCHEMA,
    link,
    reachability_plan,
    reachable,
)
from repro.queries.regions import (
    ACTIVE_REGION_SCHEMA,
    PROXIMITY_SCHEMA,
    active_region,
    largest_regions,
    proximity,
    region_plan,
    region_sizes,
)
from repro.queries.shortest_path import (
    PATH_LINK_SCHEMA,
    PATH_SCHEMA,
    cheapest_paths,
    cost_link,
    fewest_hop_paths,
    min_costs,
    min_hops,
    shortest_cheapest_paths,
    shortest_path_plan,
)

__all__ = [
    "build_executor",
    "LINK_SCHEMA",
    "REACHABLE_SCHEMA",
    "link",
    "reachable",
    "reachability_plan",
    "PATH_LINK_SCHEMA",
    "PATH_SCHEMA",
    "cost_link",
    "shortest_path_plan",
    "min_costs",
    "min_hops",
    "cheapest_paths",
    "fewest_hop_paths",
    "shortest_cheapest_paths",
    "PROXIMITY_SCHEMA",
    "ACTIVE_REGION_SCHEMA",
    "proximity",
    "active_region",
    "region_plan",
    "region_sizes",
    "largest_regions",
]
