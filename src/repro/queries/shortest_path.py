"""Query 2 — shortest / cheapest paths with aggregate selection.

Datalog, as in Section 2 of the paper::

    path(x,y,p,c,l) :- link(x,y,c), p = concat([x,y], nil), l = 1.
    path(x,y,p,c,l) :- link(x,z,c0), path(z,y,p1,c1,l1),
                       c = c0 + c1, p = concat([x], p1), l = 1 + l1.
    minCost(x,y,min<c>)  :- path(x,y,p,c,l).
    minHops(x,y,min<l>)  :- path(x,y,p,c,l).
    cheapestPath(x,y,p,c):- path(x,y,p,c,l), minCost(x,y,c).
    fewestHops(x,y,p,l)  :- path(x,y,p,c,l), minHops(x,y,l).
    shortestCheapestPath(x,y,p1,c,p2,l) :- cheapestPath(x,y,p1,c), fewestHops(x,y,p2,l).

As the paper notes, the raw ``path`` view enumerates every (simple) path and is
only practical when **aggregate selections** prune tuples that cannot improve
the cost or hop-count minimum.  ``shortest_path_plan`` builds the distributed
plan with *multi* (cost + hops), *single* (cost only) or *no* aggregate
selection — the three configurations compared in Figure 14.  Without aggregate
selection a hop bound keeps the enumeration finite (our simple-path guard
already guarantees termination, but the bound keeps the no-AggSel baseline
from exploding combinatorially, mirroring the paper's observation that it does
not complete on dense topologies).

The non-recursive final views (``minCost`` and friends) are provided as
post-processing helpers over the materialised ``path`` view.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple as PyTuple

from repro.data.tuples import Tuple, make_schema
from repro.engine.plan import RecursiveViewPlan
from repro.operators.aggsel import AggregateFunctionKind, AggregateSpec

#: ``link(src, dst, cost)`` — router links with a latency/cost metric.
PATH_LINK_SCHEMA = make_schema("link", ["src", "dst", "cost"])
#: ``path(src, dst, vec, cost, length)`` — the recursive path view.
PATH_SCHEMA = make_schema("path", ["src", "dst", "vec", "cost", "length"])

#: Aggregate-selection configurations of Figure 14.
AGGSEL_MULTI = "multi"
AGGSEL_SINGLE = "single"
AGGSEL_NONE = "none"


def cost_link(src: Any, dst: Any, cost: float) -> Tuple:
    """Build a cost-annotated ``link`` tuple."""
    return PATH_LINK_SCHEMA.tuple(src, dst, cost)


def path_tuple(src: Any, dst: Any, vec: PyTuple[Any, ...], cost: float, length: int) -> Tuple:
    """Build a ``path`` tuple (``vec`` is the node sequence of the path)."""
    return PATH_SCHEMA.tuple(src, dst, tuple(vec), cost, length)


def _base_case(edge: Tuple) -> Tuple:
    return path_tuple(edge["src"], edge["dst"], (edge["src"], edge["dst"]), edge["cost"], 1)


def _make_recursive_case(max_hops: Optional[int]):
    def step(edge: Tuple, view: Tuple) -> Optional[Tuple]:
        vec = view["vec"]
        source = edge["src"]
        if source in vec:
            return None  # keep paths simple (and the recursion finite)
        length = view["length"] + 1
        if max_hops is not None and length > max_hops:
            return None
        return path_tuple(
            source, view["dst"], (source,) + tuple(vec), edge["cost"] + view["cost"], length
        )

    return step


def aggregate_specs_for(mode: str) -> PyTuple[AggregateSpec, ...]:
    """The AggregateSpec set for a Figure 14 configuration name."""
    cost_spec = AggregateSpec(("src", "dst"), "cost", AggregateFunctionKind.MIN)
    hops_spec = AggregateSpec(("src", "dst"), "length", AggregateFunctionKind.MIN)
    if mode == AGGSEL_MULTI:
        return (cost_spec, hops_spec)
    if mode == AGGSEL_SINGLE:
        return (cost_spec,)
    if mode == AGGSEL_NONE:
        return ()
    raise ValueError(f"unknown aggregate-selection mode: {mode!r}")


def shortest_path_plan(
    aggregate_selection: str = AGGSEL_MULTI, max_hops: Optional[int] = None
) -> RecursiveViewPlan:
    """The distributed plan for Query 2 under the given aggregate-selection mode."""
    return RecursiveViewPlan(
        name=f"path[{aggregate_selection}]",
        edge_schema=PATH_LINK_SCHEMA,
        result_schema=PATH_SCHEMA,
        edge_join_attribute="dst",
        result_join_attribute="src",
        make_base=_base_case,
        combine=_make_recursive_case(max_hops),
        aggregate_specs=aggregate_specs_for(aggregate_selection),
    )


# -- final (non-recursive) views over the materialised path relation -----------------

def min_costs(paths: Iterable[Tuple]) -> Dict[PyTuple[Any, Any], float]:
    """``minCost(src, dst, min(cost))`` over the path view."""
    best: Dict[PyTuple[Any, Any], float] = {}
    for path in paths:
        key = (path["src"], path["dst"])
        cost = path["cost"]
        if key not in best or cost < best[key]:
            best[key] = cost
    return best


def min_hops(paths: Iterable[Tuple]) -> Dict[PyTuple[Any, Any], int]:
    """``minHops(src, dst, min(length))`` over the path view."""
    best: Dict[PyTuple[Any, Any], int] = {}
    for path in paths:
        key = (path["src"], path["dst"])
        length = path["length"]
        if key not in best or length < best[key]:
            best[key] = length
    return best


def cheapest_paths(paths: Iterable[Tuple]) -> Set[Tuple]:
    """``cheapestPath``: the path tuples achieving the per-pair minimum cost."""
    paths = list(paths)
    best = min_costs(paths)
    return {p for p in paths if p["cost"] == best[(p["src"], p["dst"])]}


def fewest_hop_paths(paths: Iterable[Tuple]) -> Set[Tuple]:
    """``fewestHops``: the path tuples achieving the per-pair minimum length."""
    paths = list(paths)
    best = min_hops(paths)
    return {p for p in paths if p["length"] == best[(p["src"], p["dst"])]}


#: ``shortestCheapestPath(src, dst, vec1, cost, vec2, length)``.
SHORTEST_CHEAPEST_SCHEMA = make_schema(
    "shortestCheapestPath", ["src", "dst", "cheapest_vec", "cost", "fewest_vec", "length"]
)


def shortest_cheapest_paths(paths: Iterable[Tuple]) -> Set[Tuple]:
    """``shortestCheapestPath``: join of cheapestPath and fewestHops per pair."""
    paths = list(paths)
    cheapest_by_pair: Dict[PyTuple[Any, Any], List[Tuple]] = defaultdict(list)
    fewest_by_pair: Dict[PyTuple[Any, Any], List[Tuple]] = defaultdict(list)
    for path in cheapest_paths(paths):
        cheapest_by_pair[(path["src"], path["dst"])].append(path)
    for path in fewest_hop_paths(paths):
        fewest_by_pair[(path["src"], path["dst"])].append(path)
    results: Set[Tuple] = set()
    for pair, cheap_list in cheapest_by_pair.items():
        for cheap in cheap_list:
            for few in fewest_by_pair.get(pair, []):
                results.add(
                    SHORTEST_CHEAPEST_SCHEMA.tuple(
                        pair[0], pair[1], cheap["vec"], cheap["cost"], few["vec"], few["length"]
                    )
                )
    return results
