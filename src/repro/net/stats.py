"""Communication and convergence statistics.

These are the evaluation metrics of Section 7.1:

* **communication overhead (MB)** — total size of messages exchanged between
  *distinct* nodes while executing the query to completion;
* **per-tuple provenance overhead (B)** — average size of the provenance
  annotation attached to each shipped tuple;
* **convergence time (s)** — the (virtual) time at which the distributed
  computation quiesces;
* per-node breakdowns of the above, plus message counts, which Section 7.3
  uses when scaling the number of query processors.

Operator state (the fourth metric) is collected separately by the engine from
the operators themselves.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.message import Message


@dataclass
class NetworkStats:
    """Mutable accumulator of traffic statistics for one experiment run."""

    node_count: int = 0
    total_bytes: int = 0
    total_messages: int = 0
    total_updates_shipped: int = 0
    local_bytes: int = 0
    local_messages: int = 0
    provenance_bytes: int = 0
    provenance_annotations: int = 0
    bytes_sent_by_node: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bytes_received_by_node: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Per-node load accounting (skew diagnostics / elastic rebalancing):
    #: wire messages sent and received per node, and updates delivered to
    #: each node (one batched message counts once per update it carries).
    messages_sent_by_node: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_received_by_node: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    updates_delivered_by_node: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: Messages delivered after the placement epoch they were routed under
    #: had already been superseded (elastic clusters only).
    stale_epoch_messages: int = 0
    #: Messages held during a node's downtime that the fault listener declined
    #: to redeliver on recovery (the provenance-purge policy models the dead
    #: node's connections being torn down this way).
    dropped_messages: int = 0
    #: Updates shipped per destination port (one batched message counts once
    #: per update it carries).
    messages_by_port: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Wire messages per destination port (a batched message counts once —
    #: this is the metric update batching actually reduces).
    message_counts_by_port: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    convergence_time: float = 0.0

    # -- recording ------------------------------------------------------------
    def record_message(self, message: Message) -> None:
        """Record one shipped message (local messages tracked separately)."""
        if message.is_local:
            self.local_messages += 1
            self.local_bytes += message.size_bytes
            return
        self.total_messages += 1
        self.total_bytes += message.size_bytes
        self.total_updates_shipped += message.update_count
        self.bytes_sent_by_node[message.src] += message.size_bytes
        self.bytes_received_by_node[message.dst] += message.size_bytes
        self.messages_sent_by_node[message.src] += 1
        self.messages_received_by_node[message.dst] += 1
        self.updates_delivered_by_node[message.dst] += message.update_count
        self.messages_by_port[message.port] += message.update_count
        self.message_counts_by_port[message.port] += 1

    def record_provenance(self, annotation_bytes: int, count: int = 1) -> None:
        """Record the size of provenance annotations attached to shipped tuples."""
        self.provenance_bytes += annotation_bytes
        self.provenance_annotations += count

    def record_time(self, now: float) -> None:
        """Advance the convergence-time watermark."""
        if now > self.convergence_time:
            self.convergence_time = now

    # -- derived metrics ----------------------------------------------------------
    @property
    def communication_mb(self) -> float:
        """Total inter-node traffic in megabytes."""
        return self.total_bytes / 1_000_000.0

    @property
    def per_node_communication_mb(self) -> float:
        """Average inter-node traffic per processor node in megabytes."""
        if self.node_count == 0:
            return self.communication_mb
        return self.communication_mb / self.node_count

    @property
    def per_tuple_provenance_bytes(self) -> float:
        """Average provenance annotation size per shipped tuple (bytes)."""
        if self.provenance_annotations == 0:
            return 0.0
        return self.provenance_bytes / self.provenance_annotations

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Combine statistics from two phases of the same experiment."""
        merged = NetworkStats(node_count=max(self.node_count, other.node_count))
        merged.total_bytes = self.total_bytes + other.total_bytes
        merged.total_messages = self.total_messages + other.total_messages
        merged.total_updates_shipped = (
            self.total_updates_shipped + other.total_updates_shipped
        )
        merged.local_bytes = self.local_bytes + other.local_bytes
        merged.local_messages = self.local_messages + other.local_messages
        merged.provenance_bytes = self.provenance_bytes + other.provenance_bytes
        merged.provenance_annotations = (
            self.provenance_annotations + other.provenance_annotations
        )
        for node, value in list(self.bytes_sent_by_node.items()) + list(
            other.bytes_sent_by_node.items()
        ):
            merged.bytes_sent_by_node[node] += value
        for node, value in list(self.bytes_received_by_node.items()) + list(
            other.bytes_received_by_node.items()
        ):
            merged.bytes_received_by_node[node] += value
        for attribute in (
            "messages_sent_by_node",
            "messages_received_by_node",
            "updates_delivered_by_node",
        ):
            combined = getattr(merged, attribute)
            for source in (getattr(self, attribute), getattr(other, attribute)):
                for node, value in source.items():
                    combined[node] += value
        merged.stale_epoch_messages = self.stale_epoch_messages + other.stale_epoch_messages
        merged.dropped_messages = self.dropped_messages + other.dropped_messages
        for port, value in list(self.messages_by_port.items()) + list(
            other.messages_by_port.items()
        ):
            merged.messages_by_port[port] += value
        for port, value in list(self.message_counts_by_port.items()) + list(
            other.message_counts_by_port.items()
        ):
            merged.message_counts_by_port[port] += value
        merged.convergence_time = max(self.convergence_time, other.convergence_time)
        return merged

    def per_node_rows(self) -> List[Dict[str, object]]:
        """One row per node with its traffic share (the ``--per-node`` report).

        Rows cover every node mentioned by any per-node counter plus the
        first ``node_count`` ids, so idle nodes show up with zeroes — which
        is exactly what makes a skewed workload visible at a glance.
        """
        nodes = set(range(self.node_count))
        for counter in (
            self.bytes_sent_by_node,
            self.bytes_received_by_node,
            self.messages_sent_by_node,
            self.messages_received_by_node,
            self.updates_delivered_by_node,
        ):
            nodes.update(counter)
        return [
            {
                "node": node,
                "messages_sent": self.messages_sent_by_node.get(node, 0),
                "messages_received": self.messages_received_by_node.get(node, 0),
                "bytes_sent": self.bytes_sent_by_node.get(node, 0),
                "bytes_received": self.bytes_received_by_node.get(node, 0),
                "updates_delivered": self.updates_delivered_by_node.get(node, 0),
            }
            for node in sorted(nodes)
        ]

    def summary(self) -> Dict[str, float]:
        """A flat summary dictionary used by the experiment harness."""
        return {
            "communication_mb": self.communication_mb,
            "per_node_communication_mb": self.per_node_communication_mb,
            "messages": float(self.total_messages),
            "updates_shipped": float(self.total_updates_shipped),
            "per_tuple_provenance_bytes": self.per_tuple_provenance_bytes,
            "convergence_time_s": self.convergence_time,
            "dropped_messages": float(self.dropped_messages),
        }
