"""Messages exchanged between simulated query-processor nodes."""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.data.update import Update

_message_ids = itertools.count()


class Message:
    """A batch of updates shipped from ``src`` to ``dst`` addressed to ``port``.

    ``port`` names the receiving operator on the destination node (for
    example ``"fixpoint"`` or ``"join.link"``), mirroring how the paper's
    query plan wires DistributedScan / MinShip outputs to remote operators.

    ``size_bytes`` is the wire size computed by the sender: tuple payloads
    plus the encoded provenance annotations.  It is what the communication-
    overhead metric aggregates.

    ``epoch`` is the placement epoch the sender routed under (see
    :mod:`repro.placement`).  A message delivered after the placement map
    moved on carries a *stale* epoch; the receiving node re-checks ownership
    of each update and bounces misrouted ones to the current owner.  Static
    clusters never change placement, so the epoch stays 0 for them.

    A ``__slots__`` class, not a dataclass: one Message is allocated per
    ``send``/``inject`` on the simulator hot path, and slot storage skips the
    per-instance ``__dict__`` (the same treatment Tuple and Update received).

    ``trace_flow`` is the flow-event id linking this message's send span to
    its delivery span when tracing is enabled (see :mod:`repro.obs.trace`);
    ``None`` — the untraced default — costs one slot write per message.
    """

    __slots__ = (
        "src",
        "dst",
        "port",
        "updates",
        "size_bytes",
        "sent_at",
        "epoch",
        "message_id",
        "trace_flow",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        port: str,
        updates: Sequence[Update],
        size_bytes: int,
        sent_at: float,
        epoch: int = 0,
        message_id: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.port = port
        self.updates = updates
        self.size_bytes = size_bytes
        self.sent_at = sent_at
        self.epoch = epoch
        self.message_id = next(_message_ids) if message_id is None else message_id
        self.trace_flow: Optional[int] = None

    @property
    def is_local(self) -> bool:
        """True when the message never leaves the node (not counted as traffic)."""
        return self.src == self.dst

    @property
    def update_count(self) -> int:
        """Number of updates carried."""
        return len(self.updates)

    def __repr__(self) -> str:
        return (
            f"Message(#{self.message_id} {self.src}->{self.dst} port={self.port!r} "
            f"{self.update_count} updates, {self.size_bytes}B)"
        )
