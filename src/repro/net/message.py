"""Messages exchanged between simulated query-processor nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.data.update import Update

_message_ids = itertools.count()


@dataclass(frozen=True)
class Message:
    """A batch of updates shipped from ``src`` to ``dst`` addressed to ``port``.

    ``port`` names the receiving operator on the destination node (for
    example ``"fixpoint"`` or ``"join.link"``), mirroring how the paper's
    query plan wires DistributedScan / MinShip outputs to remote operators.

    ``size_bytes`` is the wire size computed by the sender: tuple payloads
    plus the encoded provenance annotations.  It is what the communication-
    overhead metric aggregates.

    ``epoch`` is the placement epoch the sender routed under (see
    :mod:`repro.placement`).  A message delivered after the placement map
    moved on carries a *stale* epoch; the receiving node re-checks ownership
    of each update and bounces misrouted ones to the current owner.  Static
    clusters never change placement, so the epoch stays 0 for them.
    """

    src: int
    dst: int
    port: str
    updates: Sequence[Update]
    size_bytes: int
    sent_at: float
    epoch: int = 0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def is_local(self) -> bool:
        """True when the message never leaves the node (not counted as traffic)."""
        return self.src == self.dst

    @property
    def update_count(self) -> int:
        """Number of updates carried."""
        return len(self.updates)

    def __repr__(self) -> str:
        return (
            f"Message(#{self.message_id} {self.src}->{self.dst} port={self.port!r} "
            f"{self.update_count} updates, {self.size_bytes}B)"
        )
