"""Latency models for the simulated cluster.

The paper's testbed consists of a 16-node cluster and an 8-node cluster
connected by a slower shared campus link; latency between query processors is
dominated by whether the two processors sit in the same cluster.  The models
here reproduce that structure (and show up as the latency jump between 16 and
24 processors in Figure 13).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class LatencyModel(abc.ABC):
    """Maps a (src node, dst node) pair to a one-way message latency in seconds."""

    @abc.abstractmethod
    def latency(self, src: int, dst: int) -> float:
        """One-way latency from ``src`` to ``dst``."""

    def __call__(self, src: int, dst: int) -> float:
        return self.latency(src, dst)


@dataclass(frozen=True)
class UniformLatencyModel(LatencyModel):
    """Constant latency between distinct nodes; local delivery is free."""

    delay: float = 0.001

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.delay


@dataclass(frozen=True)
class ClusterLatencyModel(LatencyModel):
    """Two clusters: fast Gigabit links inside each, a slower shared link between them.

    Nodes ``0 .. primary_cluster_size-1`` form the first (fast) cluster;
    everything beyond belongs to the second cluster, reachable only over the
    inter-cluster link.  Defaults follow the paper's setup: a 16-node primary
    cluster with Gigabit interconnect and a 100 Mbps shared campus link to the
    secondary cluster.
    """

    primary_cluster_size: int = 16
    intra_cluster_delay: float = 0.0005
    inter_cluster_delay: float = 0.010

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        same_cluster = (src < self.primary_cluster_size) == (dst < self.primary_cluster_size)
        return self.intra_cluster_delay if same_cluster else self.inter_cluster_delay
