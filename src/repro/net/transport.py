"""The transport surface processor nodes program against.

:class:`repro.engine.runtime.ProcessorNode` historically took the concrete
:class:`repro.net.simulator.SimulatedNetwork`; the process backend introduces
a second implementation (the per-worker :class:`repro.parallel.worker.WorkerNetwork`
stub that turns ``send`` into outbox entries shipped back to the coordinator).
``Transport`` names exactly the surface a node actually uses, so both engines
satisfy it and neither imports the other.

Kept a :class:`typing.Protocol` (structural) rather than an ABC: the simulator
predates this module and should not need to inherit from anything to qualify.

The chaos plane (:mod:`repro.chaos`) sits *below* this surface, at the link
layer: its interposer perturbs arrivals inside the implementations' send
paths, masked by the reliable FIFO channels.  Nodes programming against
``Transport`` never observe a dropped, duplicated or delayed wire copy —
only time passing differently — which is what keeps chaos runs bit-identical
to their fault-free references.
"""

from __future__ import annotations

from typing import Any, List, Sequence

try:  # Protocol is stdlib from 3.8; fall back to a plain base for safety.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient pythons only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Transport(Protocol):
    """What a processor node needs from the layer that moves its batches.

    * ``send`` — ship a batch of updates to a peer's input port;
    * ``active_nodes`` — the current cluster membership (purge multicast);
    * ``stats`` — a :class:`repro.net.stats.NetworkStats`-shaped accumulator
      (``record_message`` / ``record_provenance``);
    * ``tracer`` — the span tracer deliveries should record against, or
      ``None`` when tracing is off;
    * ``current_epoch`` — the placement epoch stamped onto messages.
    """

    stats: Any
    tracer: Any
    current_epoch: int

    def send(
        self,
        source: int,
        destination: int,
        port: str,
        updates: Sequence[Any],
        size_bytes: int,
        at_time: float,
    ) -> None:
        ...

    def active_nodes(self) -> List[int]:
        ...
