"""A deterministic, event-driven network simulator.

The simulator owns a priority queue of pending message deliveries in virtual
time.  Every processor node registers a handler; delivering a message invokes
the handler, which may send further messages (continuing the distributed
computation).  The run ends when the queue drains — exactly the distributed
quiescence/fixpoint condition the paper relies on — and the time of the last
processed event is the **convergence time** metric.

Modelled behaviour:

* **Reliable in-order delivery** per (src, dst) pair, as assumed in
  Section 3.1: a later message between the same pair is never delivered
  before an earlier one, even if latencies would allow it.
* **Per-update processing cost**: a node is busy for ``processing_cost``
  seconds per update it handles, so nodes with more tuples take longer and
  adding processors reduces convergence time (Figure 13).
* **Byte accounting** for every non-local message via
  :class:`~repro.net.stats.NetworkStats`.
* **Node churn**: :meth:`SimulatedNetwork.crash` and
  :meth:`SimulatedNetwork.recover` schedule failure events in virtual time.
  While a node is down it processes nothing; messages addressed to it are
  *held* by their reliable FIFO channels.  At the matching ``recover`` event
  the registered fault listener (see :class:`FaultListener`) first performs
  its recovery actions — restoring a checkpoint and replaying the update log,
  or purging the dead node's base tuples and reseeding it from its peers, the
  two policies implemented in :mod:`repro.fault.recovery` — and then each held
  message is redelivered (or dropped, if the listener's ``should_redeliver``
  declines it, which is how the provenance-purge policy models the teardown of
  the dead node's connections).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.data.batch import BatchPolicy
from repro.data.update import Update
from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.stats import NetworkStats
from repro.obs.trace import CONTROL_PID

#: A node handler receives (port, updates, virtual time) and reacts by calling
#: :meth:`SimulatedNetwork.send` zero or more times.
NodeHandler = Callable[[str, Sequence[Update], float], None]


@dataclass(frozen=True)
class _FaultEvent:
    """A scheduled crash/recover control event (not a network message)."""

    kind: str  # "crash" | "recover"
    node: int


@dataclass(frozen=True)
class _ControlEvent:
    """A scheduled control-plane callback firing at a virtual time.

    Used by the elastic placement subsystem to scale the cluster or rebalance
    ownership *mid-run*: the callback executes between message deliveries, so
    messages already in flight genuinely straddle the change (and arrive
    stamped with the superseded placement epoch).
    """

    callback: Callable[[float], None]


@dataclass(frozen=True)
class _GhostDelivery:
    """A duplicated wire copy of ``message`` injected by the chaos plane.

    The reliable transport's receiver-side sequence-number dedup suppresses
    it at delivery: popping a ghost never advances the clock, never counts as
    a processed event, and never invokes a handler — it exists purely so
    duplication shows up in chaos accounting and traces.
    """

    message: Message


class FaultListener:
    """Hooks invoked by the network when failure events fire.

    The fault-tolerance subsystem registers one listener per run; the default
    implementation is a no-op (crashed nodes simply stop processing and every
    held message is redelivered verbatim on recovery).
    """

    def on_crash(self, node: int, now: float) -> None:
        """Called when ``node`` goes down at virtual time ``now``."""

    def on_recover(self, node: int, now: float) -> None:
        """Called when ``node`` comes back up, *before* held messages flow."""

    def should_redeliver(self, message: Message) -> bool:
        """Whether a message held during downtime is redelivered after recovery."""
        return True


class SimulationError(Exception):
    """Raised on misconfiguration (unknown node, missing handler) or runaway runs."""


class SimulationBudgetExceeded(SimulationError):
    """Raised when a run exceeds its event or wall-clock budget.

    This is how the harness reproduces the paper's "did not complete within 5
    minutes" data points (e.g. Relative Eager at high insertion ratios, Eager
    propagation on dense 800-link topologies) without actually waiting: the
    run is cut off and reported as not converged.
    """


class SimulatedNetwork:
    """Virtual-time message-passing substrate for the distributed engine."""

    def __init__(
        self,
        node_count: int,
        latency_model: Optional[LatencyModel] = None,
        processing_cost: float = 0.00002,
        max_events: int = 20_000_000,
        max_wall_seconds: Optional[float] = None,
        batch_policy: Optional[BatchPolicy] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.node_count = node_count
        self.latency_model = latency_model or UniformLatencyModel()
        self.processing_cost = processing_cost
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds
        self.batch_policy = batch_policy or BatchPolicy()
        #: Messages whose delivery was merged into an earlier same-channel
        #: delivery (diagnostics for the batching benchmark).
        self.coalesced_deliveries = 0
        self._wall_deadline: Optional[float] = None
        self.stats = NetworkStats(node_count=node_count)
        self._handlers: Dict[int, NodeHandler] = {}
        self._queue: List[Tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        #: FIFO watermark: latest delivery time scheduled per (src, dst) pair.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        #: Time at which each node finishes its currently scheduled work.
        self._node_busy_until: Dict[int, float] = {node: 0.0 for node in range(node_count)}
        self._now = 0.0
        self._events_processed = 0
        #: Cumulative wall seconds spent inside node handlers (operator and
        #: routing work); the engine reports per-phase deltas of this next to
        #: the BDD kernel's own timer to split BDD vs routing vs net time.
        self.handler_seconds = 0.0
        #: Nodes currently crashed.
        self._down: Set[int] = set()
        #: Nodes decommissioned by the elastic placement subsystem.  They stay
        #: registered (in-flight messages addressed to them must still be
        #: delivered so the node can bounce them to the current owner) but
        #: receive no broadcasts and own no keys.
        self._inactive: Set[int] = set()
        #: Messages held by their channels while the destination is down.
        self._held: Dict[int, List[Message]] = {}
        self._fault_listener: Optional[FaultListener] = None
        self._dropped_messages = 0
        #: Supplies the current placement epoch stamped onto outgoing
        #: messages (installed by the elastic executor; static runs stay at 0).
        self._epoch_provider: Optional[Callable[[], int]] = None
        #: The active tracer, or ``None`` when tracing is off — the run loop
        #: pays exactly one ``is None`` check per delivery (see
        #: :mod:`repro.obs.trace` for the zero-overhead-off contract).
        self._tracer = None
        #: Flow ids of messages merged into the current coalesced delivery,
        #: landed inside the delivery span (traced runs only).
        self._coalesced_flows: List[int] = []
        #: The chaos interposer, or ``None`` when chaos is off — the send
        #: path pays exactly one ``is None`` check, same contract as tracing.
        self._chaos = None

    # -- wiring -----------------------------------------------------------------
    def register(self, node: int, handler: NodeHandler) -> None:
        """Install the update handler for ``node``."""
        self._validate_node(node)
        self._handlers[node] = handler

    def _validate_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise SimulationError(f"node {node} out of range (0..{self.node_count - 1})")

    def set_fault_listener(self, listener: Optional[FaultListener]) -> None:
        """Install the listener notified on crash/recover events."""
        self._fault_listener = listener

    def set_epoch_provider(self, provider: Optional[Callable[[], int]]) -> None:
        """Install the placement-epoch source stamped onto every sent message."""
        self._epoch_provider = provider

    def set_tracer(self, tracer) -> None:
        """Install the span tracer; disabled tracers are stored as ``None``
        so the delivery loop's only tracing cost is a pointer comparison."""
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    @property
    def tracer(self):
        """The active tracer, or ``None`` when tracing is off."""
        return self._tracer

    def install_chaos(self, interposer) -> None:
        """Install the chaos interposer consulted on every remote send.

        The interposer adjusts arrival times *before* the per-channel FIFO
        clamp and may enqueue ghost duplicates — see
        :mod:`repro.chaos.interposer` for why neither breaks determinism.
        """
        self._chaos = interposer

    def _enqueue_ghost(self, message: Message, arrival: float) -> None:
        """Queue a duplicated wire copy, suppressed at delivery time."""
        heapq.heappush(self._queue, (arrival, next(self._sequence), _GhostDelivery(message)))

    @property
    def current_epoch(self) -> int:
        """The placement epoch messages are currently stamped with."""
        return self._epoch_provider() if self._epoch_provider is not None else 0

    # -- elastic membership -------------------------------------------------------
    def add_node(self) -> int:
        """Grow the cluster by one node; returns the new node's id.

        The caller must still :meth:`register` a handler before the node can
        receive anything.
        """
        node = self.node_count
        self.node_count += 1
        self._node_busy_until[node] = 0.0
        self.stats.node_count = self.node_count
        return node

    def deactivate(self, node: int) -> None:
        """Decommission ``node``: it keeps its handler (so stale in-flight
        messages can still be delivered and bounced) but drops out of
        :meth:`active_nodes` — broadcasts and future ownership skip it."""
        self._validate_node(node)
        self._inactive.add(node)

    def is_active(self, node: int) -> bool:
        """True while ``node`` is a live cluster member (not decommissioned)."""
        return 0 <= node < self.node_count and node not in self._inactive

    def active_nodes(self) -> List[int]:
        """Ids of the current live cluster members, in id order."""
        return [node for node in range(self.node_count) if node not in self._inactive]

    # -- failure injection --------------------------------------------------------
    def crash(self, node: int, at_time: Optional[float] = None) -> None:
        """Schedule ``node`` to crash at virtual time ``at_time`` (default: now)."""
        self._schedule_fault("crash", node, at_time)

    def recover(self, node: int, at_time: Optional[float] = None) -> None:
        """Schedule ``node`` to come back up at virtual time ``at_time``."""
        self._schedule_fault("recover", node, at_time)

    def _schedule_fault(self, kind: str, node: int, at_time: Optional[float]) -> None:
        self._validate_node(node)
        when = self._now if at_time is None else at_time
        heapq.heappush(self._queue, (when, next(self._sequence), _FaultEvent(kind, node)))

    def schedule_control(
        self, callback: Callable[[float], None], at_time: Optional[float] = None
    ) -> None:
        """Schedule a control-plane callback at ``at_time`` (default: now).

        The callback fires between deliveries while the event queue may still
        hold in-flight messages — this is how the elastic subsystem scales or
        rebalances a *running* cluster.
        """
        when = self._now if at_time is None else at_time
        heapq.heappush(self._queue, (when, next(self._sequence), _ControlEvent(callback)))

    def is_down(self, node: int) -> bool:
        """True while ``node`` is crashed."""
        return node in self._down

    def down_nodes(self) -> Tuple[int, ...]:
        """Ids of currently crashed nodes, sorted (placement-change guard)."""
        return tuple(sorted(self._down))

    def held_messages(self, node: int) -> int:
        """Messages currently held by channels towards a down node (tests/metrics)."""
        return len(self._held.get(node, []))

    @property
    def dropped_messages(self) -> int:
        """Held messages the fault listener declined to redeliver."""
        return self._dropped_messages

    def abandon_recovery(self, node: int) -> None:
        """Mark a recovering node as still down (called *during* a recover
        event by a supervised recovery whose retry budget is exhausted).
        The node's held messages stay held and it serves nothing until a
        later recovery succeeds or the executor degrades it."""
        self._validate_node(node)
        self._down.add(node)

    def postpone_node(self, node: int, delay: float) -> None:
        """Consume ``delay`` seconds of virtual time on ``node``.

        This is how supervised-recovery backoff spends time in the simulated
        world: the node's next scheduled work starts after the pause.
        """
        self._validate_node(node)
        if delay > 0.0:
            base = self._node_busy_until.get(node, 0.0)
            if self._now > base:
                base = self._now
            self._node_busy_until[node] = base + delay

    def _apply_fault_event(self, event: _FaultEvent, at_time: float) -> None:
        self._now = max(self._now, at_time)
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(event.node, event.kind, "fault", sim_ts=self._now)
        if event.kind == "crash":
            if event.node in self._down:
                raise SimulationError(f"node {event.node} is already down")
            self._down.add(event.node)
            if self._fault_listener is not None:
                self._fault_listener.on_crash(event.node, self._now)
            return
        if event.node not in self._down:
            raise SimulationError(f"node {event.node} is not down; cannot recover it")
        self._down.discard(event.node)
        # The node is up again *before* the listener runs, so recovery actions
        # (checkpoint restore, WAL replay, peer reseed) can address it.
        if self._fault_listener is not None:
            self._fault_listener.on_recover(event.node, self._now)
        if event.node in self._down:
            # A supervised recovery exhausted its retry budget and abandoned
            # the node (see abandon_recovery): it stays down and its held
            # messages stay held for a later recovery or degraded service.
            return
        for message in self._held.pop(event.node, []):
            if self._fault_listener is None or self._fault_listener.should_redeliver(message):
                heapq.heappush(self._queue, (self._now, next(self._sequence), message))
            else:
                self._dropped_messages += 1
                self.stats.dropped_messages += 1
                if tracer is not None:
                    tracer.instant(
                        event.node,
                        "held-message-dropped",
                        "fault",
                        sim_ts=self._now,
                        args={
                            "src": message.src,
                            "port": message.port,
                            "updates": len(message.updates),
                        },
                    )

    # -- clock -------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of messages delivered so far."""
        return self._events_processed

    # -- sending ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        port: str,
        updates: Sequence[Update],
        size_bytes: int,
        at_time: Optional[float] = None,
    ) -> Message:
        """Ship a batch of updates from ``src`` to ``dst``.

        Local sends (``src == dst``) are delivered after the processing delay
        only; remote sends additionally incur the latency-model delay and are
        counted as network traffic.  Delivery respects FIFO ordering per
        (src, dst) channel.
        """
        if not 0 <= src < self.node_count:
            self._validate_node(src)
        if not 0 <= dst < self.node_count:
            self._validate_node(dst)
        if src in self._down:
            raise SimulationError(f"node {src} is down and cannot send")
        if not updates:
            raise SimulationError("refusing to send an empty message")
        sent_at = self._now if at_time is None else at_time
        message = Message(
            src=src, dst=dst, port=port, updates=tuple(updates),
            size_bytes=size_bytes, sent_at=sent_at, epoch=self.current_epoch,
        )
        tracer = self._tracer
        if tracer is not None and src != dst:
            # Flow arrow from the sender's current span to the delivery span.
            message.trace_flow = tracer.flow_start(src, sim_ts=sent_at)
        self.stats.record_message(message)
        # The channel key and watermark probe are the send hot path: one tuple
        # allocation and one dict probe, no intermediate attribute lookups.
        arrival = sent_at + self.latency_model.latency(src, dst)
        if self._chaos is not None and src != dst:
            # Link faults (drop-retransmit, jitter, ghost duplicates) adjust
            # the arrival *before* the FIFO clamp below: the channel stays in
            # order no matter what the link does, which is exactly the
            # reliable-transport masking that keeps chaos runs bit-identical.
            arrival = self._chaos.apply(message, sent_at, arrival)
        last_delivery = self._last_delivery
        fifo_key = (src, dst)
        watermark = last_delivery.get(fifo_key, 0.0)
        if watermark > arrival:
            arrival = watermark
        last_delivery[fifo_key] = arrival
        heapq.heappush(self._queue, (arrival, next(self._sequence), message))
        return message

    def inject(
        self,
        dst: int,
        port: str,
        updates: Sequence[Update],
        at_time: float = 0.0,
        size_bytes: int = 0,
    ) -> None:
        """Inject external base-data updates at ``dst`` (not counted as traffic).

        This models data arriving from the node's own sub-network (sensors,
        local routing state) rather than from a peer query processor.
        """
        self._validate_node(dst)
        if not updates:
            return
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                dst, f"inject:{port}", "inject", sim_ts=at_time,
                args={"updates": len(updates)},
            )
        message = Message(
            src=dst, dst=dst, port=port, updates=tuple(updates),
            size_bytes=size_bytes, sent_at=at_time, epoch=self.current_epoch,
        )
        heapq.heappush(self._queue, (at_time, next(self._sequence), message))

    # -- running --------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> NetworkStats:
        """Deliver events until the queue drains (or virtual time exceeds ``until``).

        Returns the accumulated statistics; the convergence-time watermark is
        the completion time of the last piece of work performed.
        """
        queue = self._queue
        pop = heapq.heappop
        down = self._down
        handlers_get = self._handlers.get
        busy_until = self._node_busy_until
        processing_cost = self.processing_cost
        max_events = self.max_events
        monotonic = time.monotonic
        perf_counter = time.perf_counter
        while queue:
            # Peek before popping: a too-late event must keep its original
            # sequence number.  Popping and re-pushing it with a fresh
            # ``next(self._sequence)`` would silently demote it behind any
            # same-arrival event pushed later, changing the delivery order of
            # a subsequent ``run`` — a determinism leak across the ``until``
            # boundary.
            if until is not None and queue[0][0] > until:
                break
            arrival, _, message = pop(queue)
            if not isinstance(message, Message):
                if isinstance(message, _GhostDelivery):
                    # A duplicated wire copy: receiver-side dedup suppresses
                    # it.  No clock advance, no handler, no event counted.
                    if self._chaos is not None:
                        self._chaos.on_ghost(message.message, arrival)
                    continue
                if isinstance(message, _FaultEvent):
                    self._apply_fault_event(message, arrival)
                else:
                    self._now = max(self._now, arrival)
                    if self._tracer is not None:
                        self._tracer.instant(
                            CONTROL_PID, "control-callback", "control", sim_ts=self._now
                        )
                    message.callback(self._now)
                continue
            dst = message.dst
            if dst in down:
                # The reliable channel holds the message until the destination
                # recovers (delivery order within the channel is preserved).
                self._held.setdefault(dst, []).append(message)
                continue
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationBudgetExceeded(
                    f"exceeded {max_events} events; the computation is not converging"
                )
            if (
                self._wall_deadline is not None
                and self._events_processed % 32 == 0
                and monotonic() > self._wall_deadline
            ):
                raise SimulationBudgetExceeded(
                    f"exceeded the wall-clock budget of {self.max_wall_seconds} seconds"
                )
            handler = handlers_get(dst)
            if handler is None:
                raise SimulationError(f"no handler registered for node {dst}")
            if message.epoch < self.current_epoch:
                self.stats.stale_epoch_messages += 1
            start = busy_until[dst]
            if arrival > start:
                start = arrival
            updates = self._coalesce_ready(message, start, until)
            completion = start + processing_cost * max(len(updates), 1)
            busy_until[dst] = completion
            self._now = completion
            self.stats.record_time(completion)
            tracer = self._tracer
            if tracer is None:
                wall_start = perf_counter()
                handler(message.port, updates, completion)
                self.handler_seconds += perf_counter() - wall_start
            else:
                self._deliver_traced(tracer, handler, message, updates, completion)
        return self.stats

    def _deliver_traced(
        self,
        tracer,
        handler: NodeHandler,
        message: Message,
        updates: Sequence[Update],
        completion: float,
    ) -> None:
        """Deliver one message under tracing: a ``net``-category delivery span
        on the destination's pipeline lane, incoming flow arrows landed inside
        it, and the node context set so kernel GC passes fired from within the
        handler attach to this node's track."""
        span = tracer.begin(
            message.dst,
            f"deliver:{message.port}",
            "net",
            sim_ts=completion,
            args={"src": message.src, "msg": message.message_id, "updates": len(updates)},
        )
        tracer.flow_finish(message.trace_flow, message.dst)
        coalesced = self._coalesced_flows
        if coalesced:
            for flow_id in coalesced:
                tracer.flow_finish(flow_id, message.dst)
            coalesced.clear()
        tracer.set_node_context(message.dst)
        wall_start = time.perf_counter()
        try:
            handler(message.port, updates, completion)
        finally:
            self.handler_seconds += time.perf_counter() - wall_start
            tracer.clear_node_context()
            tracer.end(span)

    def _coalesce_ready(
        self, message: Message, start: float, until: Optional[float]
    ) -> Sequence[Update]:
        """Merge queued messages for the same (destination, port) into one delivery.

        A message addressed to a busy node would sit in the destination's
        input queue anyway; a batch-first receiver drains that queue as one
        delta (messages from different senders included).  Only the *front*
        of the event queue is eligible — every coalesced message would have
        been the next event regardless — so per-channel FIFO order and
        inter-port ordering are preserved exactly.  Byte and message
        accounting happened at send time and is unaffected; the per-update
        processing cost is charged identically, so virtual time does not
        cheat.
        """
        policy = self.batch_policy
        if not policy.batches_port(message.port) or policy.max_batch <= 1:
            return message.updates
        queue = self._queue
        dst = message.dst
        port = message.port
        if queue:
            # Fast path: nothing coalescible at the queue front.
            arrival, _, head = queue[0]
            if (
                not isinstance(head, Message)
                or head.dst != dst
                or head.port != port
                or arrival > start
            ):
                return message.updates
        else:
            return message.updates
        pop = heapq.heappop
        max_batch = policy.max_batch
        max_events = self.max_events
        wall_deadline = self._wall_deadline
        monotonic = time.monotonic
        current_epoch = self.current_epoch
        tracer = self._tracer
        updates: List[Update] = list(message.updates)
        extend = updates.extend
        while queue and len(updates) < max_batch:
            arrival, _, head = queue[0]
            if (
                not isinstance(head, Message)
                or head.dst != dst
                or head.port != port
                or arrival > start
                or (until is not None and arrival > until)
            ):
                break
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationBudgetExceeded(
                    f"exceeded {max_events} events; the computation is not converging"
                )
            # The drain loop consumes events just like the outer run loop, so
            # it must honour the same wall-clock budget: a huge coalescible
            # queue would otherwise be drained (and its updates handed to one
            # arbitrarily long handler call) with the deadline never checked.
            if (
                wall_deadline is not None
                and self._events_processed % 32 == 0
                and monotonic() > wall_deadline
            ):
                raise SimulationBudgetExceeded(
                    f"exceeded the wall-clock budget of {self.max_wall_seconds} seconds"
                )
            pop(queue)
            if head.epoch < current_epoch:
                self.stats.stale_epoch_messages += 1
            if tracer is not None and head.trace_flow is not None:
                # Landed inside the delivery span about to open, so every
                # coalesced sender's arrow converges on the merged delivery.
                self._coalesced_flows.append(head.trace_flow)
            extend(head.updates)
            self.coalesced_deliveries += 1
        return updates

    def arm_wall_budget(self) -> None:
        """Start (or restart) the wall-clock budget for the current workload phase.

        The budget spans every ``run`` call until it is re-armed, so a phase
        that alternates between draining the queue and flushing ship buffers
        cannot exceed it by resetting the clock.
        """
        if self.max_wall_seconds is not None:
            self._wall_deadline = time.monotonic() + self.max_wall_seconds

    def pending_events(self) -> int:
        """Number of undelivered messages (useful in tests)."""
        return len(self._queue)

    def queue_depths(self) -> Dict[int, int]:
        """Pending message deliveries per destination node (live probe).

        Counts only real messages — fault and control events have no
        destination.  Held messages towards crashed nodes count too: they are
        queued work the destination will face on recovery.
        """
        depths: Dict[int, int] = {}
        for _, _, entry in self._queue:
            if isinstance(entry, Message):
                depths[entry.dst] = depths.get(entry.dst, 0) + 1
        for node, held in self._held.items():
            if held:
                depths[node] = depths.get(node, 0) + len(held)
        return depths

    def reset_stats(self) -> None:
        """Start a fresh statistics accumulator (e.g. between insert and delete phases)."""
        self.stats = NetworkStats(node_count=self.node_count)
        self.stats.record_time(self._now)
