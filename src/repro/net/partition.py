"""DHT-style key partitioning of relations across processor nodes.

The paper stores every relation horizontally partitioned by a key attribute —
``link(src, dst)`` lives at the node responsible for ``src``, the recursive
``reachable`` view at the node responsible for its ``src``, and joins require
shipping tuples to the node that owns the join key (Figure 4).  In the real
system the mapping from key to node is a FreePastry DHT; here it is a stable
hash modulo the processor count, optionally with an explicit override used by
the worked-example tests (where node A literally stores ``src = A``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.data.relation import stable_hash


class HashPartitioner:
    """Maps partition-key values to processor node ids."""

    def __init__(
        self,
        node_count: int,
        overrides: Optional[Dict[Any, int]] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.node_count = node_count
        self._overrides = dict(overrides or {})
        #: key -> node memo; the FNV hash over repr() is pure but not cheap,
        #: and routing consults the same few hundred keys millions of times.
        self._memo: Dict[Any, int] = {}
        #: Placement version.  The modulo partitioner is static, so the epoch
        #: only moves when :meth:`assign` pins a key — which is exactly when
        #: any owner cache layered above (see
        #: :meth:`repro.placement.map.PlacementMap.nodes_for_many` and the
        #: engine's :class:`~repro.engine.routing.BatchRouter`) must drop its
        #: entries.
        self.epoch = 0
        #: Bulk-lookup telemetry (see :meth:`routing_stats`).
        self.bulk_lookups = 0
        self.keys_routed = 0
        self.lookup_cache_hits = 0

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids (the modulo partitioner owns a dense range).

        Part of the :class:`repro.placement.Partitioner` protocol, which the
        consistent-hash ring also implements.
        """
        return tuple(range(self.node_count))

    def node_for(self, key: Any) -> int:
        """Processor node responsible for ``key``."""
        node = self._memo.get(key)
        if node is not None:
            return node
        if key in self._overrides:
            node = self._overrides[key]
        else:
            node = stable_hash(key) % self.node_count
        self._memo[key] = node
        return node

    def __call__(self, key: Any) -> int:
        return self.node_for(key)

    def nodes_for_many(self, keys: Sequence[Any]) -> List[int]:
        """Owners of a whole key column, resolved in one bulk pass.

        The columnar twin of :meth:`node_for`: the memo, override table and
        hash function are bound once per *batch* instead of once per key,
        which is what the engine's :class:`~repro.engine.routing.BatchRouter`
        calls on every delivered batch.
        """
        memo = self._memo
        memo_get = memo.get
        overrides = self._overrides
        node_count = self.node_count
        owners: List[int] = []
        append = owners.append
        hits = 0
        for key in keys:
            node = memo_get(key)
            if node is None:
                if overrides:
                    node = overrides.get(key)
                if node is None:
                    node = stable_hash(key) % node_count
                memo[key] = node
            else:
                hits += 1
            append(node)
        self.bulk_lookups += 1
        self.keys_routed += len(owners)
        self.lookup_cache_hits += hits
        return owners

    def routing_stats(self) -> Dict[str, int]:
        """Bulk-lookup counters (uniform across partitioner implementations)."""
        return {
            "bulk_lookups": self.bulk_lookups,
            "keys_routed": self.keys_routed,
            "lookup_cache_hits": self.lookup_cache_hits,
        }

    def assign(self, key: Any, node: int) -> None:
        """Pin ``key`` to an explicit node (used by the paper's worked example)."""
        if not 0 <= node < self.node_count:
            raise ValueError(f"node {node} out of range for {self.node_count} nodes")
        self._overrides[key] = node
        self._memo.clear()
        self.epoch += 1

    @staticmethod
    def identity(node_count: int, keys: Dict[Any, int]) -> "HashPartitioner":
        """A partitioner that places exactly the given keys at the given nodes."""
        return HashPartitioner(node_count, overrides=keys)
