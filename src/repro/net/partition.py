"""DHT-style key partitioning of relations across processor nodes.

The paper stores every relation horizontally partitioned by a key attribute —
``link(src, dst)`` lives at the node responsible for ``src``, the recursive
``reachable`` view at the node responsible for its ``src``, and joins require
shipping tuples to the node that owns the join key (Figure 4).  In the real
system the mapping from key to node is a FreePastry DHT; here it is a stable
hash modulo the processor count, optionally with an explicit override used by
the worked-example tests (where node A literally stores ``src = A``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.data.relation import stable_hash


class HashPartitioner:
    """Maps partition-key values to processor node ids."""

    def __init__(
        self,
        node_count: int,
        overrides: Optional[Dict[Any, int]] = None,
    ) -> None:
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        self.node_count = node_count
        self._overrides = dict(overrides or {})
        #: key -> node memo; the FNV hash over repr() is pure but not cheap,
        #: and routing consults the same few hundred keys millions of times.
        self._memo: Dict[Any, int] = {}

    @property
    def nodes(self) -> PyTuple[int, ...]:
        """The member node ids (the modulo partitioner owns a dense range).

        Part of the :class:`repro.placement.Partitioner` protocol, which the
        consistent-hash ring also implements.
        """
        return tuple(range(self.node_count))

    def node_for(self, key: Any) -> int:
        """Processor node responsible for ``key``."""
        node = self._memo.get(key)
        if node is not None:
            return node
        if key in self._overrides:
            node = self._overrides[key]
        else:
            node = stable_hash(key) % self.node_count
        self._memo[key] = node
        return node

    def __call__(self, key: Any) -> int:
        return self.node_for(key)

    def assign(self, key: Any, node: int) -> None:
        """Pin ``key`` to an explicit node (used by the paper's worked example)."""
        if not 0 <= node < self.node_count:
            raise ValueError(f"node {node} out of range for {self.node_count} nodes")
        self._overrides[key] = node
        self._memo.clear()

    @staticmethod
    def identity(node_count: int, keys: Dict[Any, int]) -> "HashPartitioner":
        """A partitioner that places exactly the given keys at the given nodes."""
        return HashPartitioner(node_count, overrides=keys)
