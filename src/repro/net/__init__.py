"""Event-driven simulation of the distributed query-processor cluster.

The paper evaluates its techniques on a Java query processor running over a
FreePastry DHT across 12-24 physical machines.  This package substitutes a
deterministic, event-driven **simulated cluster**:

* :class:`~repro.net.message.Message` — a batch of updates shipped from one
  processor node to another, with byte-level size accounting;
* :class:`~repro.net.latency.LatencyModel` — per-pair message latencies
  (intra-cluster, inter-cluster, or custom);
* :class:`~repro.net.simulator.SimulatedNetwork` — a virtual-time event loop
  with reliable in-order (FIFO) delivery between node pairs, per-update
  processing costs and quiescence detection (the distributed fixpoint);
* :class:`~repro.net.stats.NetworkStats` — the communication-overhead and
  convergence-time metrics reported in Section 7;
* :mod:`repro.net.partition` — DHT-style key partitioning of relations across
  processor nodes.

Because all four evaluation metrics of the paper are functions of *which*
tuples and annotations get shipped and stored — not of the physical NIC — the
simulation preserves the comparative results while remaining laptop-scale.
"""

from repro.net.latency import ClusterLatencyModel, LatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.partition import HashPartitioner
from repro.net.simulator import SimulatedNetwork
from repro.net.stats import NetworkStats
from repro.net.transport import Transport

__all__ = [
    "Message",
    "LatencyModel",
    "UniformLatencyModel",
    "ClusterLatencyModel",
    "HashPartitioner",
    "SimulatedNetwork",
    "NetworkStats",
    "Transport",
]
