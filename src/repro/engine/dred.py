"""The DRed (delete and re-derive) coordinator.

DRed (Gupta, Mumick, Subrahmanian, SIGMOD 1993) maintains a recursive view
without provenance by:

1. **over-deleting**: propagating deletions through the rules, removing every
   tuple that has *some* derivation involving a deleted tuple; then
2. **re-deriving**: re-running the rules over the remaining data so that
   tuples with surviving alternative derivations reappear.

In a distributed setting the two phases must be globally synchronised — the
re-derivation must not start anywhere before the over-deletion has quiesced
everywhere — which the paper identifies as one of DRed's fundamental costs.
The coordinator below enforces that barrier by running the over-deletion to
network quiescence and only then seeding the re-derivation pass from the live
base data (re-scanning the base relations, which is why DRed's deletion cost
approaches the cost of recomputing the view from scratch: Figure 5 / Section
3.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.data.batch import BatchPolicy, UpdateBatch
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.engine.runtime import PORT_BASE, PORT_SEED, ProcessorNode
from repro.net.partition import HashPartitioner
from repro.net.transport import Transport


class DRedCoordinator:
    """Orchestrates over-deletion and re-derivation across the simulated cluster."""

    def __init__(
        self,
        network: Transport,
        nodes: Sequence[ProcessorNode],
        partitioner: HashPartitioner,
        batch_policy: Optional[BatchPolicy] = None,
    ) -> None:
        self.network = network
        self.nodes = nodes
        self.partitioner = partitioner
        self.batch_policy = batch_policy or BatchPolicy()

    def _inject_grouped(
        self,
        update_type: UpdateType,
        edges: Iterable[Tuple],
        seeds: Iterable[Tuple],
        edge_partition_attribute: str,
        result_partition_attribute: str,
        at_time: float,
    ) -> int:
        """Inject tuples at their owners, grouped per owner in policy-sized chunks.

        Owners resolve through one bulk partitioner call per column (edges,
        seeds) — the same columnar path the engine's routing layer uses.
        """
        injected = 0
        edges = list(edges)
        seeds = list(seeds)
        bulk = getattr(self.partitioner, "nodes_for_many", None)
        if bulk is None:
            scalar = self.partitioner.node_for
            bulk = lambda keys: [scalar(key) for key in keys]  # noqa: E731
        edges_by_owner: Dict[int, List[Update]] = defaultdict(list)
        edge_owners = bulk([edge[edge_partition_attribute] for edge in edges])
        for edge, owner in zip(edges, edge_owners):
            edges_by_owner[owner].append(Update(update_type, edge, timestamp=at_time))
        seeds_by_owner: Dict[int, List[Update]] = defaultdict(list)
        seed_owners = bulk([seed[result_partition_attribute] for seed in seeds])
        for seed, owner in zip(seeds, seed_owners):
            seeds_by_owner[owner].append(Update(update_type, seed, timestamp=at_time))
        for port, by_owner in ((PORT_BASE, edges_by_owner), (PORT_SEED, seeds_by_owner)):
            for owner, updates in by_owner.items():
                batch = UpdateBatch(updates)
                for chunk in batch.chunks(self.batch_policy.injection_chunk(port)):
                    self.network.inject(owner, port, chunk, at_time)
                injected += len(updates)
        return injected

    # -- phase 1: over-deletion ----------------------------------------------------
    def inject_deletions(
        self,
        edge_deletions: Iterable[Tuple],
        seed_deletions: Iterable[Tuple],
        edge_partition_attribute: str,
        result_partition_attribute: str,
        at_time: float,
    ) -> None:
        """Inject base deletions at their owner nodes (the over-deletion seeds)."""
        self._inject_grouped(
            UpdateType.DEL,
            edge_deletions,
            seed_deletions,
            edge_partition_attribute,
            result_partition_attribute,
            at_time,
        )

    # -- phase 2: re-derivation --------------------------------------------------------
    def rederive(
        self,
        live_edges: Iterable[Tuple],
        live_seeds: Iterable[Tuple],
        edge_partition_attribute: str,
        result_partition_attribute: str,
        at_time: float,
    ) -> int:
        """Re-scan the live base data after the over-deletion has quiesced.

        The edge-side join state is cleared first so the re-scanned edges probe
        the surviving view tuples again instead of being suppressed as
        duplicates; this is what makes re-derivation complete (and expensive).
        Returns the number of re-injected base tuples.
        """
        for node in self.nodes:
            node.join.clear_left()
        return self._inject_grouped(
            UpdateType.INS,
            live_edges,
            live_seeds,
            edge_partition_attribute,
            result_partition_attribute,
            at_time,
        )
