"""The distributed recursive-view engine.

This package glues the provenance-aware operators to the simulated network:

* :mod:`repro.engine.strategy` — which maintenance scheme to run
  (DRed / absorption / relative provenance, eager / lazy shipping);
* :mod:`repro.engine.plan` — declarative description of a linearly recursive
  distributed view (edge relation, recursive rule, aggregate selections);
* :mod:`repro.engine.runtime` — the per-node operator wiring of Figure 4;
* :mod:`repro.engine.executor` — drives a plan over a simulated cluster,
  injects insert/delete workloads, runs to the distributed fixpoint and
  collects the four evaluation metrics of Section 7;
* :mod:`repro.engine.dred` — the DRed (over-delete / re-derive) deletion
  coordinator used when running without provenance;
* :mod:`repro.engine.metrics` — experiment metric containers.
"""

from repro.engine.executor import DistributedViewExecutor
from repro.engine.metrics import ExperimentMetrics, PhaseMetrics
from repro.engine.plan import RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy

__all__ = [
    "DistributedViewExecutor",
    "RecursiveViewPlan",
    "ExecutionStrategy",
    "ExperimentMetrics",
    "PhaseMetrics",
]
