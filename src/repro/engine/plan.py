"""Declarative description of a distributed, linearly recursive view.

All three use cases of Section 2 share one recursion shape — a linear
recursive rule joining an *edge* relation against the recursive view itself:

* ``reachable(x, y) :- link(x, y).``
  ``reachable(x, y) :- link(x, z), reachable(z, y).``
* ``path(x, y, p, c, l) :- link(x, y, c), ...``
  ``path(x, y, p, c, l) :- link(x, z, c0), path(z, y, p1, c1, l1), ...``
* ``activeRegion(r, x) :- seed(r, x).``
  ``activeRegion(r, y) :- proximity(x, y), activeRegion(r, x).``

:class:`RecursiveViewPlan` captures the shape once so the runtime (Figure 4's
operator wiring) and the executor are query-agnostic: the query modules in
:mod:`repro.queries` only provide schemas, the base-case transform, the
recursive combiner and any aggregate selections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple as PyTuple

from repro.data.tuples import Schema, Tuple
from repro.operators.aggsel import AggregateSpec

#: Builds the base-case view tuple from an edge tuple (None to skip; for the
#: region query the base case comes from seeds instead).
BaseCase = Callable[[Tuple], Optional[Tuple]]
#: Builds the recursive-step view tuple from (edge tuple, view tuple); None to
#: reject the pairing (cycle guards, hop bounds, distance predicates).
RecursiveStep = Callable[[Tuple, Tuple], Optional[Tuple]]


class PlanError(Exception):
    """Raised when a plan description is inconsistent."""


@dataclass(frozen=True)
class RecursiveViewPlan:
    """A linearly recursive distributed view definition."""

    name: str
    edge_schema: Schema
    result_schema: Schema
    #: Attribute of the edge relation equated with the view's join attribute
    #: in the recursive rule (``link.dst`` for reachability).
    edge_join_attribute: str
    #: Attribute of the view relation used in the recursive join
    #: (``reachable.src``); must equal the view's partition attribute so the
    #: join is co-located with the view partition, as in Figure 4.
    result_join_attribute: str
    #: Base case: edge tuple -> view tuple (or None when seeds provide the base case).
    make_base: Optional[BaseCase]
    #: Recursive step: (edge tuple, view tuple) -> new view tuple or None.
    combine: RecursiveStep
    #: Aggregate selections to push into Fixpoint / MinShip (Section 6).
    aggregate_specs: PyTuple[AggregateSpec, ...] = ()
    #: Optional soft-state window (seconds) on the edge relation.
    edge_window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.edge_join_attribute not in self.edge_schema.attributes:
            raise PlanError(
                f"edge join attribute {self.edge_join_attribute!r} not in "
                f"{self.edge_schema.relation!r}"
            )
        if self.result_join_attribute not in self.result_schema.attributes:
            raise PlanError(
                f"result join attribute {self.result_join_attribute!r} not in "
                f"{self.result_schema.relation!r}"
            )
        if self.result_join_attribute != self.result_schema.partition_attribute:
            raise PlanError(
                "the recursive join must be co-located with the view partition: "
                f"result_join_attribute={self.result_join_attribute!r} but the view is "
                f"partitioned on {self.result_schema.partition_attribute!r}"
            )

    # -- convenience ------------------------------------------------------------
    @property
    def has_aggregate_selection(self) -> bool:
        """True when the plan prunes tuples with aggregate selections."""
        return bool(self.aggregate_specs)

    def edge_join_value(self, edge: Tuple) -> object:
        """Join-key value of an edge tuple."""
        return edge[self.edge_join_attribute]

    def result_partition_value(self, result: Tuple) -> object:
        """Partition-key value of a view tuple (where it must be stored)."""
        return result[self.result_schema.partition_attribute]

    def base_tuple_for(self, edge: Tuple) -> Optional[Tuple]:
        """Base-case view tuple derived from an edge tuple, if any."""
        if self.make_base is None:
            return None
        return self.make_base(edge)

    def with_aggregate_specs(self, specs: Sequence[AggregateSpec]) -> "RecursiveViewPlan":
        """Copy of the plan with different aggregate selections (ablations)."""
        return RecursiveViewPlan(
            name=self.name,
            edge_schema=self.edge_schema,
            result_schema=self.result_schema,
            edge_join_attribute=self.edge_join_attribute,
            result_join_attribute=self.result_join_attribute,
            make_base=self.make_base,
            combine=self.combine,
            aggregate_specs=tuple(specs),
            edge_window=self.edge_window,
        )
