"""The experiment driver: runs a distributed recursive view over the simulated cluster.

:class:`DistributedViewExecutor` owns the simulated network, the processor
nodes, and the provenance store for one experiment run.  Workloads are applied
in *phases* (for example "insert 75 % of the links", then "delete 20 % of
them"); each phase runs to distributed quiescence and yields one
:class:`~repro.engine.metrics.PhaseMetrics` with the paper's four evaluation
metrics.  The executor also exposes the materialised view contents so tests
can compare against ground truth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

import time

from repro.data.batch import BatchPolicy, UpdateBatch
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.engine.dred import DRedCoordinator
from repro.engine.metrics import ExperimentMetrics, KernelPhaseStats, PhaseMetrics
from repro.engine.plan import RecursiveViewPlan
from repro.engine.routing import RoutingStats
from repro.engine.runtime import (
    PORT_BASE,
    PORT_SEED,
    ProcessorNode,
)
from repro.engine.strategy import ExecutionStrategy
from repro.net.latency import LatencyModel
from repro.net.partition import HashPartitioner
from repro.net.simulator import SimulatedNetwork
from repro.obs.metrics import Histogram, MetricsRegistry, current_metrics_log
from repro.obs.trace import HARNESS_PID, current_tracer
from repro.operators.ship import MinShipOperator, ShipMode


class DistributedViewExecutor:
    """Executes one :class:`RecursiveViewPlan` under one :class:`ExecutionStrategy`."""

    def __init__(
        self,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        node_count: int = 12,
        latency_model: Optional[LatencyModel] = None,
        partitioner: Optional[HashPartitioner] = None,
        processing_cost: float = 0.00002,
        max_events: int = 5_000_000,
        max_wall_seconds: Optional[float] = None,
        experiment: str = "experiment",
        batch_policy: Optional[BatchPolicy] = None,
    ) -> None:
        self.plan = plan
        self.strategy = strategy
        self.batch_policy = batch_policy or BatchPolicy()
        # The partitioner is the single source of truth for cluster size: when
        # one is supplied, ``node_count`` is derived from it instead of being a
        # redundant second argument that could contradict it.
        self.partitioner = partitioner or HashPartitioner(node_count)
        node_count = self.partitioner.node_count
        # Backend hooks: the process backend (repro.parallel.backend) swaps
        # the store for a cluster facade, the network for the cross-process
        # coordinator, and the nodes for thin per-node proxies.
        self.store = self._create_store()
        self.network = self._create_network(
            latency_model, processing_cost, max_events, max_wall_seconds
        )
        #: The span tracer for this run: the process-wide active tracer
        #: (installed by ``--trace``), resolved once at construction.  The
        #: network stores ``None`` when tracing is off, and the nodes read
        #: that — install the tracer *before* building an executor.
        self.tracer = current_tracer()
        self.network.set_tracer(self.tracer)
        #: One routing-telemetry accumulator shared by every node's router,
        #: so per-phase deltas describe the whole cluster.
        self.routing_stats = self._create_routing_stats()
        self.nodes = self._create_nodes()
        self._dred = DRedCoordinator(
            self.network, self.nodes, self.partitioner, batch_policy=self.batch_policy
        )
        #: Live base state, needed by DRed re-derivation and by ground-truth checks.
        self.live_edges: Set[Tuple] = set()
        self.live_seeds: Set[Tuple] = set()
        self.metrics = ExperimentMetrics(experiment=experiment, scheme=strategy.label)
        #: Unified registry over the run's live stat objects (lazy probes:
        #: nothing is read until a snapshot is taken).
        self.metrics_registry = self._build_metrics_registry()

    # -- backend hooks ---------------------------------------------------------------
    def _create_store(self):
        """The provenance store every node of this executor shares."""
        return self.strategy.create_store()

    def _create_network(
        self,
        latency_model: Optional[LatencyModel],
        processing_cost: float,
        max_events: int,
        max_wall_seconds: Optional[float],
    ) -> SimulatedNetwork:
        """The virtual-time substrate handlers run over."""
        return SimulatedNetwork(
            node_count=self.partitioner.node_count,
            latency_model=latency_model,
            processing_cost=processing_cost,
            max_events=max_events,
            max_wall_seconds=max_wall_seconds,
            batch_policy=self.batch_policy,
        )

    def _create_routing_stats(self) -> RoutingStats:
        return RoutingStats()

    def _create_nodes(self) -> List[ProcessorNode]:
        """Build the cluster's nodes and wire their handlers into the network."""
        nodes = [self._make_node(node_id) for node_id in range(self.partitioner.node_count)]
        for node in nodes:
            self.network.register(node.node_id, node.handle)
        return nodes

    def close(self) -> None:
        """Release backend resources (worker pools); no-op for the in-process backend."""

    def _build_metrics_registry(self) -> MetricsRegistry:
        """Register every subsystem's stat object into one metrics registry.

        Probes close over ``self`` (not over the stat objects) because several
        of them are replaced wholesale during a run — ``reset_stats`` swaps
        the network accumulator at each phase boundary.
        """
        registry = MetricsRegistry()
        network = self.network

        def net_probe():
            stats = network.stats
            return {
                "messages": stats.total_messages,
                "updates_shipped": stats.total_updates_shipped,
                "communication_mb": stats.communication_mb,
                "stale_epoch_messages": stats.stale_epoch_messages,
                "dropped_messages": network.dropped_messages,
                "convergence_time_s": stats.convergence_time,
                "handler_seconds": network.handler_seconds,
                "pending_events": network.pending_events(),
            }

        registry.register_probe("net", net_probe)

        def queue_probe():
            depths = network.queue_depths()
            flat = {f"node{node}": depth for node, depth in sorted(depths.items())}
            flat["total"] = sum(depths.values())
            return flat

        registry.register_probe("queue_depth", queue_probe)
        registry.register_probe(
            "routing", lambda: self.routing_stats.snapshot(self.partitioner)
        )

        def kernel_probe():
            stats = self.store.kernel_stats()
            return stats if stats is not None else {}

        registry.register_probe("kernel", kernel_probe)
        self._register_engine_probes(registry)
        return registry

    def _register_engine_probes(self, registry: MetricsRegistry) -> None:
        """Probes that read node internals directly (backend-specific).

        The in-process backend reads its nodes' fixpoint histograms; the
        process backend replaces this with the snapshot-then-merge path over
        its workers' materialized registries.
        """

        def fixpoint_probe():
            rollup = None
            for node in self.nodes:
                histogram = node.fixpoint.delta_histogram
                if rollup is None:
                    rollup = Histogram(histogram.name)
                rollup.merge(histogram)
            return rollup.as_flat() if rollup is not None else {}

        registry.register_probe("fixpoint", fixpoint_probe)

    def _make_node(self, node_id: int) -> ProcessorNode:
        """Build one processor node (also used to rebuild a node after a crash)."""
        return ProcessorNode(
            node_id,
            self.plan,
            self.strategy,
            self.store,
            self.partitioner,
            self.network,
            batch_policy=self.batch_policy,
            routing_stats=self.routing_stats,
        )

    # -- workload API -----------------------------------------------------------------
    def insert_edges(self, edges: Iterable[Tuple], label: str = "insert") -> PhaseMetrics:
        """Insert edge (base-relation) tuples and run to the distributed fixpoint."""
        edges = list(edges)
        return self._run_phase(label, edge_inserts=edges)

    def delete_edges(self, edges: Iterable[Tuple], label: str = "delete") -> PhaseMetrics:
        """Delete edge tuples and run maintenance to quiescence."""
        edges = list(edges)
        return self._run_phase(label, edge_deletes=edges)

    def insert_seeds(self, seeds: Iterable[Tuple], label: str = "seed") -> PhaseMetrics:
        """Insert seed view tuples (for example region seeds) directly into the view."""
        seeds = list(seeds)
        return self._run_phase(label, seed_inserts=seeds)

    def delete_seeds(self, seeds: Iterable[Tuple], label: str = "unseed") -> PhaseMetrics:
        """Delete seed view tuples."""
        seeds = list(seeds)
        return self._run_phase(label, seed_deletes=seeds)

    def apply_mixed(
        self,
        edge_inserts: Sequence[Tuple] = (),
        edge_deletes: Sequence[Tuple] = (),
        seed_inserts: Sequence[Tuple] = (),
        seed_deletes: Sequence[Tuple] = (),
        label: str = "mixed",
    ) -> PhaseMetrics:
        """Apply a mixed batch of base-data changes as one phase."""
        return self._run_phase(
            label,
            edge_inserts=list(edge_inserts),
            edge_deletes=list(edge_deletes),
            seed_inserts=list(seed_inserts),
            seed_deletes=list(seed_deletes),
        )

    # -- phase machinery -------------------------------------------------------------------
    def _run_phase(
        self,
        label: str,
        edge_inserts: Sequence[Tuple] = (),
        edge_deletes: Sequence[Tuple] = (),
        seed_inserts: Sequence[Tuple] = (),
        seed_deletes: Sequence[Tuple] = (),
    ) -> PhaseMetrics:
        try:
            return self._run_phase_body(
                label, edge_inserts, edge_deletes, seed_inserts, seed_deletes
            )
        except Exception as exc:
            # Post-mortem hook: budget overruns, worker deaths and handler
            # crashes all surface here.  When the always-on flight recorder is
            # installed, its rings (plus every live worker's, on the process
            # backend) become a loadable trace before the exception continues.
            self._on_phase_failure(label, exc)
            raise

    def _on_phase_failure(self, label: str, exc: Exception) -> None:
        """Dump the flight recorder on a failed phase (best-effort, never raises)."""
        from repro.obs.flight import maybe_dump_flight

        try:
            self._collect_flight_rings()
        except Exception:
            pass
        try:
            maybe_dump_flight(f"phase:{label} failed: {type(exc).__name__}: {exc}")
        except Exception:
            pass

    def _collect_flight_rings(self) -> None:
        """Fold remote recorder rings in before a dump (no-op in-process)."""

    def _run_phase_body(
        self,
        label: str,
        edge_inserts: Sequence[Tuple] = (),
        edge_deletes: Sequence[Tuple] = (),
        seed_inserts: Sequence[Tuple] = (),
        seed_deletes: Sequence[Tuple] = (),
    ) -> PhaseMetrics:
        self.network.reset_stats()
        self.network.arm_wall_budget()
        phase_start = self.network.now
        tracer = self.tracer
        traced = tracer.enabled
        phase_span = None
        if traced:
            phase_span = tracer.begin(
                HARNESS_PID,
                f"phase:{label}",
                "phase",
                sim_ts=phase_start,
                args={
                    "experiment": self.metrics.experiment,
                    "scheme": self.metrics.scheme,
                },
            )
        wall_start = time.perf_counter()
        handler_start = self.network.handler_seconds
        kernel_start = self.store.kernel_stats()
        routing_start = self.routing_stats.snapshot(self.partitioner)

        self._inject_insertions(edge_inserts, seed_inserts, phase_start)
        if self.strategy.uses_dred and (edge_deletes or seed_deletes):
            self._run_dred_deletions(
                edge_deletes,
                seed_deletes,
                phase_start,
                phase_edge_inserts=edge_inserts,
                phase_seed_inserts=seed_inserts,
            )
        else:
            self._inject_deletions(edge_deletes, seed_deletes, phase_start)
            self._run_to_quiescence()

        self._update_live_base(edge_inserts, edge_deletes, seed_inserts, seed_deletes)
        if traced:
            # One boundary collection pass (mark-only unless the dead fraction
            # warrants compacting) so every traced run carries GC spans even
            # when no automatic collection fired mid-phase.  Phases are
            # quiescent here, which is exactly when a pass is safe.
            self.store.collect(force=False)
        phase = self._collect_phase(
            label,
            phase_start,
            wall_seconds=time.perf_counter() - wall_start,
            handler_seconds=self.network.handler_seconds - handler_start,
            kernel_start=kernel_start,
            routing_start=routing_start,
        )
        self.metrics.add_phase(phase)
        if traced:
            tracer.end(phase_span, sim_ts=self.network.now)
        log = current_metrics_log()
        if log is not None:
            log.record(
                {
                    "experiment": self.metrics.experiment,
                    "scheme": self.metrics.scheme,
                    "phase": label,
                },
                self.metrics_registry.snapshot(),
            )
        return phase

    def _inject_batches(
        self,
        update_type: UpdateType,
        edges: Sequence[Tuple],
        seeds: Sequence[Tuple],
        at_time: float,
    ) -> None:
        """Inject workload tuples grouped by owner node in policy-sized batches.

        Grouping is what makes the delta pipeline batch-first end to end: the
        owner's ``base`` handler receives the whole chunk, annotates and
        routes it with one message per destination, and (for deletions under
        a provenance strategy) issues one coalesced purge multicast per chunk
        instead of one per tuple.
        """
        # Owners for the whole workload resolve in one bulk partitioner call
        # per column (the executor-side twin of the nodes' BatchRouter).
        bulk = getattr(self.partitioner, "nodes_for_many", None)
        if bulk is None:
            scalar = self.partitioner.node_for
            bulk = lambda keys: [scalar(key) for key in keys]  # noqa: E731
        edges_by_owner: Dict[int, List[Update]] = defaultdict(list)
        edge_owners = bulk([edge.partition_value for edge in edges])
        for edge, owner in zip(edges, edge_owners):
            edges_by_owner[owner].append(Update(update_type, edge, timestamp=at_time))
        seed_key = self.plan.result_partition_value
        seeds_by_owner: Dict[int, List[Update]] = defaultdict(list)
        seed_owners = bulk([seed_key(seed) for seed in seeds])
        for seed, owner in zip(seeds, seed_owners):
            seeds_by_owner[owner].append(Update(update_type, seed, timestamp=at_time))
        for port, by_owner in ((PORT_BASE, edges_by_owner), (PORT_SEED, seeds_by_owner)):
            for owner, updates in by_owner.items():
                batch = UpdateBatch(updates)
                for chunk in batch.chunks(self.batch_policy.injection_chunk(port)):
                    self.network.inject(owner, port, chunk, at_time)

    def _inject_insertions(
        self, edge_inserts: Sequence[Tuple], seed_inserts: Sequence[Tuple], at_time: float
    ) -> None:
        self._inject_batches(UpdateType.INS, edge_inserts, seed_inserts, at_time)
        if edge_inserts or seed_inserts:
            self._run_to_quiescence()

    def _inject_deletions(
        self, edge_deletes: Sequence[Tuple], seed_deletes: Sequence[Tuple], at_time: float
    ) -> None:
        self._inject_batches(
            UpdateType.DEL, edge_deletes, seed_deletes, self.network.now
        )

    def _run_dred_deletions(
        self,
        edge_deletes: Sequence[Tuple],
        seed_deletes: Sequence[Tuple],
        at_time: float,
        phase_edge_inserts: Sequence[Tuple] = (),
        phase_seed_inserts: Sequence[Tuple] = (),
    ) -> None:
        # Phase 1: over-delete to quiescence (requires a global barrier).
        self._dred.inject_deletions(
            edge_deletes,
            seed_deletes,
            edge_partition_attribute=self.plan.edge_schema.partition_attribute,
            result_partition_attribute=self.plan.result_schema.partition_attribute,
            at_time=self.network.now,
        )
        self._run_to_quiescence()
        # Phase 2: re-derive from the live base data.  A mixed phase's own
        # insertions are already applied but not yet folded into
        # ``live_edges``/``live_seeds`` (that happens at phase end), so they
        # must count as live here or re-derivation misses them.
        remaining_edges = (self.live_edges | set(phase_edge_inserts)) - set(edge_deletes)
        remaining_seeds = (self.live_seeds | set(phase_seed_inserts)) - set(seed_deletes)
        self._dred.rederive(
            remaining_edges,
            remaining_seeds,
            edge_partition_attribute=self.plan.edge_schema.partition_attribute,
            result_partition_attribute=self.plan.result_schema.partition_attribute,
            at_time=self.network.now,
        )
        self._run_to_quiescence()

    def _run_to_quiescence(self) -> None:
        """Drain the network, flushing eager ship buffers at each quiescent point.

        The flush loop emulates MinShip's periodic (timer-driven) batch
        shipping: whenever the network goes idle, every eager MinShip gets a
        timer tick; if any of them released buffered derivations, the network
        runs again until nothing is left anywhere.
        """
        while True:
            self.network.run()
            released = 0
            for node in self.nodes:
                if self.network.is_down(node.node_id):
                    continue  # a crashed node gets no timer ticks
                if isinstance(node.ship, MinShipOperator) and node.ship.mode is ShipMode.EAGER:
                    released += node.flush_ship(self.network.now)
            if released == 0:
                break

    def _update_live_base(
        self,
        edge_inserts: Sequence[Tuple],
        edge_deletes: Sequence[Tuple],
        seed_inserts: Sequence[Tuple],
        seed_deletes: Sequence[Tuple],
    ) -> None:
        self.live_edges.update(edge_inserts)
        self.live_edges.difference_update(edge_deletes)
        self.live_seeds.update(seed_inserts)
        self.live_seeds.difference_update(seed_deletes)

    def _collect_phase(
        self,
        label: str,
        phase_start: float,
        wall_seconds: float = 0.0,
        handler_seconds: float = 0.0,
        kernel_start: Optional[Dict[str, object]] = None,
        routing_start: Optional[Dict[str, int]] = None,
    ) -> PhaseMetrics:
        stats = self.network.stats
        elapsed = max(stats.convergence_time - phase_start, 0.0)
        return PhaseMetrics(
            label=label,
            per_tuple_provenance_bytes=stats.per_tuple_provenance_bytes,
            communication_mb=stats.communication_mb,
            state_mb=self.state_bytes() / 1_000_000.0,
            convergence_time_s=elapsed,
            messages=stats.total_messages,
            updates_shipped=stats.total_updates_shipped,
            view_size=len(self.view()),
            wall_seconds=wall_seconds,
            kernel=self._kernel_phase_stats(
                kernel_start, wall_seconds, handler_seconds, routing_start
            ),
        )

    def _kernel_phase_stats(
        self,
        kernel_start: Optional[Dict[str, object]],
        wall_seconds: float,
        handler_seconds: float,
        routing_start: Optional[Dict[str, int]] = None,
    ) -> Optional[KernelPhaseStats]:
        """Per-phase annotation-kernel telemetry (None for kernel-less stores).

        Monotonic counters are reported as deltas against the phase-start
        snapshot.  ``routing_time_s`` is the routing layer's own timer
        (:attr:`~repro.engine.routing.RoutingStats.seconds`), directly
        measured; ``operator_time_s`` is the handler wall time left after
        subtracting the kernel's, GC's and routing layer's shares;
        ``net_time_s`` the rest of the phase wall.  The routing sub-counters
        (bulk lookups, cache hits, bounce passes) are deltas of the shared
        :class:`~repro.engine.routing.RoutingStats`.
        """
        current = self.store.kernel_stats()
        if current is None:
            return None
        start = kernel_start or {}
        kernel_delta = current["kernel_time_s"] - start.get("kernel_time_s", 0.0)
        gc_delta = current["gc_pause_s"] - start.get("gc_pause_s", 0.0)
        routing_now = self.routing_stats.snapshot(self.partitioner)
        routing_was = routing_start or {}
        routing_delta = routing_now["seconds"] - routing_was.get("seconds", 0.0)
        return KernelPhaseStats(
            table_size=current["table_size"],
            peak_table_size=current["peak_table_size"],
            nodes_reclaimed=current["nodes_reclaimed"] - start.get("nodes_reclaimed", 0),
            gc_passes=current["gc_passes"] - start.get("gc_passes", 0),
            gc_compactions=current["gc_compactions"] - start.get("gc_compactions", 0),
            gc_pause_s=gc_delta,
            kernel_time_s=kernel_delta,
            routing_time_s=routing_delta,
            operator_time_s=max(
                handler_seconds - kernel_delta - gc_delta - routing_delta, 0.0
            ),
            net_time_s=max(wall_seconds - handler_seconds, 0.0),
            routing_bulk_lookups=routing_now["bulk_lookups"]
            - routing_was.get("bulk_lookups", 0),
            routing_cache_hits=routing_now["lookup_cache_hits"]
            - routing_was.get("lookup_cache_hits", 0),
            routing_bounce_passes=routing_now["bounce_passes"]
            - routing_was.get("bounce_passes", 0),
        )

    # -- results --------------------------------------------------------------------------------
    def view(self) -> Set[Tuple]:
        """The materialised recursive view (union of all node partitions)."""
        result: Set[Tuple] = set()
        for node in self.nodes:
            result.update(node.view_tuples())
        return result

    def view_values(self) -> Set[PyTuple[object, ...]]:
        """The view as raw value tuples (for comparisons with ground truth)."""
        return {tuple_.values for tuple_ in self.view()}

    def view_at(self, node_id: int) -> Set[Tuple]:
        """One node's partition of the view."""
        return set(self.nodes[node_id].view_tuples())

    def view_annotations(self) -> Dict[Tuple, object]:
        """Canonical provenance annotation per view tuple, cluster-wide.

        Canonical means backend-independent (see
        :func:`repro.provenance.tracker.canonical_annotation`): BDD
        annotations become their minimal product sets, so an in-process run
        and a process-pool run — whose workers each own a private manager —
        compare equal exactly when the provenance is semantically identical.
        """
        from repro.provenance.tracker import canonical_annotation

        result: Dict[Tuple, object] = {}
        for node in self.nodes:
            for tuple_, annotation in node.fixpoint.provenance.items():
                result[tuple_] = canonical_annotation(self.store, annotation)
        return result

    def explain(self, target, trace_events=None):
        """Explain why ``target`` is (or is not) in the view, from its provenance.

        ``target`` is a result-schema :class:`Tuple` or its textual form
        (``"reachable(a, b)"``).  The answer decodes the tuple's stored
        annotation into its minimal derivation products (canonical, so
        identical across the sim and process backends), resolves every base
        variable to its origin tuple and owning node, and — when this run is
        traced — reconstructs the cross-node message path from the tracer's
        flow events.  Returns an :class:`~repro.obs.explain.Explanation`.

        Call at a quiescent point (between phases), like every other read.
        """
        from repro.obs.explain import ExplainEngine, parse_view_tuple

        target = parse_view_tuple(self.plan, target)
        engine = ExplainEngine(self.plan, self.partitioner, scheme=self.strategy.label)
        canonical = self._explain_products(target)
        if trace_events is None and self.tracer.enabled:
            trace_events = getattr(self.tracer, "events", None)
            if trace_events is None:
                snapshot = getattr(self.tracer, "snapshot_events", None)
                trace_events = snapshot() if snapshot is not None else None
        return engine.build(target, canonical, trace_events=trace_events)

    def _explain_products(self, target: Tuple):
        """Canonical annotation of one view tuple, or ``None`` when absent.

        Backend hook: the process backend answers by broadcasting an
        ``explain`` RPC so only one tuple's annotation crosses the process
        boundary (already canonicalised), instead of the whole view's.
        """
        from repro.provenance.tracker import canonical_annotation

        for node in self.nodes:
            annotation = node.view_annotation(target)
            if annotation is not None:
                return canonical_annotation(self.store, annotation)
        return None

    def state_bytes(self) -> int:
        """Total operator state across the cluster."""
        return sum(node.state_bytes() for node in self.nodes)

    def per_node_state_bytes(self) -> Dict[int, int]:
        """Operator state per node (diagnostics / load balance)."""
        return {node.node_id: node.state_bytes() for node in self.nodes}

    def __repr__(self) -> str:
        return (
            f"DistributedViewExecutor(plan={self.plan.name!r}, scheme={self.strategy.label!r}, "
            f"nodes={self.network.node_count})"
        )
