"""The columnar, batch-first routing layer.

Routing — deciding which node owns each update and grouping a delta by
destination — used to be the engine's per-update hot path: every port handler
walked its batch calling ``partitioner.node_for`` once per update and pushing
into a fresh ``defaultdict`` per routed batch.  After the BDD kernel rework
that pure-Python walk, not provenance maintenance, dominated phase wall time.

This module makes routing a first-class batch operation:

* **columnar keys and owners** — a routed batch is decomposed into parallel
  lists: one routing-key column (built with the port's precomputed key
  extractor) and one owner column, resolved by a *single*
  ``partitioner.nodes_for_many(keys)`` call instead of one scalar lookup per
  update.  Elastic placements answer from an epoch-invalidated key→owner
  cache (:class:`repro.placement.map.PlacementMap`), static ones from the
  modulo partitioner's memo;
* **destination grouping without defaultdict churn** — :func:`group_updates`
  zips the update and owner columns once, with a fast path for the
  overwhelmingly common single-destination batch (no per-update dictionary
  operations at all);
* **fused admission** — the processor node runs tombstone restriction,
  ownership verification and bounce grouping as *one* walk over the delivered
  batch (see :meth:`repro.engine.runtime.ProcessorNode._admit_batch`) instead
  of re-walking it once per concern.

:class:`RoutingStats` carries the engine-layer telemetry (admission passes,
bounce passes, bounced batch/update counts); the partitioners themselves
count bulk lookups and cache hits.  :meth:`RoutingStats.snapshot` merges both
into the flat counter dictionary the executor diffs per phase into
:class:`~repro.engine.metrics.KernelPhaseStats`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.data.update import Update

#: Port names used between nodes (historically defined in
#: :mod:`repro.engine.runtime`, which re-exports them).
PORT_BASE = "base"
PORT_SEED = "seed"
PORT_EDGE = "edge"
PORT_VIEW = "view"
PORT_PURGE = "purge"


class RoutingStats:
    """Engine-layer routing counters, shared by every node of one cluster.

    Monotonic, like the BDD manager's counters: the executor snapshots them
    at phase start and reports per-phase deltas.
    """

    __slots__ = (
        "admission_passes",
        "bounce_passes",
        "bounced_batches",
        "bounced_updates",
        "seconds",
    )

    def __init__(self) -> None:
        #: Fused admission walks performed over delivered batches.
        self.admission_passes = 0
        #: Admission walks that verified ownership (elastic placements only).
        self.bounce_passes = 0
        #: Misrouted destination groups bounced to their current owner.
        self.bounced_batches = 0
        #: Updates carried by those bounced groups.
        self.bounced_updates = 0
        #: Wall seconds spent inside the routing layer proper — key-column
        #: extraction, bulk owner lookups and destination grouping.  This is
        #: what the executor reports as ``routing_time_s``; before the layer
        #: existed, "routing time" was a proxy (all non-kernel handler time)
        #: that lumped operator work in with routing.
        self.seconds = 0.0

    def record_bounce(self, update_count: int) -> None:
        """Record one bounced destination group carrying ``update_count`` updates."""
        self.bounced_batches += 1
        self.bounced_updates += update_count

    def snapshot(self, partitioner: Any = None) -> Dict[str, int]:
        """Flat counter dictionary, merged with the partitioner's lookup stats.

        The bulk-lookup and cache-hit counters live on the partitioner (it is
        the single shared routing authority of a cluster); this merges them
        with the engine-layer counters so callers diff one dictionary.
        """
        counters = {
            "admission_passes": self.admission_passes,
            "bounce_passes": self.bounce_passes,
            "bounced_batches": self.bounced_batches,
            "bounced_updates": self.bounced_updates,
            "seconds": self.seconds,
            "bulk_lookups": 0,
            "keys_routed": 0,
            "lookup_cache_hits": 0,
        }
        lookup_stats = getattr(partitioner, "routing_stats", None)
        if lookup_stats is not None:
            counters.update(lookup_stats())
        return counters


def group_updates(
    updates: Sequence[Update], owners: Sequence[int]
) -> Dict[int, List[Update]]:
    """Group a batch by its (positionally parallel) owner column.

    Destinations keep first-occurrence order, matching the historical
    ``defaultdict`` walk exactly — batched emission stays deterministic.  The
    single-destination case (most batches: a purge release aimed at one
    owner, a bounce of one group, a small delta) returns without any
    per-update dictionary work.
    """
    if not owners:
        return {}
    first = owners[0]
    for owner in owners:
        if owner != first:
            break
    else:
        return {first: updates if isinstance(updates, list) else list(updates)}
    groups: Dict[int, List[Update]] = {}
    get = groups.get
    for update, owner in zip(updates, owners):
        bucket = get(owner)
        if bucket is None:
            groups[owner] = [update]
        else:
            bucket.append(update)
    return groups


class BatchRouter:
    """Columnar owner resolution for one processor node.

    One router per node, all sharing the cluster's partitioner (and therefore
    its owner cache and lookup counters) plus one :class:`RoutingStats`.  The
    per-port routing-key extractors are precomputed at construction — the
    batch walk does one bound-function call per update instead of re-deciding
    the port's key attribute every time.
    """

    __slots__ = ("node_id", "partitioner", "stats", "key_function", "_bulk_lookup", "tracer")

    def __init__(
        self,
        node_id: int,
        plan: Any,
        partitioner: Any,
        stats: Optional[RoutingStats] = None,
        tracer: Any = None,
    ) -> None:
        self.node_id = node_id
        self.partitioner = partitioner
        self.stats = stats if stats is not None else RoutingStats()
        #: ``None`` when tracing is off — public methods pay one pointer
        #: comparison; when on, each batch operation becomes one
        #: ``routing``-category span on the node's pipeline track.
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        result_key = plan.result_partition_value
        edge_key = plan.edge_join_value
        #: port -> (tuple -> routing key).  Seeds and view updates are both
        #: owned by the view-partition key; base updates by the base tuple's
        #: own partition value.
        self.key_function: Dict[str, Callable[[Any], Any]] = {
            PORT_BASE: _base_partition_value,
            PORT_EDGE: edge_key,
            PORT_SEED: result_key,
            PORT_VIEW: result_key,
        }
        bulk = getattr(partitioner, "nodes_for_many", None)
        if bulk is None:
            # Foreign partitioner (tests, ad-hoc stubs): degrade to a bound
            # scalar loop, still one call per batch from the caller's side.
            scalar = partitioner.node_for

            def bulk(keys: Sequence[Any]) -> List[int]:
                return [scalar(key) for key in keys]

        self._bulk_lookup = bulk

    # -- columnar resolution -------------------------------------------------------
    #
    # Every public entry point times itself into ``stats.seconds`` — the
    # direct measurement behind ``routing_time_s``.  Internal work therefore
    # goes through the untimed ``_bulk_lookup``/``key_function`` pieces, never
    # back through another public method (no double counting).

    def keys_of(self, port: str, updates: Sequence[Update]) -> List[Any]:
        """The routing-key column of a batch (parallel to ``updates``)."""
        t0 = perf_counter()
        key_of = self.key_function[port]
        keys = [key_of(update.tuple) for update in updates]
        self.stats.seconds += perf_counter() - t0
        return keys

    def resolve(self, keys: Sequence[Any]) -> List[int]:
        """Owner column for a key column — one bulk partitioner call."""
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                self.node_id, "route:resolve", "routing", args={"keys": len(keys)}
            )
        t0 = perf_counter()
        owners = self._bulk_lookup(keys)
        self.stats.seconds += perf_counter() - t0
        if span is not None:
            tracer.end(span)
        return owners

    def owners_of(self, port: str, updates: Sequence[Update]) -> List[int]:
        """Owner column of a batch: key extraction + one bulk lookup."""
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                self.node_id, f"route:{port}", "routing", args={"updates": len(updates)}
            )
        t0 = perf_counter()
        key_of = self.key_function[port]
        owners = self._bulk_lookup([key_of(update.tuple) for update in updates])
        self.stats.seconds += perf_counter() - t0
        if span is not None:
            tracer.end(span)
        return owners

    def group(self, port: str, updates: Sequence[Update]) -> Dict[int, List[Update]]:
        """Destination grouping of a whole batch (columnar, one bulk lookup)."""
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                self.node_id, f"route:{port}", "routing", args={"updates": len(updates)}
            )
        t0 = perf_counter()
        key_of = self.key_function[port]
        grouped = group_updates(
            updates, self._bulk_lookup([key_of(update.tuple) for update in updates])
        )
        self.stats.seconds += perf_counter() - t0
        if span is not None:
            tracer.end(span)
        return grouped


def _base_partition_value(tuple_: Any) -> Any:
    return tuple_.partition_value
