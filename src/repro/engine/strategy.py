"""Execution strategies: which maintenance scheme and shipping policy to run.

The experiments of Section 7 compare five schemes; each is a combination of a
provenance model and a shipping policy:

==================  ===================  =============
scheme              provenance           shipping
==================  ===================  =============
DRed                none (set semantics) eager (plain Ship)
Relative Eager      relative             eager
Relative Lazy       relative             lazy
Absorption Eager    absorption (BDD)     eager
Absorption Lazy     absorption (BDD)     lazy
==================  ===================  =============
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.operators.ship import ShipMode
from repro.provenance.tracker import ProvenanceStore, provenance_store_for


@dataclass(frozen=True)
class ExecutionStrategy:
    """A named combination of provenance model and shipping policy."""

    provenance_kind: str
    ship_mode: ShipMode = ShipMode.LAZY
    #: Batch size ``W`` for MinShip's periodic flush in eager mode.
    ship_batch_size: int = 25
    #: Extra keyword arguments forwarded to the provenance-store factory.
    store_options: Dict[str, Any] = field(default_factory=dict)

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def dred() -> "ExecutionStrategy":
        """Set-semantics execution with DRed deletion handling."""
        return ExecutionStrategy(provenance_kind="none", ship_mode=ShipMode.EAGER)

    @staticmethod
    def absorption_eager(batch_size: int = 25) -> "ExecutionStrategy":
        """Absorption provenance with eager (periodic) propagation of derivations."""
        return ExecutionStrategy(
            provenance_kind="absorption", ship_mode=ShipMode.EAGER, ship_batch_size=batch_size
        )

    @staticmethod
    def absorption_lazy() -> "ExecutionStrategy":
        """Absorption provenance with lazy propagation (the paper's best scheme)."""
        return ExecutionStrategy(provenance_kind="absorption", ship_mode=ShipMode.LAZY)

    @staticmethod
    def relative_eager(batch_size: int = 25) -> "ExecutionStrategy":
        """Relative (derivation) provenance, eagerly propagated."""
        return ExecutionStrategy(
            provenance_kind="relative", ship_mode=ShipMode.EAGER, ship_batch_size=batch_size
        )

    @staticmethod
    def relative_lazy() -> "ExecutionStrategy":
        """Relative (derivation) provenance with lazy propagation."""
        return ExecutionStrategy(provenance_kind="relative", ship_mode=ShipMode.LAZY)

    @staticmethod
    def by_name(name: str) -> "ExecutionStrategy":
        """Look up a strategy by the label used in the paper's figures."""
        normalised = name.strip().lower().replace("-", " ").replace("_", " ")
        table = {
            "dred": ExecutionStrategy.dred,
            "absorption eager": ExecutionStrategy.absorption_eager,
            "absorption lazy": ExecutionStrategy.absorption_lazy,
            "relative eager": ExecutionStrategy.relative_eager,
            "relative lazy": ExecutionStrategy.relative_lazy,
        }
        if normalised not in table:
            raise ValueError(f"unknown strategy name: {name!r}")
        return table[normalised]()

    # -- behaviour ------------------------------------------------------------
    @property
    def uses_provenance(self) -> bool:
        """True when tuples carry provenance annotations (not DRed)."""
        return self.provenance_kind not in ("none", "set", "dred")

    @property
    def uses_dred(self) -> bool:
        """True when deletions require DRed's over-delete / re-derive phases."""
        return not self.uses_provenance

    @property
    def label(self) -> str:
        """The name used in the paper's figures."""
        if not self.uses_provenance:
            return "DRed"
        kind = self.provenance_kind.capitalize()
        mode = "Eager" if self.ship_mode is ShipMode.EAGER else "Lazy"
        return f"{kind} {mode}"

    def with_kernel_options(self, gc_threshold: Optional[float] = None) -> "ExecutionStrategy":
        """Forward BDD-kernel knobs to an absorption strategy's store options.

        A no-op for strategies whose store has no annotation kernel, and for
        ``None`` knobs; explicit per-strategy ``store_options`` win over the
        forwarded defaults.  Shared by the harness and ``perf_check`` so a
        new kernel knob only needs wiring here.
        """
        if gc_threshold is None or self.provenance_kind != "absorption":
            return self
        options = dict(self.store_options)
        options.setdefault("gc_threshold", gc_threshold)
        return replace(self, store_options=options)

    def create_store(self) -> ProvenanceStore:
        """Instantiate the provenance store this strategy runs with."""
        return provenance_store_for(self.provenance_kind, **self.store_options)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label
