"""Containers for the paper's four evaluation metrics (Section 7.1).

* per-tuple provenance overhead (bytes)
* communication overhead (MB)
* state within operators (MB)
* convergence / execution time (seconds)

A :class:`PhaseMetrics` covers one workload phase (insert-only, or a deletion
batch); :class:`ExperimentMetrics` aggregates a whole experiment run and knows
how to format the paper-style report rows the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseMetrics:
    """Metrics for one phase of an experiment (e.g. all insertions, or one deletion batch)."""

    label: str
    per_tuple_provenance_bytes: float
    communication_mb: float
    state_mb: float
    convergence_time_s: float
    messages: int = 0
    updates_shipped: int = 0
    view_size: int = 0

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary used by report formatting."""
        return {
            "per_tuple_provenance_B": round(self.per_tuple_provenance_bytes, 2),
            "communication_MB": round(self.communication_mb, 6),
            "state_MB": round(self.state_mb, 6),
            "convergence_time_s": round(self.convergence_time_s, 6),
            "messages": self.messages,
            "updates_shipped": self.updates_shipped,
            "view_size": self.view_size,
        }


@dataclass
class ExperimentMetrics:
    """Metrics for a full experiment: a sequence of phases plus identifying labels."""

    experiment: str
    scheme: str
    parameters: Dict[str, object] = field(default_factory=dict)
    phases: List[PhaseMetrics] = field(default_factory=list)

    def add_phase(self, phase: PhaseMetrics) -> None:
        """Append one phase's metrics."""
        self.phases.append(phase)

    def phase(self, label: str) -> Optional[PhaseMetrics]:
        """Find a phase by label (None if missing)."""
        for candidate in self.phases:
            if candidate.label == label:
                return candidate
        return None

    @property
    def total_communication_mb(self) -> float:
        """Total traffic across all phases."""
        return sum(phase.communication_mb for phase in self.phases)

    @property
    def total_convergence_time_s(self) -> float:
        """Total virtual execution time across all phases."""
        return sum(phase.convergence_time_s for phase in self.phases)

    @property
    def final_state_mb(self) -> float:
        """Operator state at the end of the last phase."""
        return self.phases[-1].state_mb if self.phases else 0.0

    @property
    def mean_per_tuple_provenance_bytes(self) -> float:
        """Per-tuple provenance overhead averaged over phases that shipped tuples."""
        relevant = [p for p in self.phases if p.updates_shipped > 0]
        if not relevant:
            return 0.0
        total_bytes = sum(p.per_tuple_provenance_bytes * p.updates_shipped for p in relevant)
        total_updates = sum(p.updates_shipped for p in relevant)
        return total_bytes / total_updates if total_updates else 0.0

    def summary_row(self) -> Dict[str, object]:
        """One flat row summarising the run (used by the per-figure harness)."""
        row: Dict[str, object] = {"experiment": self.experiment, "scheme": self.scheme}
        row.update(self.parameters)
        row.update(
            {
                "per_tuple_provenance_B": round(self.mean_per_tuple_provenance_bytes, 2),
                "communication_MB": round(self.total_communication_mb, 6),
                "state_MB": round(self.final_state_mb, 6),
                "convergence_time_s": round(self.total_convergence_time_s, 6),
            }
        )
        return row
