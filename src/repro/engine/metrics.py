"""Containers for the paper's four evaluation metrics (Section 7.1).

* per-tuple provenance overhead (bytes)
* communication overhead (MB)
* state within operators (MB)
* convergence / execution time (seconds)

A :class:`PhaseMetrics` covers one workload phase (insert-only, or a deletion
batch); :class:`ExperimentMetrics` aggregates a whole experiment run and knows
how to format the paper-style report rows the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class KernelPhaseStats:
    """Annotation-kernel telemetry for one phase (absorption strategies only).

    Monotonic manager counters are reported as per-phase *deltas* by the
    executor; table sizes are absolute.  The phase wall clock decomposes
    into four buckets: ``kernel_time_s`` is wall time spent inside the BDD
    kernel loops (apply/restrict/support walks over the node table),
    ``routing_time_s`` is the routing layer's own timer (key-column
    extraction, bulk owner lookups, destination grouping — see
    :class:`~repro.engine.routing.RoutingStats`), ``operator_time_s`` is the
    rest of the handler time (joins, fixpoints, MinShip, provenance-table
    scans outside the kernel loops), and ``net_time_s`` is what is left of
    the phase wall — event-loop, latency bookkeeping and metric collection.
    Before the dedicated routing layer existed, ``routing_time_s`` was a
    proxy (all non-kernel handler time) that silently lumped the operator
    bucket in with routing.
    """

    table_size: int = 0
    peak_table_size: int = 0
    nodes_reclaimed: int = 0
    gc_passes: int = 0
    gc_compactions: int = 0
    gc_pause_s: float = 0.0
    kernel_time_s: float = 0.0
    routing_time_s: float = 0.0
    operator_time_s: float = 0.0
    net_time_s: float = 0.0
    #: Routing-layer sub-counters (per-phase deltas): bulk owner lookups the
    #: BatchRouter issued, key->owner cache hits inside those lookups, and
    #: elastic ownership-verification passes over delivered batches.  They
    #: explain *why* ``routing_time_s`` moved — one bulk lookup per batch and
    #: a high cache-hit rate is the columnar fast path working.
    routing_bulk_lookups: int = 0
    routing_cache_hits: int = 0
    routing_bounce_passes: int = 0

    def as_row(self) -> Dict[str, object]:
        """Flat ``kernel_*`` columns used by report formatting."""
        return {
            "kernel_table_size": self.table_size,
            "kernel_peak_table": self.peak_table_size,
            "kernel_reclaimed": self.nodes_reclaimed,
            "kernel_gc_passes": self.gc_passes,
            "kernel_gc_pause_s": round(self.gc_pause_s, 6),
            "kernel_time_s": round(self.kernel_time_s, 6),
            "routing_time_s": round(self.routing_time_s, 6),
            "operator_time_s": round(self.operator_time_s, 6),
            "net_time_s": round(self.net_time_s, 6),
            "routing_bulk_lookups": self.routing_bulk_lookups,
            "routing_cache_hits": self.routing_cache_hits,
            "routing_bounce_passes": self.routing_bounce_passes,
        }


@dataclass
class PhaseMetrics:
    """Metrics for one phase of an experiment (e.g. all insertions, or one deletion batch)."""

    label: str
    per_tuple_provenance_bytes: float
    communication_mb: float
    state_mb: float
    convergence_time_s: float
    messages: int = 0
    updates_shipped: int = 0
    view_size: int = 0
    #: Wall-clock seconds the phase took to execute (simulation overhead
    #: included; distinct from the virtual ``convergence_time_s``).
    wall_seconds: float = 0.0
    #: Annotation-kernel telemetry (None for strategies without one).
    kernel: Optional[KernelPhaseStats] = None

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary used by report formatting."""
        row = {
            "per_tuple_provenance_B": round(self.per_tuple_provenance_bytes, 2),
            "communication_MB": round(self.communication_mb, 6),
            "state_MB": round(self.state_mb, 6),
            "convergence_time_s": round(self.convergence_time_s, 6),
            "messages": self.messages,
            "updates_shipped": self.updates_shipped,
            "view_size": self.view_size,
        }
        # Unconditional: a truthiness test here used to drop the column for
        # phases that completed in under clock resolution (wall_seconds 0.0),
        # which made CSV columns ragged across rows.
        row["wall_seconds"] = round(self.wall_seconds, 6)
        if self.kernel is not None:
            row.update(self.kernel.as_row())
        return row


@dataclass
class ExperimentMetrics:
    """Metrics for a full experiment: a sequence of phases plus identifying labels."""

    experiment: str
    scheme: str
    parameters: Dict[str, object] = field(default_factory=dict)
    phases: List[PhaseMetrics] = field(default_factory=list)

    def add_phase(self, phase: PhaseMetrics) -> None:
        """Append one phase's metrics."""
        self.phases.append(phase)

    def phase(self, label: str) -> Optional[PhaseMetrics]:
        """Find a phase by label (None if missing)."""
        for candidate in self.phases:
            if candidate.label == label:
                return candidate
        return None

    @property
    def total_communication_mb(self) -> float:
        """Total traffic across all phases."""
        return sum(phase.communication_mb for phase in self.phases)

    @property
    def total_convergence_time_s(self) -> float:
        """Total virtual execution time across all phases."""
        return sum(phase.convergence_time_s for phase in self.phases)

    @property
    def final_state_mb(self) -> float:
        """Operator state at the end of the last phase."""
        return self.phases[-1].state_mb if self.phases else 0.0

    @property
    def mean_per_tuple_provenance_bytes(self) -> float:
        """Per-tuple provenance overhead averaged over phases that shipped tuples."""
        relevant = [p for p in self.phases if p.updates_shipped > 0]
        if not relevant:
            return 0.0
        total_bytes = sum(p.per_tuple_provenance_bytes * p.updates_shipped for p in relevant)
        total_updates = sum(p.updates_shipped for p in relevant)
        return total_bytes / total_updates if total_updates else 0.0

    def summary_row(self) -> Dict[str, object]:
        """One flat row summarising the run (used by the per-figure harness)."""
        row: Dict[str, object] = {"experiment": self.experiment, "scheme": self.scheme}
        row.update(self.parameters)
        row.update(
            {
                "per_tuple_provenance_B": round(self.mean_per_tuple_provenance_bytes, 2),
                "communication_MB": round(self.total_communication_mb, 6),
                "state_MB": round(self.final_state_mb, 6),
                "convergence_time_s": round(self.total_convergence_time_s, 6),
            }
        )
        return row
