"""Per-node operator wiring (the query plan of Figure 4, instantiated at every node).

Every processor node hosts:

* a **DistributedScan** routing locally arriving base-relation updates
  (port ``base``) into the plan: the base case goes to the Fixpoint of the
  node owning the new view tuple, and a copy of the edge tuple goes to the
  node owning the join key;
* a **PipelinedHashJoin** between edge tuples shipped to this node
  (port ``edge``) and the view partition this node owns;
* a **MinShip** (or plain Ship, for DRed) buffering the join's output before
  it crosses the network to the owning Fixpoint;
* a **Fixpoint** holding this node's partition of the recursive view
  (port ``view``), feeding changed derivations back into the local join;
* a ``purge`` port receiving broadcast base-tuple deletions under the
  provenance strategies (Section 4's "zero out the variable" step).

The node talks to its peers exclusively through the simulated network, which
performs the byte and latency accounting.

**Fault tolerance.**  A node can be crashed and recovered through the
simulator's ``crash(node, t)`` / ``recover(node, t)`` events (see
:mod:`repro.fault`).  To support that, every node is *snapshottable*:
:meth:`ProcessorNode.snapshot_state` captures the view partition, join state,
(Min)Ship buffers and the base-variable bookkeeping with provenance
annotations flattened into a manager-independent form, and
:meth:`ProcessorNode.restore_state` re-interns them after a restart.  Under
the *checkpoint+replay* recovery policy the restored snapshot is brought
forward by replaying the node's update log; under *provenance-purge* the
node's base tuples are first absorbed cluster-wide as deletions (the paper's
zero-out-the-variable path) and peers then reseed the cold node through
:meth:`ProcessorNode.reseed_base_into` and :meth:`ProcessorNode.reship_sent_to`.
"""

from __future__ import annotations

import weakref
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.data.batch import BatchPolicy, UpdateBatch, split_runs
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.data.window import SlidingWindow
from repro.engine.plan import RecursiveViewPlan
from repro.engine.routing import (  # noqa: F401  (PORT_* re-exported for compat)
    PORT_BASE,
    PORT_EDGE,
    PORT_PURGE,
    PORT_SEED,
    PORT_VIEW,
    BatchRouter,
    RoutingStats,
    group_updates,
)
from repro.engine.strategy import ExecutionStrategy
from repro.net.partition import HashPartitioner
from repro.net.transport import Transport
from repro.operators.aggsel import AggregateSelection
from repro.operators.fixpoint import FixpointOperator
from repro.operators.join import PipelinedHashJoin
from repro.operators.ship import MinShipOperator, ShipOperator
from repro.provenance.tracker import ProvenanceStore

#: Per-port batch memo sentinel ("annotation not restricted yet").
_UNFILTERED = object()


class ProcessorNode:
    """One simulated query-processor node executing the distributed plan."""

    def __init__(
        self,
        node_id: int,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        store: ProvenanceStore,
        partitioner: HashPartitioner,
        network: Transport,
        batch_policy: Optional[BatchPolicy] = None,
        routing_stats: Optional[RoutingStats] = None,
    ) -> None:
        self.node_id = node_id
        self.plan = plan
        self.strategy = strategy
        self.store = store
        self.partitioner = partitioner
        self.network = network
        self.batch_policy = batch_policy or BatchPolicy()
        #: The active tracer, or ``None`` when tracing is off: ``handle``
        #: pays one pointer comparison per delivered batch and nothing else
        #: (the zero-overhead-off contract of :mod:`repro.obs.trace`).  Read
        #: from the network so every node of a cluster shares one switch;
        #: the executor installs the tracer before building its nodes.
        self._tracer = network.tracer
        #: Columnar owner resolution, shared telemetry across the cluster's
        #: nodes when the executor passes one RoutingStats to all of them.
        self.router = BatchRouter(
            node_id, plan, partitioner, routing_stats, tracer=network.tracer
        )
        self._elastic = bool(getattr(partitioner, "elastic", False))
        self._coalesce_view = self.batch_policy.batches_port(PORT_VIEW)
        #: Precomputed per-port dispatch table (replaces the historical
        #: if-chain in ``_dispatch``); ``handle`` resolves the handler with
        #: one dictionary probe per delivered batch.
        self._port_handlers = {
            PORT_BASE: self._handle_base_batch,
            PORT_SEED: self._handle_seed_batch,
            PORT_EDGE: self._handle_edge_batch,
            PORT_VIEW: self._handle_view_batch,
            PORT_PURGE: self._handle_purge_batch,
        }

        edge_window = SlidingWindow(plan.edge_window) if plan.edge_window else None
        self.join = PipelinedHashJoin(
            name=f"join@{node_id}",
            store=store,
            left_key=lambda edge: edge[plan.edge_join_attribute],
            right_key=lambda view: view[plan.result_join_attribute],
            combine=plan.combine,
            left_window=edge_window,
        )
        fixpoint_aggsel = (
            AggregateSelection(store, plan.aggregate_specs) if plan.has_aggregate_selection else None
        )
        self.fixpoint = FixpointOperator(
            name=f"fixpoint@{node_id}", store=store, aggregate_selection=fixpoint_aggsel
        )
        if strategy.uses_provenance:
            ship_aggsel = (
                AggregateSelection(store, plan.aggregate_specs)
                if plan.has_aggregate_selection
                else None
            )
            self.ship = MinShipOperator(
                name=f"minship@{node_id}",
                store=store,
                mode=strategy.ship_mode,
                batch_size=strategy.ship_batch_size,
                aggregate_selection=ship_aggsel,
            )
        else:
            self.ship = ShipOperator(name=f"ship@{node_id}", store=store)
        #: Base tuples this node has already seen a deletion for.  In-flight
        #: insertions produced before the sender learned about the deletion may
        #: still carry the deleted variables in their provenance; their
        #: annotations are re-restricted on arrival so the purge is idempotent
        #: regardless of message interleaving.
        self._deleted_base_keys: set = set()
        #: Version counter per base tuple (owner side): a tuple re-inserted
        #: after a deletion gets a fresh provenance variable so that old
        #: tombstones cannot suppress the new incarnation.
        self._base_versions: Dict[object, int] = {}
        # Enroll this node's operator state in the annotation kernel's GC
        # root registry.  The provider holds the node weakly so a node
        # rebuilt after a crash (or decommissioned by the elastic subsystem)
        # does not keep its discarded state alive through the registry;
        # returning None after the node dies deregisters the provider at the
        # next collection.
        node_ref = weakref.ref(self)

        def _operator_state_roots():
            node = node_ref()
            return node._annotation_roots() if node is not None else None

        store.register_root_source(_operator_state_roots)

    def _annotation_roots(self) -> Iterator[object]:
        """Every annotation handle held by this node's per-port operator state.

        Consulted by the BDD manager's mark phase (GC root protocol); the
        tables themselves hold live handles, so this is belt-and-braces
        against any holder that slips out of automatic handle tracking.
        """
        yield from self.join._left.provenance.values()
        yield from self.join._right.provenance.values()
        yield from self.fixpoint.provenance.values()
        if self.fixpoint.aggregate_selection is not None:
            yield from self.fixpoint.aggregate_selection.provenance.values()
        ship = self.ship
        if isinstance(ship, MinShipOperator):
            yield from ship.sent.values()
            yield from ship.pending_insertions.values()
            yield from ship.pending_deletions.values()
            if ship.aggregate_selection is not None:
                yield from ship.aggregate_selection.provenance.values()

    # -- network entry point -------------------------------------------------------
    def handle(self, port: str, updates: Sequence[Update], now: float) -> None:
        """Dispatch a delivered batch of updates to the appropriate port handler.

        Ports the batch policy enables are handled batch-wise — one fused
        admission pass, grouped operator processing, destination-grouped
        emission, one coalesced purge multicast per deletion batch.  Disabled
        ports fall back to singleton batches, which reproduces
        tuple-at-a-time execution exactly (admission still runs batch-wise —
        both of its concerns are per-update pure, see :meth:`_admit_batch`).

        Under an elastic placement (see :mod:`repro.placement`) admission
        verifies ownership: a batch routed under a superseded placement epoch
        may arrive at the previous owner of its keys, in which case the
        misrouted updates bounce exactly once to the current owner.  Purge
        broadcasts address every node and are never misrouted (nor
        tombstone-restricted — they *carry* the tombstones).
        """
        if not updates:
            return
        tracer = self._tracer
        if tracer is not None:
            self._handle_traced(tracer, port, updates, now)
            return
        handler = self._port_handlers.get(port)
        if handler is None:
            raise ValueError(f"unknown port {port!r} on node {self.node_id}")
        if port != PORT_PURGE:
            updates = self._admit_batch(port, updates, now)
            if not updates:
                return
        if self.batch_policy.batches_port(port):
            handler(updates, now)
        else:
            for update in updates:
                handler((update,), now)

    def _handle_traced(
        self, tracer, port: str, updates: Sequence[Update], now: float
    ) -> None:
        """The :meth:`handle` body under tracing: identical dispatch, plus an
        ``admit`` span, an ``op:<port>`` operator span and one synthesised
        kernel-lane span covering the delivery's share of the annotation
        kernel's cumulative clock."""
        handler = self._port_handlers.get(port)
        if handler is None:
            raise ValueError(f"unknown port {port!r} on node {self.node_id}")
        kernel_clock = self.store.kernel_clock
        kernel_start = kernel_clock()
        node_id = self.node_id
        if port != PORT_PURGE:
            span = tracer.begin(
                node_id, f"admit:{port}", "routing", sim_ts=now,
                args={"updates": len(updates)},
            )
            updates = self._admit_batch(port, updates, now)
            tracer.end(span, args={"admitted": len(updates)})
            if not updates:
                tracer.kernel_slice(node_id, kernel_clock() - kernel_start, sim_ts=now)
                return
        span = tracer.begin(
            node_id, f"op:{port}", "operator", sim_ts=now,
            args={"updates": len(updates)},
        )
        try:
            if self.batch_policy.batches_port(port):
                handler(updates, now)
            else:
                for update in updates:
                    handler((update,), now)
        finally:
            tracer.end(span)
            tracer.kernel_slice(node_id, kernel_clock() - kernel_start, sim_ts=now)

    def _routing_key(self, port: str, update: Update) -> object:
        """The partition-key value that decides which node owns ``update`` on ``port``."""
        return self.router.key_function[port](update.tuple)

    def _admit_batch(
        self, port: str, updates: Sequence[Update], now: float
    ) -> Sequence[Update]:
        """Fused admission: ownership check + tombstone restriction, one walk.

        Historically these were two separate passes over every delivered
        batch (``_redirect_misrouted`` then ``_filter_stale_batch`` inside the
        edge/view handlers).  Both concerns are per-update pure — ownership
        depends only on the routing key, restriction only on the annotation —
        so fusing them into a single walk with a columnar owner column is
        behaviour-preserving.  Misrouted updates bounce to their current
        owner *unrestricted*, exactly as before: the owner restricts them
        against its own tombstone set on arrival.

        Returns the locally owned, tombstone-restricted remainder.  The
        common case — everything owned here, no tombstones — returns the
        delivered batch untouched.
        """
        stats = self.router.stats
        stats.admission_passes += 1
        needs_filter = (
            (port == PORT_EDGE or port == PORT_VIEW)
            and bool(self._deleted_base_keys)
            and self.strategy.uses_provenance
        )
        if not self._elastic:
            if not needs_filter:
                return updates
            return self._filter_stale_batch(updates)
        stats.bounce_passes += 1
        owners = self.router.owners_of(port, updates)
        node_id = self.node_id
        misrouted = False
        for owner in owners:
            if owner != node_id:
                misrouted = True
                break
        if not misrouted:
            if not needs_filter:
                return updates
            return self._filter_stale_batch(updates)
        restrict_update = self._batch_restrictor() if needs_filter else None
        kept: List[Update] = []
        keep = kept.append
        bounced: Dict[int, List[Update]] = {}
        bounced_get = bounced.get
        for update, owner in zip(updates, owners):
            if owner != node_id:
                bucket = bounced_get(owner)
                if bucket is None:
                    bounced[owner] = [update]
                else:
                    bucket.append(update)
                continue
            if restrict_update is not None:
                admitted = restrict_update(update)
                if admitted is None:
                    continue
                keep(admitted)
            else:
                keep(update)
        for owner, batch in bounced.items():
            self._send(owner, port, batch, now)
            self.partitioner.record_misroute(len(batch))
            stats.record_bounce(len(batch))
        return kept

    # -- base-tuple provenance variables -------------------------------------------------
    def _base_variable_key(self, tuple_: Tuple) -> object:
        """The provenance-variable name for the current incarnation of a base tuple."""
        version = self._base_versions.get(tuple_.key, 0)
        return (tuple_.key, version)

    def _retire_base_variable(self, tuple_: Tuple) -> object:
        """Return the variable of the deleted incarnation and bump the version."""
        version = self._base_versions.get(tuple_.key, 0)
        self._base_versions[tuple_.key] = version + 1
        return (tuple_.key, version)

    def _base_annotation_for(self, tuple_: Tuple) -> object:
        """Annotation of the current incarnation of a base tuple owned here."""
        if self.strategy.uses_provenance:
            return self.store.base_annotation(self._base_variable_key(tuple_))
        return self.store.one()

    # -- base relation (edge) updates -------------------------------------------------
    def _handle_base_batch(self, updates: Sequence[Update], now: float) -> None:
        """A base edge delta batch arriving at its owner node (the DistributedScan).

        Insertion runs are annotated and routed with one message per
        destination port; deletion runs turn into one coalesced purge
        multicast (provenance strategies) or follow the insert routes (DRed
        over-deletion).
        """
        for is_insert, run in split_runs(updates):
            if is_insert:
                annotated = [
                    update.with_provenance(self._base_annotation_for(update.tuple))
                    for update in run
                ]
                self._route_base_batch(annotated, now)
            elif self.strategy.uses_provenance:
                self._broadcast_purge_batch(run, now)
            else:
                # DRed over-deletion: deletions follow the same routes as inserts.
                self._route_base_batch(
                    [update.with_provenance(None) for update in run], now
                )

    def _route_base_batch(self, updates: Sequence[Update], now: float) -> None:
        """Send base-case view tuples and edge join copies, grouped by owner.

        Columnar: the view-route and edge-route routing keys are laid out in
        one combined key column (view keys first, then edge keys) and the
        owner column comes back from a *single* bulk partitioner call for the
        whole batch.  Emission order is unchanged from the historical
        per-update walk: all view batches first, then all edge batches, each
        in first-occurrence destination order.
        """
        plan = self.plan
        base_tuple_for = plan.base_tuple_for
        result_key = plan.result_partition_value
        edge_key = plan.edge_join_value
        view_updates: List[Update] = []
        keys: List[object] = []
        append_key = keys.append
        for update in updates:
            base_tuple = base_tuple_for(update.tuple)
            if base_tuple is not None:
                view_updates.append(
                    Update(
                        update.type, base_tuple, provenance=update.provenance, timestamp=now
                    )
                )
                append_key(result_key(base_tuple))
        view_count = len(view_updates)
        for update in updates:
            append_key(edge_key(update.tuple))
        owners = self.router.resolve(keys)
        stats = self.router.stats
        if view_updates:
            t0 = perf_counter()
            grouped = group_updates(view_updates, owners[:view_count])
            stats.seconds += perf_counter() - t0
            for destination, batch in grouped.items():
                self._send(destination, PORT_VIEW, batch, now)
        t0 = perf_counter()
        grouped = group_updates(updates, owners[view_count:])
        stats.seconds += perf_counter() - t0
        for destination, batch in grouped.items():
            self._send(destination, PORT_EDGE, batch, now)

    # -- seeds (base-case view tuples provided directly, e.g. region seeds) -------------
    def _handle_seed_batch(self, updates: Sequence[Update], now: float) -> None:
        router = self.router
        for is_insert, run in split_runs(updates):
            if is_insert:
                annotated = [
                    update.with_provenance(self._base_annotation_for(update.tuple))
                    for update in run
                ]
                for destination, batch in router.group(PORT_SEED, annotated).items():
                    self._send(destination, PORT_VIEW, batch, now)
            elif self.strategy.uses_provenance:
                self._broadcast_purge_batch(run, now)
            else:
                stripped = [update.with_provenance(None) for update in run]
                for destination, batch in router.group(PORT_SEED, stripped).items():
                    self._send(destination, PORT_VIEW, batch, now)

    # -- join input (edge side) ------------------------------------------------------------
    def _handle_edge_batch(self, updates: Sequence[Update], now: float) -> None:
        # Tombstone restriction already ran in the fused admission pass.
        joined = self.join.process_left_batch(updates)
        self._ship_view_updates(joined, now)

    # -- view / fixpoint input ----------------------------------------------------------------
    def _handle_view_batch(self, updates: Sequence[Update], now: float) -> None:
        # Tombstone restriction already ran in the fused admission pass.
        changed = self.fixpoint.process_batch(updates)
        if not changed:
            return
        joined = self.join.process_right_batch(changed)
        self._ship_view_updates(joined, now)

    def _batch_restrictor(self):
        """A per-batch update restrictor closure (tombstone restriction).

        Distinct updates frequently share the same canonical annotation, so
        the per-batch memo turns repeated restrictions into dictionary hits.
        The memo is keyed by id(annotation), not value: repeated annotations
        within a batch are shared references, identity keys work for
        unhashable annotation types, and — for BDD handles — identity is
        immune to a GC compaction renumbering the ids (and with them the
        value hash) mid-batch.  The delivered batch keeps every keyed
        annotation alive for the closure's lifetime.
        """
        restrict = self.store.base_restrictor(self._deleted_base_keys)
        is_zero = self.store.is_zero
        equals = self.store.equals
        #: id(annotation) -> surviving annotation (None = dropped entirely).
        memo: Dict[int, object] = {}
        memo_get = memo.get

        def restrict_update(update: Update) -> Optional[Update]:
            if not update.is_insert or update.provenance is None:
                return update
            annotation = update.provenance
            cached = memo_get(id(annotation), _UNFILTERED)
            if cached is _UNFILTERED:
                restricted = restrict(annotation)
                if is_zero(restricted):
                    cached = None
                elif equals(restricted, annotation):
                    cached = annotation
                else:
                    cached = restricted
                memo[id(annotation)] = cached
            if cached is None:
                return None
            if cached is annotation:
                return update
            return update.with_provenance(cached)

        return restrict_update

    def _filter_stale_batch(self, updates: Sequence[Update]) -> List[Update]:
        """One tombstone-restriction pass over a whole delivered batch."""
        if not self._deleted_base_keys or not self.strategy.uses_provenance:
            return list(updates)
        restrict_update = self._batch_restrictor()
        filtered: List[Update] = []
        append = filtered.append
        for update in updates:
            admitted = restrict_update(update)
            if admitted is not None:
                append(admitted)
        return filtered

    def _filter_stale(self, update: Update) -> Optional[Update]:
        """Drop deleted base variables from in-flight insertion annotations.

        A message sent before its sender processed a purge can still mention
        deleted base tuples; re-restricting on arrival keeps the maintained
        provenance equivalent to what a fully synchronised system would hold.
        Returns None when nothing derivable remains in the annotation.
        """
        if (
            not self._deleted_base_keys
            or not update.is_insert
            or update.provenance is None
            or not self.strategy.uses_provenance
        ):
            return update
        restricted = self.store.remove_base(update.provenance, self._deleted_base_keys)
        if self.store.is_zero(restricted):
            return None
        if self.store.equals(restricted, update.provenance):
            return update
        return update.with_provenance(restricted)

    # -- broadcast deletions ----------------------------------------------------------------------
    def _broadcast_purge_batch(self, deletions: Sequence[Update], now: float) -> None:
        """Announce a batch of base-tuple deletions to every node in one multicast.

        Each purge update names the provenance *variable* being retired (the
        tuple key plus its incarnation version) in its ``provenance`` field,
        so receivers zero out exactly the deleted incarnations.  The whole
        deletion batch rides one message per peer — N-1 messages per *batch*
        instead of N-1 per tuple — and receivers purge all the retired
        variables in a single restriction pass.
        """
        purges: List[Update] = []
        purge_size = 0
        for update in deletions:
            variable_key = self._retire_base_variable(update.tuple)
            purges.append(
                Update(UpdateType.DEL, update.tuple, provenance=variable_key, timestamp=now)
            )
            # A purge update carries the tuple plus a small variable
            # identifier; it is sized explicitly because its "provenance" is
            # a variable name, not an annotation the store can measure.
            purge_size += update.tuple.size_bytes() + 9
        for destination in self.network.active_nodes():
            if destination == self.node_id:
                continue
            self.network.send(
                self.node_id, destination, PORT_PURGE, purges, purge_size, at_time=now
            )
        self._handle_purge_batch(purges, now)

    def _handle_purge_batch(self, updates: Sequence[Update], now: float) -> None:
        """Zero out all the deleted base variables of a purge batch at once.

        Every operator takes the combined key list, so each stored annotation
        is restricted once per purge *batch* rather than once per deleted
        tuple.
        """
        base_keys: List[object] = []
        for update in updates:
            variable_key = update.provenance
            if variable_key is None:
                variable_key = (update.tuple.key, 0)
            base_keys.append(variable_key)
        self._deleted_base_keys.update(base_keys)
        self.join.purge_base(base_keys)
        self.fixpoint.purge_base(base_keys)
        released = self.ship.purge_base(base_keys)
        self._route_view_updates(released, now)

    # -- shipping helpers ------------------------------------------------------------------------------
    def _ship_view_updates(self, updates: Sequence[Update], now: float) -> None:
        """Push join outputs through (Min)Ship and route whatever it releases."""
        if not updates:
            return
        released = self.ship.process_batch(updates)
        self._route_view_updates(released, now)

    def flush_ship(self, now: float) -> int:
        """Flush the ship operator's buffers (periodic timer tick); returns #updates sent."""
        released = self.ship.flush()
        self._route_view_updates(released, now)
        return len(released)

    def _route_view_updates(self, updates: Iterable[Update], now: float) -> None:
        """Group outgoing view updates per destination; one message each.

        Columnar: one bulk owner lookup for the whole delta, destination
        groups built from the owner column.  With batching enabled the
        destination batch is coalesced first: same-tuple updates within a
        type run merge their annotations, so a tuple derived several ways in
        one delta crosses the wire as a single update carrying the
        pre-grouped (disjoined) annotation.
        """
        if not isinstance(updates, (list, tuple)):
            updates = list(updates)
        if not updates:
            return
        store = self.store
        coalesce = self._coalesce_view
        for destination, batch in self.router.group(PORT_VIEW, updates).items():
            if coalesce and len(batch) > 1:
                batch = list(UpdateBatch(batch).coalesced(store))
            self._send(destination, PORT_VIEW, batch, now)

    def _send(self, destination: int, port: str, updates: Sequence[Update], now: float) -> None:
        if not updates:
            return
        size_bytes = self.store.size_bytes
        size = 0
        if destination != self.node_id:
            annotation_total = 0
            for update in updates:
                annotation = update.provenance
                annotation_bytes = size_bytes(annotation) if annotation is not None else 0
                annotation_total += annotation_bytes
                size += update.size_bytes(provenance_bytes=annotation_bytes)
            # One stats call per message, not one per update: record_provenance
            # is a pure accumulator, so totals are identical.
            self.network.stats.record_provenance(annotation_total, len(updates))
        else:
            for update in updates:
                annotation = update.provenance
                size += update.size_bytes(
                    provenance_bytes=size_bytes(annotation) if annotation is not None else 0
                )
        self.network.send(self.node_id, destination, port, updates, size, at_time=now)

    # -- durability (checkpoint / recovery support) ----------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Capture all operator and bookkeeping state, annotations encoded.

        The result contains no handles into shared in-memory structures (BDD
        annotations are flattened through the provenance store's codec), so it
        can be pickled to durable storage and restored after a process loss.
        """
        encode = self.store.encode_annotation
        return {
            "node_id": self.node_id,
            "deleted_base_keys": set(self._deleted_base_keys),
            "base_versions": dict(self._base_versions),
            "join": self.join.export_state(encode),
            "fixpoint": self.fixpoint.export_state(encode),
            "ship": self.ship.export_state(encode),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`snapshot_state`."""
        if state["node_id"] != self.node_id:
            raise ValueError(
                f"snapshot of node {state['node_id']} cannot restore node {self.node_id}"
            )
        decode = self.store.decode_annotation
        self._deleted_base_keys = set(state["deleted_base_keys"])
        self._base_versions = dict(state["base_versions"])
        self.join.import_state(state["join"], decode)
        self.fixpoint.import_state(state["fixpoint"], decode)
        self.ship.import_state(state["ship"], decode)

    def set_base_versions(self, versions: Dict[object, int]) -> None:
        """Seed the base-tuple incarnation counters (cold restart after a purge).

        A node restarted under the provenance-purge policy must not reuse the
        variable of a purged incarnation — surviving peers hold tombstones for
        it — so the recovery manager installs the next free version numbers
        before the node's base data is re-injected.
        """
        self._base_versions = dict(versions)

    def add_deletion_tombstones(self, variable_keys: Iterable[object]) -> None:
        """Merge known-deleted base variables (recovery: tombstone resync)."""
        self._deleted_base_keys.update(variable_keys)

    def deletion_tombstones(self) -> frozenset:
        """The base variables this node knows to be deleted (recovery: resync source)."""
        return frozenset(self._deleted_base_keys)

    # -- elasticity (live partition migration support) ---------------------------------
    def base_version_items(self) -> List:
        """The base-tuple incarnation counters as ``(tuple-key, version)`` pairs."""
        return list(self._base_versions.items())

    def pop_base_versions(self, keys: Iterable[object]) -> Dict[object, int]:
        """Remove and return the incarnation counters for ``keys`` (migration out)."""
        extracted: Dict[object, int] = {}
        for key in keys:
            if key in self._base_versions:
                extracted[key] = self._base_versions.pop(key)
        return extracted

    def merge_base_versions(self, versions: Dict[object, int]) -> None:
        """Merge migrated incarnation counters (the higher version wins)."""
        for key, version in versions.items():
            existing = self._base_versions.get(key)
            if existing is None or version > existing:
                self._base_versions[key] = version

    def absorb_migrated_state(self, state: Dict[str, object], now: float) -> None:
        """Install a migrated state slice (annotations already decoded).

        Incoming insert-side annotations are first restricted against this
        node's deletion tombstones: a purge broadcast multicast while the
        slice's previous owner had not yet received it can never reach a node
        that joined afterwards, so the catch-up restriction here mirrors
        exactly what delivering that purge would have done — including
        releasing buffered MinShip alternates whose shipped provenance was
        invalidated (the consumer must not lose the tuple).
        """
        restrict = (
            self.store.base_restrictor(self._deleted_base_keys)
            if self.strategy.uses_provenance and self._deleted_base_keys
            else None
        )
        self.fixpoint.absorb_partition(self._restricted_entries(state["fixpoint"], restrict))
        self.join.absorb_side(
            self.join.LEFT, self._restricted_entries(state["join_left"], restrict)
        )
        self.join.absorb_side(
            self.join.RIGHT, self._restricted_entries(state["join_right"], restrict)
        )
        self.merge_base_versions(state["base_versions"])
        if isinstance(self.ship, MinShipOperator):
            self._absorb_ship_tables(
                state["ship_sent"], state["ship_pins"], state["ship_pdel"], restrict, now
            )

    def _restricted_entries(self, entries: Dict[Tuple, object], restrict) -> Dict[Tuple, object]:
        """Tombstone-restrict a migrated table, dropping entries that zero out."""
        if restrict is None:
            return entries
        surviving: Dict[Tuple, object] = {}
        for tuple_, annotation in entries.items():
            restricted = restrict(annotation)
            if not self.store.is_zero(restricted):
                surviving[tuple_] = restricted
        return surviving

    def _absorb_ship_tables(
        self,
        sent: Dict[Tuple, object],
        pins: Dict[Tuple, object],
        pdel: Dict[Tuple, object],
        restrict,
        now: float,
    ) -> None:
        """Merge migrated MinShip tables, replaying missed purges (Algorithm 3 semantics)."""
        if restrict is None:
            self.ship.absorb_tables(sent, pins, pdel)
            return
        restricted_pins = self._restricted_entries(pins, restrict)
        restricted_sent: Dict[Tuple, object] = {}
        releases: List[Update] = []
        for tuple_, annotation in sent.items():
            restricted = restrict(annotation)
            if not self.store.equals(restricted, annotation):
                # The already-shipped provenance was hit by a purge the old
                # owner never saw: release the surviving buffered alternates,
                # exactly as MinShip.purge_base would have.
                buffered = restricted_pins.pop(tuple_, None)
                if buffered is not None:
                    releases.append(
                        Update(UpdateType.INS, tuple_, provenance=buffered, timestamp=now)
                    )
                    restricted = self.store.disjoin(restricted, buffered)
            if not self.store.is_zero(restricted):
                restricted_sent[tuple_] = restricted
        self.ship.absorb_tables(restricted_sent, restricted_pins, pdel)
        self._route_view_updates(releases, now)

    def reseed_base_into(
        self,
        destination: int,
        edges: Iterable[Tuple],
        seeds: Iterable[Tuple],
        now: float,
    ) -> int:
        """Re-ship this node's live base data along the routes leading to ``destination``.

        Used when ``destination`` restarts empty: the edge copies and base-case
        view tuples it owned are recomputed from this node's live base
        relation and re-sent with their *current* incarnation variables.
        Routes to other nodes are skipped — their state already absorbed these
        derivations.  Returns the number of updates re-shipped.
        """
        view_batch: List[Update] = []
        edge_batch: List[Update] = []
        for edge in edges:
            annotation = self._base_annotation_for(edge)
            base_tuple = self.plan.base_tuple_for(edge)
            if base_tuple is not None:
                owner = self.partitioner.node_for(self.plan.result_partition_value(base_tuple))
                if owner == destination:
                    view_batch.append(
                        Update(UpdateType.INS, base_tuple, provenance=annotation, timestamp=now)
                    )
            join_owner = self.partitioner.node_for(self.plan.edge_join_value(edge))
            if join_owner == destination:
                edge_batch.append(
                    Update(UpdateType.INS, edge, provenance=annotation, timestamp=now)
                )
        for seed in seeds:
            owner = self.partitioner.node_for(self.plan.result_partition_value(seed))
            if owner != destination:
                continue
            view_batch.append(
                Update(
                    UpdateType.INS,
                    seed,
                    provenance=self._base_annotation_for(seed),
                    timestamp=now,
                )
            )
        self._send(destination, PORT_VIEW, view_batch, now)
        self._send(destination, PORT_EDGE, edge_batch, now)
        return len(view_batch) + len(edge_batch)

    def reship_sent_to(self, destination: int, now: float) -> int:
        """Re-ship every derivation this node's MinShip already sent to ``destination``.

        ``Bsent`` records exactly what the consumer learned from us; after the
        consumer lost its state, replaying it (post-purge, so the annotations
        are already restricted to live base tuples) rebuilds the consumer's
        partition without recomputing the joins.  Returns #updates re-shipped.
        """
        if not isinstance(self.ship, MinShipOperator):
            return 0
        batch: List[Update] = []
        for tuple_, annotation in self.ship.sent.items():
            if self.store.is_zero(annotation):
                continue
            owner = self.partitioner.node_for(self.plan.result_partition_value(tuple_))
            if owner == destination:
                batch.append(
                    Update(UpdateType.INS, tuple_, provenance=annotation, timestamp=now)
                )
        self._send(destination, PORT_VIEW, batch, now)
        return len(batch)

    # -- introspection ---------------------------------------------------------------------------------------
    def view_tuples(self) -> List[Tuple]:
        """This node's partition of the recursive view."""
        return self.fixpoint.view_tuples()

    def view_annotation(self, tuple_: Tuple):
        """The stored annotation of one view tuple, or ``None`` if not held here.

        The provenance-native half of the explain engine
        (:mod:`repro.obs.explain`): the raw annotation is canonicalised by the
        caller, never shipped as a manager-bound handle.
        """
        return self.fixpoint.provenance.get(tuple_)

    def state_bytes(self) -> int:
        """State held by all operators on this node (Section 7 metric)."""
        return self.join.state_bytes() + self.fixpoint.state_bytes() + self.ship.state_bytes()

    def operator_stats(self) -> Dict[str, object]:
        """Per-operator counters (diagnostics)."""
        return {
            "join": self.join.stats,
            "fixpoint": self.fixpoint.stats,
            "ship": self.ship.stats,
        }
