"""Per-node update logs (write-ahead logs) with monotone sequence numbers.

Every delivered update batch is appended to the receiving node's log *before*
the node processes it (write-ahead discipline).  The log serves three
purposes in the recovery protocols of :mod:`repro.fault.recovery`:

* **replay** — under checkpoint+replay, the suffix of entries after the
  restored checkpoint's sequence number is re-applied to bring the node back
  to its pre-crash state (re-emitted messages are absorbed by the receivers'
  provenance, so replay is idempotent end to end);
* **live base state** — the log incrementally tracks each node's live base
  relation (inserts minus deletes on the ``base``/``seed`` ports) and the
  incarnation version of every base tuple, which is what the provenance-purge
  policy consults to know *which* variables to zero out cluster-wide when the
  node dies and what to re-inject when it returns;
* **truncation** — once a checkpoint covers a prefix of the log, that prefix
  can be dropped; the live-base tracker survives truncation because it is
  maintained incrementally.

Entries keep in-memory references to the delivered updates (BDD annotations
stay hash-consed in the shared manager — the analogue of an asynchronous
group commit); :meth:`UpdateLog.serialize_node` flattens a node's log through
the provenance store's codec when a durable byte form is needed.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.data.update import Update
from repro.engine.runtime import PORT_BASE, PORT_SEED
from repro.provenance.tracker import ProvenanceStore


class WALError(Exception):
    """Raised on misuse of the update log (non-monotone appends, bad truncation)."""


@dataclass(frozen=True)
class LogEntry:
    """One delivered batch: ``(sequence, port, updates, virtual time)``."""

    sequence: int
    port: str
    updates: PyTuple[Update, ...]
    time: float


class _NodeLog:
    """Log state for a single node."""

    __slots__ = ("entries", "next_sequence", "live_edges", "live_seeds", "versions")

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []
        self.next_sequence = 1
        #: Live base tuples injected at this node (``base`` port).
        self.live_edges: Dict[Tuple, bool] = {}
        #: Live seed tuples injected at this node (``seed`` port).
        self.live_seeds: Dict[Tuple, bool] = {}
        #: Incarnation version per base-tuple key (bumped on every deletion,
        #: and by the recovery manager when an incarnation is purged).
        self.versions: Dict[Hashable, int] = {}


class UpdateLog:
    """Write-ahead update logs for every node of one cluster.

    ``retain_entries=False`` keeps only the incremental live-base/version
    trackers and the sequence counters, discarding the per-delivery entries.
    The provenance-purge recovery policy never replays entries, so its
    executors run the log in this mode to avoid unbounded retention.
    """

    def __init__(self, retain_entries: bool = True) -> None:
        self._logs: Dict[int, _NodeLog] = {}
        self.retain_entries = retain_entries
        #: Monotone append telemetry for the metrics registry's WAL probe
        #: (counted even when entries are not retained — the write-ahead
        #: discipline runs either way).
        self.append_count = 0
        self.appended_updates = 0

    def _log(self, node_id: int) -> _NodeLog:
        log = self._logs.get(node_id)
        if log is None:
            log = _NodeLog()
            self._logs[node_id] = log
        return log

    # -- appending ----------------------------------------------------------------
    def append(
        self, node_id: int, port: str, updates: Sequence[Update], time: float
    ) -> int:
        """Record one delivered delta batch; returns its (monotone) sequence number.

        The unit of logging is the delivered *batch* (one network delivery,
        possibly coalesced from several wire messages), mirroring the
        batch-first pipeline: replay re-presents the same batches to the
        node's batch-wise handlers, and the live-base tracker folds a whole
        batch in one pass.  Any ``Sequence[Update]`` — including
        :class:`~repro.data.batch.UpdateBatch` — is accepted.
        """
        log = self._log(node_id)
        sequence = log.next_sequence
        log.next_sequence += 1
        self.append_count += 1
        self.appended_updates += len(updates)
        if self.retain_entries:
            log.entries.append(LogEntry(sequence, port, tuple(updates), time))
        if port in (PORT_BASE, PORT_SEED):
            live = log.live_edges if port == PORT_BASE else log.live_seeds
            for update in updates:
                if update.is_insert:
                    live[update.tuple] = True
                else:
                    live.pop(update.tuple, None)
                    log.versions[update.tuple.key] = (
                        log.versions.get(update.tuple.key, 0) + 1
                    )
        return sequence

    # -- reading ------------------------------------------------------------------
    def last_sequence(self, node_id: int) -> int:
        """Highest sequence number appended for ``node_id`` (0 when empty)."""
        return self._log(node_id).next_sequence - 1

    def entries(self, node_id: int) -> List[LogEntry]:
        """All retained entries of ``node_id`` in sequence order."""
        return list(self._log(node_id).entries)

    def replay(self, node_id: int, after_sequence: int = 0) -> List[LogEntry]:
        """Entries with ``sequence > after_sequence`` (the recovery suffix)."""
        return [
            entry
            for entry in self._log(node_id).entries
            if entry.sequence > after_sequence
        ]

    def live_base_state(
        self, node_id: int
    ) -> PyTuple[List[Tuple], List[Tuple], Dict[Hashable, int]]:
        """The node's live base/seed tuples and per-key incarnation versions.

        ``versions[key]`` is the version of the *current* incarnation of a
        live tuple (0 for a never-deleted tuple), or the next version to use
        for a currently deleted key.
        """
        log = self._log(node_id)
        return list(log.live_edges), list(log.live_seeds), dict(log.versions)

    # -- maintenance ---------------------------------------------------------------
    def truncate(self, node_id: int, upto_sequence: int) -> int:
        """Drop entries with ``sequence <= upto_sequence``; returns #dropped.

        Called after a checkpoint at ``upto_sequence`` — the checkpoint now
        covers that prefix.  The live-base tracker is unaffected.
        """
        log = self._log(node_id)
        if upto_sequence > log.next_sequence - 1:
            raise WALError(
                f"cannot truncate node {node_id} past its last sequence "
                f"({upto_sequence} > {log.next_sequence - 1})"
            )
        before = len(log.entries)
        log.entries = [e for e in log.entries if e.sequence > upto_sequence]
        return before - len(log.entries)

    def note_incarnation_bump(self, node_id: int, keys: Iterable[Hashable]) -> None:
        """Record that the current incarnations of ``keys`` were retired.

        The provenance-purge recovery retires every live incarnation of a dead
        node outside the normal deletion path; this keeps the log's version
        counters aligned with the variables actually in use.
        """
        log = self._log(node_id)
        for key in keys:
            log.versions[key] = log.versions.get(key, 0) + 1

    # -- durability ----------------------------------------------------------------
    def serialize_node(self, node_id: int, store: ProvenanceStore) -> bytes:
        """Byte form of one node's retained log (annotations flattened)."""
        encoded = [
            (
                entry.sequence,
                entry.port,
                tuple(
                    (
                        u.type,
                        u.tuple,
                        store.encode_annotation(u.provenance),
                        u.timestamp,
                        u.origin_node,
                    )
                    for u in entry.updates
                ),
                entry.time,
            )
            for entry in self._log(node_id).entries
        ]
        return pickle.dumps(encoded, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize_node(
        self, node_id: int, data: bytes, store: ProvenanceStore
    ) -> List[LogEntry]:
        """Decode a byte log produced by :meth:`serialize_node` (does not mutate)."""
        entries = []
        for sequence, port, updates, time in pickle.loads(data):
            entries.append(
                LogEntry(
                    sequence,
                    port,
                    tuple(
                        Update(kind, tuple_, store.decode_annotation(pv), timestamp, origin)
                        for kind, tuple_, pv, timestamp, origin in updates
                    ),
                    time,
                )
            )
        return entries

    # -- metrics -------------------------------------------------------------------
    def total_entries(self) -> int:
        """Retained entries across all nodes."""
        return sum(len(log.entries) for log in self._logs.values())
