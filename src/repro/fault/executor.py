"""A distributed executor whose processor nodes are durable and killable.

:class:`FaultTolerantExecutor` extends the plain
:class:`~repro.engine.executor.DistributedViewExecutor` with the machinery of
this package: every node is fronted by a :class:`DurableNodeRuntime` that
write-ahead-logs each delivered batch and takes periodic checkpoints, a
:class:`~repro.fault.recovery.RecoveryManager` is registered as the
network's fault listener, and ``schedule_crash`` / ``schedule_recovery``
inject ``crash(node, t)`` / ``recover(node, t)`` events into the simulation.
Failure events interleave with ordinary message deliveries in virtual time,
so a crash scheduled mid-phase genuinely interrupts the update stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.data.batch import BatchPolicy
from repro.data.update import Update
from repro.engine.executor import DistributedViewExecutor
from repro.engine.plan import RecursiveViewPlan
from repro.engine.runtime import ProcessorNode
from repro.engine.strategy import ExecutionStrategy
from repro.fault.recovery import RecoveryManager, RecoveryPolicy
from repro.fault.snapshot import CheckpointStore, capture_node_state
from repro.fault.wal import UpdateLog
from repro.net.latency import ClusterLatencyModel, LatencyModel
from repro.net.partition import HashPartitioner


class FaultToleranceError(Exception):
    """Raised on unsupported fault-tolerance configurations."""


class DurableNodeRuntime:
    """The durability shim between the network and one processor node.

    Delivered batches are appended to the node's write-ahead log *before* the
    node processes them; every ``checkpoint_interval`` deliveries the node's
    state is checkpointed and the log prefix the checkpoint covers is
    truncated.
    """

    def __init__(
        self,
        node: ProcessorNode,
        wal: UpdateLog,
        checkpoints: CheckpointStore,
        checkpoint_interval: int,
    ) -> None:
        self.node = node
        self.wal = wal
        self.checkpoints = checkpoints
        self.checkpoint_interval = checkpoint_interval
        self._deliveries = 0

    @property
    def node_id(self) -> int:
        """The wrapped node's id."""
        return self.node.node_id

    def handle(self, port: str, updates: Sequence[Update], now: float) -> None:
        """Log the delivery, apply it, and checkpoint on the configured cadence."""
        self.wal.append(self.node_id, port, updates, now)
        self.node.handle(port, updates, now)
        self._deliveries += 1
        if self.checkpoint_interval and self._deliveries % self.checkpoint_interval == 0:
            self.take_checkpoint()

    def take_checkpoint(self) -> int:
        """Snapshot the node now; truncate the covered log prefix. Returns bytes."""
        sequence = self.wal.last_sequence(self.node_id)
        size = self.checkpoints.save(capture_node_state(self.node, sequence))
        self.wal.truncate(self.node_id, sequence)
        return size


class FaultTolerantExecutor(DistributedViewExecutor):
    """A :class:`DistributedViewExecutor` that survives processor crashes."""

    def __init__(
        self,
        plan: RecursiveViewPlan,
        strategy: ExecutionStrategy,
        recovery_policy: Union[str, RecoveryPolicy] = RecoveryPolicy.CHECKPOINT_REPLAY,
        checkpoint_interval: int = 25,
        retain_wal_entries: Optional[bool] = None,
        **kwargs: object,
    ) -> None:
        if isinstance(recovery_policy, str):
            recovery_policy = RecoveryPolicy.by_name(recovery_policy)
        if (
            recovery_policy is RecoveryPolicy.PROVENANCE_PURGE
            and not strategy.uses_provenance
        ):
            raise FaultToleranceError(
                "the provenance-purge recovery policy requires a provenance-"
                "carrying strategy (DRed cannot absorb a node loss)"
            )
        super().__init__(plan, strategy, **kwargs)
        self.recovery_policy = recovery_policy
        self.checkpoint_interval = checkpoint_interval
        # Only checkpoint+replay ever replays log entries; the purge policy
        # needs just the live-base trackers, so it skips entry retention by
        # default.  ``retain_wal_entries`` overrides (e.g. a no-crash baseline
        # run can drop retention entirely).
        if retain_wal_entries is None:
            retain_wal_entries = recovery_policy is RecoveryPolicy.CHECKPOINT_REPLAY
        self.wal = UpdateLog(retain_entries=retain_wal_entries)
        self.checkpoints = CheckpointStore()
        self.runtimes: List[DurableNodeRuntime] = [
            DurableNodeRuntime(node, self.wal, self.checkpoints, checkpoint_interval)
            for node in self.nodes
        ]
        # Reroute deliveries through the durability shims.
        for runtime in self.runtimes:
            self.network.register(runtime.node_id, runtime.handle)
        self.recovery = RecoveryManager(self, recovery_policy)
        self.network.set_fault_listener(self.recovery)
        self.metrics_registry.register_probe("wal", self._wal_probe)

    def _wal_probe(self) -> Dict[str, object]:
        """WAL append rates and durability counters for the metrics registry."""
        wall = self.network.handler_seconds
        return {
            "appends": self.wal.append_count,
            "appended_updates": self.wal.appended_updates,
            "retained_entries": self.wal.total_entries(),
            "appends_per_handler_s": (
                round(self.wal.append_count / wall, 3) if wall > 0 else 0.0
            ),
            "checkpoints_taken": self.checkpoints.checkpoints_taken,
            "checkpoint_bytes": self.checkpoints.total_bytes(),
        }

    # -- failure injection --------------------------------------------------------------
    def schedule_crash(self, node_id: int, at_time: float) -> None:
        """Crash ``node_id`` at virtual time ``at_time`` (during the next phase)."""
        self.network.crash(node_id, at_time=at_time)

    def schedule_recovery(self, node_id: int, at_time: float) -> None:
        """Recover ``node_id`` at virtual time ``at_time`` under the configured policy."""
        self.network.recover(node_id, at_time=at_time)

    # -- recovery support ----------------------------------------------------------------
    def rebuild_node(self, node_id: int) -> ProcessorNode:
        """Replace a crashed node with a fresh (empty) instance and return it.

        The in-memory state of the old instance is deliberately discarded —
        that is the failure model; recovery rebuilds state exclusively from
        checkpoints, the write-ahead log and the surviving peers.
        """
        fresh = self._make_node(node_id)
        self.nodes[node_id] = fresh
        self.runtimes[node_id].node = fresh
        return fresh

    def checkpoint_all(self) -> int:
        """Force an immediate checkpoint of every live node; returns total bytes."""
        total = 0
        for runtime in self.runtimes:
            if not self.network.is_down(runtime.node_id):
                total += runtime.take_checkpoint()
        return total

    # -- diagnostics ----------------------------------------------------------------------
    def fault_stats(self) -> Dict[str, object]:
        """Counters describing the run's failure and recovery activity."""
        return {
            "policy": self.recovery_policy.value,
            "crashes": self.recovery.crash_count,
            "recoveries": self.recovery.recovery_count,
            "wal_entries": self.wal.total_entries(),
            "checkpoints_taken": self.checkpoints.checkpoints_taken,
            "checkpoint_bytes": self.checkpoints.total_bytes(),
            "dropped_messages": self.network.dropped_messages,
        }


def fault_tolerant_executor(
    plan: RecursiveViewPlan,
    strategy: Union[str, ExecutionStrategy],
    recovery_policy: Union[str, RecoveryPolicy] = RecoveryPolicy.CHECKPOINT_REPLAY,
    checkpoint_interval: int = 25,
    retain_wal_entries: Optional[bool] = None,
    node_count: int = 12,
    latency_model: Optional[LatencyModel] = None,
    partitioner: Optional[HashPartitioner] = None,
    processing_cost: float = 0.00002,
    max_events: int = 5_000_000,
    max_wall_seconds: Optional[float] = None,
    experiment: str = "experiment",
    batch_policy: Optional[BatchPolicy] = None,
) -> FaultTolerantExecutor:
    """Convenience constructor mirroring :func:`repro.queries.builder.build_executor`."""
    if isinstance(strategy, str):
        strategy = ExecutionStrategy.by_name(strategy)
    if partitioner is not None:
        # Size the default latency model from the partitioner, which the
        # executor treats as the source of truth for the cluster size.
        node_count = partitioner.node_count
    if latency_model is None:
        latency_model = ClusterLatencyModel(primary_cluster_size=min(node_count, 16))
    return FaultTolerantExecutor(
        plan=plan,
        strategy=strategy,
        recovery_policy=recovery_policy,
        checkpoint_interval=checkpoint_interval,
        retain_wal_entries=retain_wal_entries,
        node_count=node_count,
        latency_model=latency_model,
        partitioner=partitioner,
        processing_cost=processing_cost,
        max_events=max_events,
        max_wall_seconds=max_wall_seconds,
        experiment=experiment,
        batch_policy=batch_policy,
    )
