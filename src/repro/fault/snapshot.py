"""Node checkpoints: durable snapshots of per-node processor state.

A :class:`NodeSnapshot` captures everything a
:class:`~repro.engine.runtime.ProcessorNode` holds — its partition of the
recursive view (Fixpoint's ``P`` table), both sides of the pipelined join,
the (Min)Ship buffers (``Bsent``/``Pins``/``Pdel``), the purge tombstones and
the base-tuple incarnation counters — with every provenance annotation
flattened through the store's codec (BDDs become
:class:`~repro.bdd.serialize.SerializedBDD` values), plus the WAL sequence
number the state corresponds to.  The snapshot is therefore fully picklable:
:class:`CheckpointStore` keeps only the byte form, so restoring genuinely
exercises the full decode path rather than sharing live object graphs with
the "crashed" node.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.engine.runtime import ProcessorNode


def state_to_bytes(state: Mapping[str, object]) -> bytes:
    """Durable byte form of a (possibly partial) node-state mapping.

    Shared by checkpoints and by the elastic placement subsystem, whose live
    partition migrations ship state slices in exactly this form — so moved-
    state bytes are measured by the same codec that sizes checkpoints.
    """
    return pickle.dumps(dict(state), protocol=pickle.HIGHEST_PROTOCOL)


def state_from_bytes(data: bytes) -> Dict[str, object]:
    """Decode a state mapping serialized with :func:`state_to_bytes`."""
    return pickle.loads(data)


@dataclass(frozen=True)
class NodeSnapshot:
    """One checkpoint: a node's encoded state as of WAL sequence ``wal_sequence``."""

    node_id: int
    wal_sequence: int
    state: Dict[str, object]

    def to_bytes(self) -> bytes:
        """Durable byte form of the snapshot."""
        return pickle.dumps(
            (self.node_id, self.wal_sequence, self.state),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @staticmethod
    def from_bytes(data: bytes) -> "NodeSnapshot":
        """Decode a snapshot serialized with :meth:`to_bytes`."""
        node_id, wal_sequence, state = pickle.loads(data)
        return NodeSnapshot(node_id=node_id, wal_sequence=wal_sequence, state=state)


def capture_node_state(node: ProcessorNode, wal_sequence: int) -> NodeSnapshot:
    """Snapshot ``node`` as of ``wal_sequence`` (annotations encoded).

    Runs with the provenance store's annotation-kernel GC paused (the
    checkpoint codec's enrollment in the root protocol): a capture encodes
    thousands of annotations back to back, and deferral turns what would be
    several small compactions into at most one when the capture finishes.
    """
    with node.store.gc_paused():
        return NodeSnapshot(
            node_id=node.node_id, wal_sequence=wal_sequence, state=node.snapshot_state()
        )


def restore_node_state(node: ProcessorNode, snapshot: NodeSnapshot) -> None:
    """Restore ``node`` from ``snapshot`` (annotations re-interned, GC paused)."""
    with node.store.gc_paused():
        node.restore_state(snapshot.state)


class CheckpointStore:
    """Latest checkpoint per node, held in serialized (byte) form."""

    def __init__(self) -> None:
        self._latest: Dict[int, bytes] = {}
        self.checkpoints_taken = 0

    def save(self, snapshot: NodeSnapshot) -> int:
        """Store ``snapshot`` as the node's latest checkpoint; returns its size."""
        data = snapshot.to_bytes()
        self._latest[snapshot.node_id] = data
        self.checkpoints_taken += 1
        return len(data)

    def latest(self, node_id: int) -> Optional[NodeSnapshot]:
        """The node's most recent checkpoint, decoded (None if never taken)."""
        data = self._latest.get(node_id)
        if data is None:
            return None
        return NodeSnapshot.from_bytes(data)

    def latest_sequence(self, node_id: int) -> int:
        """WAL sequence covered by the node's latest checkpoint (0 if none)."""
        snapshot = self.latest(node_id)
        return 0 if snapshot is None else snapshot.wal_sequence

    def total_bytes(self) -> int:
        """Combined size of all retained checkpoints."""
        return sum(len(data) for data in self._latest.values())
