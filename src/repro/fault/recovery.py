"""Recovery policies: how a crashed processor node rejoins the computation.

Two policies are implemented, matching the two halves of the paper's story:

**Checkpoint + replay** (``RecoveryPolicy.CHECKPOINT_REPLAY``).  The node's
state is restored from its latest durable checkpoint and brought forward by
replaying the write-ahead log suffix (every update batch delivered after the
checkpoint).  Messages that arrived during downtime were held by their
reliable channels and are redelivered afterwards.  Replay re-emits messages
the node already sent before crashing; that is safe because the maintenance
algebra is *idempotent* — a receiver disjoins the duplicate derivation into
provenance it already holds, notices nothing changed, and suppresses it.

**Provenance purge** (``RecoveryPolicy.PROVENANCE_PURGE``).  The node is
declared dead: its live base tuples are absorbed cluster-wide as base-tuple
deletions — exactly the paper's zero-out-the-variable path, driven through
the normal ``purge`` port — and held messages towards it are dropped
(connection teardown), except externally injected base data, which the node's
own sub-network redelivers.  On recovery the node restarts *cold*: the
recovery manager installs fresh incarnation versions for the purged base
tuples (their old variables are tombstoned everywhere), re-injects the node's
live base relation from the log, and asks every surviving peer to reseed the
restarted partition — re-routing the live edge copies and base-case tuples it
owned (:meth:`~repro.engine.runtime.ProcessorNode.reseed_base_into`) and
re-shipping everything their MinShips had already sent it
(:meth:`~repro.engine.runtime.ProcessorNode.reship_sent_to`).

The purge broadcast and the failure detection itself are control-plane
actions (injected, not metered); all reseed traffic flows through the normal
ship path and is therefore counted in the bytes-shipped metric, which is what
the churn benchmark compares across policies.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.data.batch import UpdateBatch
from repro.data.update import Update, UpdateType
from repro.engine.runtime import PORT_BASE, PORT_PURGE, PORT_SEED
from repro.net.message import Message
from repro.net.simulator import FaultListener

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fault.executor import FaultTolerantExecutor


class RecoveryPolicy(enum.Enum):
    """How a crashed node's state is reconstructed."""

    CHECKPOINT_REPLAY = "checkpoint-replay"
    PROVENANCE_PURGE = "provenance-purge"

    @staticmethod
    def by_name(name: str) -> "RecoveryPolicy":
        """Look up a policy by its CLI label."""
        normalised = name.strip().lower().replace("_", "-").replace(" ", "-")
        for policy in RecoveryPolicy:
            if policy.value == normalised:
                return policy
        raise ValueError(f"unknown recovery policy: {name!r}")


class RecoveryManager(FaultListener):
    """The failure detector + recovery coordinator for one executor run."""

    def __init__(self, executor: "FaultTolerantExecutor", policy: RecoveryPolicy) -> None:
        self.executor = executor
        self.policy = policy
        self.crash_count = 0
        self.recovery_count = 0
        #: Variable keys retired by purge-policy failure handling (tombstones).
        self._purged_variables: set = set()
        #: Per-node pending version bumps installed on the next cold restart.
        self._pending_versions: Dict[int, Dict[object, int]] = {}
        #: Diagnostics: one record per recovery, consumed by tests/harness.
        self.recovery_log: List[Dict[str, object]] = []

    def _span(self, node_id: int, name: str, now: float):
        """Open a ``fault``-category span on the node's track (None when untraced).

        The network already emits the crash/recover *instants*; these spans
        cover the recovery *work* — purge fan-out, checkpoint restore, WAL
        replay, peer reseed — so a trace shows where recovery time goes.
        """
        tracer = self.executor.network.tracer
        if tracer is None:
            return None, None
        return tracer, tracer.begin(
            node_id, name, "fault", sim_ts=now, args={"policy": self.policy.value}
        )

    # -- FaultListener protocol ------------------------------------------------------
    def on_crash(self, node_id: int, now: float) -> None:
        self.crash_count += 1
        if self.policy is RecoveryPolicy.PROVENANCE_PURGE:
            tracer, span = self._span(node_id, "crash-purge", now)
            self._purge_dead_base(node_id, now)
            if tracer is not None:
                tracer.end(span)
            from repro.obs.flight import maybe_dump_flight

            maybe_dump_flight(f"crash-purge node {node_id}")

    def on_recover(self, node_id: int, now: float) -> None:
        self.recovery_count += 1
        tracer, span = self._span(node_id, "recovery", now)
        if self.policy is RecoveryPolicy.CHECKPOINT_REPLAY:
            self._restore_and_replay(node_id, now)
        else:
            self._cold_restart(node_id, now)
        if tracer is not None:
            tracer.end(span)

    def should_redeliver(self, message: Message) -> bool:
        if self.policy is RecoveryPolicy.CHECKPOINT_REPLAY:
            return True
        # Provenance purge tears down peer channels to the dead node; only the
        # node's own sub-network (externally injected base data) redelivers.
        return message.src == message.dst and message.port in (PORT_BASE, PORT_SEED)

    # -- provenance-purge policy -------------------------------------------------------
    def _purge_dead_base(self, node_id: int, now: float) -> None:
        """Absorb the dead node's live base tuples as deletions, cluster-wide."""
        executor = self.executor
        live_edges, live_seeds, versions = executor.wal.live_base_state(node_id)
        dead_tuples = list(live_edges) + list(live_seeds)
        purges: List[Update] = []
        bumped: Dict[object, int] = dict(versions)
        for tuple_ in dead_tuples:
            version = versions.get(tuple_.key, 0)
            variable_key = (tuple_.key, version)
            self._purged_variables.add(variable_key)
            bumped[tuple_.key] = version + 1
            purges.append(
                Update(UpdateType.DEL, tuple_, provenance=variable_key, timestamp=now)
            )
        executor.wal.note_incarnation_bump(node_id, (t.key for t in dead_tuples))
        self._pending_versions[node_id] = bumped
        if not purges:
            return
        for peer in executor.nodes:
            if peer.node_id == node_id or executor.network.is_down(peer.node_id):
                continue
            executor.network.inject(peer.node_id, PORT_PURGE, purges, at_time=now)

    def _cold_restart(self, node_id: int, now: float) -> None:
        """Provenance-purge recovery: fresh node, fresh incarnations, peer reseed."""
        executor = self.executor
        node = executor.rebuild_node(node_id)
        node.set_base_versions(self._pending_versions.pop(node_id, {}))
        # Tombstone resync: the restarted node missed every purge broadcast
        # during its downtime; the union of the survivors' tombstones (plus
        # the purges this manager issued) is exactly what it must know about.
        tombstones = set(self._purged_variables)
        for peer in executor.nodes:
            if peer.node_id != node_id and not executor.network.is_down(peer.node_id):
                tombstones.update(peer.deletion_tombstones())
        node.add_deletion_tombstones(tombstones)

        reseeded = 0
        for peer in executor.nodes:
            if peer.node_id == node_id or executor.network.is_down(peer.node_id):
                continue
            peer_edges, peer_seeds, _ = executor.wal.live_base_state(peer.node_id)
            reseeded += peer.reseed_base_into(node_id, peer_edges, peer_seeds, now)
            reseeded += peer.reship_sent_to(node_id, now)

        # The node's own sub-network re-pushes its live base data (as of the
        # crash) with the bumped incarnation versions; data that arrived
        # during downtime follows as held injections.  Reinjection uses the
        # executor's batch policy, same as the normal workload path.
        live_edges, live_seeds, _ = executor.wal.live_base_state(node_id)
        replayed = 0
        for port, tuples in ((PORT_BASE, live_edges), (PORT_SEED, live_seeds)):
            if not tuples:
                continue
            batch = UpdateBatch(Update(UpdateType.INS, t, timestamp=now) for t in tuples)
            for chunk in batch.chunks(executor.batch_policy.injection_chunk(port)):
                executor.network.inject(node_id, port, chunk, at_time=now)
            replayed += len(batch)
        self.recovery_log.append(
            {
                "node": node_id,
                "policy": self.policy.value,
                "time": now,
                "reseeded_updates": reseeded,
                "reinjected_base": replayed,
            }
        )

    # -- checkpoint+replay policy ----------------------------------------------------
    def _restore_and_replay(
        self, node_id: int, now: float, replay_limit: Optional[int] = None
    ) -> None:
        """Restore the latest checkpoint and replay the WAL suffix through the node.

        ``replay_limit`` truncates the replay after that many entries — the
        chaos plane's model of the node dying *mid-replay*.  A later attempt
        is safe because recovery always starts from ``rebuild_node``: the
        partial state is discarded and the full restore+replay reruns from
        the durable checkpoint, exactly once.
        """
        executor = self.executor
        node = executor.rebuild_node(node_id)
        snapshot = executor.checkpoints.latest(node_id)
        restored_sequence = 0
        if snapshot is not None:
            node.restore_state(snapshot.state)
            restored_sequence = snapshot.wal_sequence
        replayed = 0
        for entry in executor.wal.replay(node_id, after_sequence=restored_sequence):
            if replay_limit is not None and replayed >= replay_limit:
                break
            # Replay bypasses the durability shim: the entries are already
            # logged, and their re-emitted outputs are absorbed downstream.
            node.handle(entry.port, entry.updates, now)
            replayed += 1
        self.recovery_log.append(
            {
                "node": node_id,
                "policy": self.policy.value,
                "time": now,
                "checkpoint_sequence": restored_sequence,
                "replayed_entries": replayed,
            }
        )
