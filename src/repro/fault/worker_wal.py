"""Per-worker-process command log for the process execution backend.

The in-process fault layer (:mod:`repro.fault.wal`) logs *updates* per node;
a process worker instead logs the **commands** it executed — deliveries,
flush ticks, join clears — because replaying those through the deterministic
handlers reconstructs every bit of operator and kernel state without
snapshotting any of it.

Discipline is log-*after*-execute-*before*-ack: a command appears in the log
only once its effects exist in the worker, and its result is shipped only
after the append is flushed.  A crash therefore leaves each command in
exactly one of two classes the coordinator can distinguish:

* **unlogged** — the effects are lost; the coordinator re-dispatches the
  command to the respawned worker;
* **logged but unacked** — the effects are recovered by replay; the replayed
  handler regenerates the identical outbox, which the worker re-emits as a
  fresh result.

Entries are consecutive pickles on one append-only stream; ``flush()`` per
append (no fsync — the threat model is a worker *process* dying, not the
host).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Iterator, Tuple


class CommandLog:
    """Append-only pickle stream of executed worker commands."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self.appended = 0

    def append(self, command: Tuple[Any, ...]) -> None:
        """Durably record one executed command (called before its ack ships)."""
        pickle.dump(command, self._file, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.flush()
        self.appended += 1

    def close(self) -> None:
        self._file.close()

    @staticmethod
    def replay(path) -> Iterator[Tuple[Any, ...]]:
        """Yield every logged command in append order (missing file: nothing)."""
        path = Path(path)
        if not path.exists():
            return
        with open(path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return
                except pickle.UnpicklingError:
                    # A torn tail write from the moment of the crash; everything
                    # before it replayed fine, and the torn command was never
                    # acked so the coordinator re-dispatches it.
                    return

    def __repr__(self) -> str:
        return f"CommandLog({self.path}, appended={self.appended})"


def wal_tail_bytes(path) -> int:
    """Size of a worker log (tests/diagnostics)."""
    path = Path(path)
    return path.stat().st_size if path.exists() else 0


__all__ = ["CommandLog", "wal_tail_bytes"]
