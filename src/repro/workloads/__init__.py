"""Workload generators for the experiments of Section 7.

* :mod:`repro.workloads.topology` — GT-ITM-style transit-stub Internet
  topologies (the declarative-networking workload), dense and sparse variants;
* :mod:`repro.workloads.sensors` — simulated sensor fields with seed groups
  and trigger/untrigger event streams (the sensor-region workload);
* :mod:`repro.workloads.updates` — insertion/deletion schedules by ratio, with
  deterministic seeded randomness so experiment runs are reproducible;
* :mod:`repro.workloads.churn` — node crash/recover schedules for the
  fault-tolerance scenarios;
* :mod:`repro.workloads.hotspot` — hub-and-spoke link streams with tunable
  skew, for the elastic placement / rebalancing scenarios.
"""

from repro.workloads.churn import ChurnEvent, ChurnScenario, generate_churn
from repro.workloads.hotspot import HotspotWorkload, generate_hotspot
from repro.workloads.sensors import SensorField, SensorWorkload
from repro.workloads.topology import TransitStubConfig, TransitStubTopology, generate_topology
from repro.workloads.updates import UpdateSchedule, deletion_sample, insertion_prefix

__all__ = [
    "TransitStubConfig",
    "TransitStubTopology",
    "generate_topology",
    "SensorField",
    "SensorWorkload",
    "UpdateSchedule",
    "insertion_prefix",
    "deletion_sample",
    "ChurnEvent",
    "ChurnScenario",
    "generate_churn",
    "HotspotWorkload",
    "generate_hotspot",
]
