"""Insertion / deletion schedules for the experiments.

The experiments of Section 7 are parameterised by an *insertion ratio* (what
fraction of the base tuples has been inserted so far — Figures 7, 9, 11) and a
*deletion ratio* (what fraction of the inserted tuples is subsequently deleted
— Figures 8, 10, 12).  These helpers derive deterministic, seeded prefixes and
samples from a base-tuple list so every scheme sees exactly the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple as PyTuple

from repro.data.tuples import Tuple


def insertion_prefix(tuples: Sequence[Tuple], ratio: float) -> List[Tuple]:
    """The first ``ratio`` fraction of ``tuples`` (the insertion workload)."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("insertion ratio must be in [0, 1]")
    count = round(len(tuples) * ratio)
    return list(tuples[:count])


def deletion_sample(tuples: Sequence[Tuple], ratio: float, seed: int = 13) -> List[Tuple]:
    """A deterministic random sample of ``ratio`` of ``tuples`` (the deletion workload)."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("deletion ratio must be in [0, 1]")
    count = round(len(tuples) * ratio)
    rng = random.Random(seed)
    indexes = sorted(rng.sample(range(len(tuples)), count))
    return [tuples[index] for index in indexes]


@dataclass(frozen=True)
class UpdateSchedule:
    """A full experiment schedule: insertions followed by deletion batches.

    ``insert_batches`` and ``delete_batches`` are lists of tuple batches; the
    harness applies each batch as one phase and records its metrics, which is
    how the paper's per-ratio data points are produced.
    """

    insert_batches: PyTuple[PyTuple[Tuple, ...], ...]
    delete_batches: PyTuple[PyTuple[Tuple, ...], ...]

    @staticmethod
    def staged_insertions(tuples: Sequence[Tuple], ratios: Iterable[float]) -> "UpdateSchedule":
        """Insert growing prefixes: each batch adds the tuples new at that ratio."""
        batches: List[PyTuple[Tuple, ...]] = []
        previous = 0
        for ratio in ratios:
            count = round(len(tuples) * ratio)
            if count < previous:
                raise ValueError("insertion ratios must be non-decreasing")
            batches.append(tuple(tuples[previous:count]))
            previous = count
        return UpdateSchedule(insert_batches=tuple(batches), delete_batches=())

    @staticmethod
    def insert_then_delete(
        tuples: Sequence[Tuple],
        insertion_ratio: float,
        deletion_ratios: Iterable[float],
        seed: int = 13,
    ) -> "UpdateSchedule":
        """Insert a prefix, then delete growing fractions of it batch by batch."""
        inserted = insertion_prefix(tuples, insertion_ratio)
        delete_batches: List[PyTuple[Tuple, ...]] = []
        already: set = set()
        for ratio in deletion_ratios:
            target = deletion_sample(inserted, ratio, seed=seed)
            new = tuple(t for t in target if t not in already)
            already.update(new)
            delete_batches.append(new)
        return UpdateSchedule(
            insert_batches=(tuple(inserted),), delete_batches=tuple(delete_batches)
        )

    @property
    def total_insertions(self) -> int:
        """Total number of tuples inserted across batches."""
        return sum(len(batch) for batch in self.insert_batches)

    @property
    def total_deletions(self) -> int:
        """Total number of tuples deleted across batches."""
        return sum(len(batch) for batch in self.delete_batches)
