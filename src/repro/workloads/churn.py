"""Node-churn scenarios: who crashes when, and for how long.

A :class:`ChurnScenario` is a deterministic schedule of crash/recover event
pairs over the *unit interval* — event times are fractions of a workload's
convergence horizon, so the same scenario can be replayed against runs of
very different absolute length (``scaled`` maps it onto a concrete horizon).
:func:`generate_churn` produces seeded, non-overlapping crash/recover cycles,
mirroring how the topology and sensor workloads derive deterministic event
streams from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple as PyTuple

#: Event kinds.
CRASH = "crash"
RECOVER = "recover"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled failure event: ``kind`` at ``time`` for ``node``."""

    time: float
    kind: str  # CRASH or RECOVER
    node: int


@dataclass(frozen=True)
class ChurnScenario:
    """An ordered schedule of crash/recover events (times in any unit)."""

    events: PyTuple[ChurnEvent, ...]

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if times != sorted(times):
            raise ValueError("churn events must be sorted by time")

    @property
    def crash_count(self) -> int:
        """Number of crash events in the scenario."""
        return sum(1 for event in self.events if event.kind == CRASH)

    @property
    def victims(self) -> PyTuple[int, ...]:
        """Nodes crashed by the scenario, in crash order."""
        return tuple(event.node for event in self.events if event.kind == CRASH)

    def scaled(self, horizon: float, offset: float = 0.0) -> "ChurnScenario":
        """Map unit-interval event times onto ``offset + time * horizon``."""
        return ChurnScenario(
            tuple(
                ChurnEvent(offset + event.time * horizon, event.kind, event.node)
                for event in self.events
            )
        )

    def apply(self, executor) -> None:
        """Schedule every event on a :class:`~repro.fault.FaultTolerantExecutor`."""
        for event in self.events:
            if event.kind == CRASH:
                executor.schedule_crash(event.node, at_time=event.time)
            else:
                executor.schedule_recovery(event.node, at_time=event.time)


def generate_churn(
    node_count: int,
    cycles: int = 1,
    downtime: float = 0.3,
    start: float = 0.2,
    end: float = 0.9,
    seed: int = 7,
    victims: Sequence[int] = (),
) -> ChurnScenario:
    """Generate ``cycles`` sequential, non-overlapping crash/recover pairs.

    The window ``[start, end]`` of the unit interval is split evenly into one
    slot per cycle; within each slot the crash fires after a seeded jitter and
    the node stays down for ``downtime`` of the slot.  ``victims`` pins the
    crashed nodes explicitly (cycled if shorter than ``cycles``); otherwise a
    seeded choice picks a node per cycle, avoiding immediate repeats.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    if not 0.0 < downtime < 1.0:
        raise ValueError("downtime must be a fraction in (0, 1)")
    if not 0.0 <= start < end <= 1.0:
        raise ValueError("need 0 <= start < end <= 1")
    rng = random.Random(seed)
    events: List[ChurnEvent] = []
    slot = (end - start) / max(cycles, 1)
    previous_victim = -1
    for cycle in range(cycles):
        if victims:
            victim = victims[cycle % len(victims)]
        else:
            victim = rng.randrange(node_count)
            if node_count > 1 and victim == previous_victim:
                victim = (victim + 1) % node_count
        previous_victim = victim
        slot_start = start + cycle * slot
        jitter = rng.uniform(0.0, slot * (1.0 - downtime) * 0.5)
        crash_at = slot_start + jitter
        recover_at = crash_at + downtime * slot
        events.append(ChurnEvent(crash_at, CRASH, victim))
        events.append(ChurnEvent(recover_at, RECOVER, victim))
    return ChurnScenario(tuple(events))
