"""Hotspot / skew workloads: link streams that overload a few partition keys.

The transit-stub topologies spread link sources fairly evenly across the key
space, so a hash-partitioned cluster stays naturally balanced — which hides
exactly the problem the elastic placement subsystem exists to solve.  A
:class:`HotspotWorkload` instead routes a configurable fraction of all links
through a small set of *hub* nodes: every hub-adjacent link keys to a hub (as
``src``) or probes a hub's join partition (as ``dst``), concentrating base
ownership, join work and view fan-out on the hubs' owners.

The generated stream is deterministic in ``seed``, connected (a hub backbone
plus spoke attachments), and returns plain ``link(src, dst)`` tuples, so it
drives the reachability plan directly and the networkx oracle can supply
ground truth via :func:`edge_pairs`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.queries.reachability import link


@dataclass(frozen=True)
class HotspotWorkload:
    """A generated skewed link stream."""

    #: Hub node names (the hot partition keys).
    hubs: PyTuple[str, ...]
    #: Spoke node names.
    spokes: PyTuple[str, ...]
    #: Directed (src, dst) pairs in generation order.
    pairs: PyTuple[PyTuple[str, str], ...]

    def link_tuples(self) -> List[Tuple]:
        """The stream as ``link(src, dst)`` base tuples, in order."""
        return [link(src, dst) for src, dst in self.pairs]

    def edge_pairs(self) -> List[PyTuple[str, str]]:
        """Directed (src, dst) pairs, for ground-truth computations."""
        return list(self.pairs)

    @property
    def hub_fraction(self) -> float:
        """Fraction of links with a hub endpoint (the skew actually generated)."""
        if not self.pairs:
            return 0.0
        hubs = set(self.hubs)
        touching = sum(1 for src, dst in self.pairs if src in hubs or dst in hubs)
        return touching / len(self.pairs)

    def __repr__(self) -> str:
        return (
            f"HotspotWorkload({len(self.hubs)} hubs, {len(self.spokes)} spokes, "
            f"{len(self.pairs)} links, {self.hub_fraction:.0%} hub-adjacent)"
        )


def generate_hotspot(
    spokes: int = 24,
    hubs: int = 2,
    hub_bias: float = 0.8,
    extra_links: int = 30,
    seed: int = 7,
) -> HotspotWorkload:
    """Generate a deterministic hub-and-spoke link stream with tunable skew.

    The backbone is a hub cycle plus one hub link per spoke (keeping the graph
    connected so the reachable view is dense enough to be interesting); each
    of the ``extra_links`` then attaches to a seeded-random hub with
    probability ``hub_bias`` and to a random spoke pair otherwise.  Higher
    ``hub_bias`` concentrates more base ownership and join traffic on the
    hubs' owner nodes.
    """
    if spokes <= 1:
        raise ValueError("need at least two spokes")
    if hubs <= 0:
        raise ValueError("need at least one hub")
    if not 0.0 <= hub_bias <= 1.0:
        raise ValueError("hub_bias must be in [0, 1]")
    if extra_links < 0:
        raise ValueError("extra_links must be non-negative")
    rng = random.Random(seed)
    hub_names = tuple(f"hub{index}" for index in range(hubs))
    spoke_names = tuple(f"s{index}" for index in range(spokes))
    pairs: List[PyTuple[str, str]] = []
    seen = set()

    def emit(src: str, dst: str) -> None:
        if src != dst and (src, dst) not in seen:
            seen.add((src, dst))
            pairs.append((src, dst))

    # Hub backbone: a directed cycle through the hubs.
    for index, hub in enumerate(hub_names):
        if len(hub_names) > 1:
            emit(hub, hub_names[(index + 1) % len(hub_names)])
    # Every spoke attaches to a hub in one direction, seeded-random which.
    for index, spoke in enumerate(spoke_names):
        hub = hub_names[index % len(hub_names)]
        if rng.random() < 0.5:
            emit(spoke, hub)
        else:
            emit(hub, spoke)
    # Extra links: hub-adjacent with probability ``hub_bias``.
    attempts = 0
    target = len(pairs) + extra_links
    while len(pairs) < target and attempts < extra_links * 20:
        attempts += 1
        if rng.random() < hub_bias:
            hub = rng.choice(hub_names)
            spoke = rng.choice(spoke_names)
            if rng.random() < 0.5:
                emit(hub, spoke)
            else:
                emit(spoke, hub)
        else:
            emit(rng.choice(spoke_names), rng.choice(spoke_names))
    return HotspotWorkload(hubs=hub_names, spokes=spoke_names, pairs=tuple(pairs))
