"""GT-ITM-style transit-stub Internet topologies.

The paper generates its declarative-networking inputs with GT-ITM
"transit-stub" topologies: a small set of *transit domains* whose routers are
densely connected form the backbone; each transit router attaches several
*stub domains* whose routers carry end hosts.  The default configuration in
Section 7.1 is eight nodes per stub, three stubs per transit node and four
nodes per transit domain, giving a 100-node network with roughly 200
bidirectional links (400 directed ``link`` tuples); latencies are 50 ms
between transit nodes, 10 ms transit-to-stub and 2 ms inside a stub.

GT-ITM itself is a C package we cannot ship, so :func:`generate_topology`
reproduces the same structural family with a seeded random generator:

* transit routers within a domain form a connected random backbone
  (ring plus random chords, "dense" doubles the chords);
* every transit router owns ``stubs_per_transit`` stub domains;
* stub routers within a stub form a connected sparse graph
  ("dense" adds extra intra-stub edges);
* all links are bidirectional (two directed ``link`` tuples).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.queries.reachability import link
from repro.queries.shortest_path import cost_link

#: Latency classes from the paper (milliseconds).
TRANSIT_TRANSIT_LATENCY_MS = 50.0
TRANSIT_STUB_LATENCY_MS = 10.0
INTRA_STUB_LATENCY_MS = 2.0


@dataclass(frozen=True)
class TransitStubConfig:
    """Parameters of a transit-stub topology (defaults follow Section 7.1)."""

    transit_domains: int = 1
    transit_nodes_per_domain: int = 4
    stubs_per_transit: int = 3
    nodes_per_stub: int = 8
    dense: bool = True
    seed: int = 7

    @property
    def node_count(self) -> int:
        """Total number of routers in the generated network."""
        transit = self.transit_domains * self.transit_nodes_per_domain
        return transit + transit * self.stubs_per_transit * self.nodes_per_stub


@dataclass
class TransitStubTopology:
    """A generated topology: node names and undirected weighted edges."""

    config: TransitStubConfig
    nodes: List[str]
    #: Undirected edges as (u, v, latency_ms) with u < v.
    edges: List[PyTuple[str, str, float]]

    # -- conversions to base relations ---------------------------------------------
    def link_tuples(self) -> List[Tuple]:
        """Directed ``link(src, dst)`` tuples (two per undirected edge)."""
        tuples: List[Tuple] = []
        for u, v, _latency in self.edges:
            tuples.append(link(u, v))
            tuples.append(link(v, u))
        return tuples

    def cost_link_tuples(self) -> List[Tuple]:
        """Directed ``link(src, dst, cost)`` tuples with the latency as cost."""
        tuples: List[Tuple] = []
        for u, v, latency in self.edges:
            tuples.append(cost_link(u, v, latency))
            tuples.append(cost_link(v, u, latency))
        return tuples

    def edge_pairs(self) -> List[PyTuple[str, str]]:
        """Directed (src, dst) pairs, for ground-truth computations."""
        pairs: List[PyTuple[str, str]] = []
        for u, v, _latency in self.edges:
            pairs.append((u, v))
            pairs.append((v, u))
        return pairs

    @property
    def directed_link_count(self) -> int:
        """Number of directed ``link`` tuples."""
        return 2 * len(self.edges)

    def __repr__(self) -> str:
        return (
            f"TransitStubTopology({len(self.nodes)} nodes, {len(self.edges)} undirected links, "
            f"{'dense' if self.config.dense else 'sparse'})"
        )


def _connected_random_graph(
    nodes: Sequence[str], extra_edges: int, rng: random.Random
) -> Set[PyTuple[str, str]]:
    """A connected undirected graph: a ring backbone plus random chords."""
    edges: Set[PyTuple[str, str]] = set()
    if len(nodes) <= 1:
        return edges
    ordering = list(nodes)
    rng.shuffle(ordering)
    for index in range(len(ordering)):
        u = ordering[index]
        v = ordering[(index + 1) % len(ordering)]
        if u != v:
            edges.add((min(u, v), max(u, v)))
    attempts = 0
    while extra_edges > 0 and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u, v = rng.sample(list(nodes), 2)
        edge = (min(u, v), max(u, v))
        if edge not in edges:
            edges.add(edge)
            extra_edges -= 1
    return edges


def generate_topology(config: TransitStubConfig = TransitStubConfig()) -> TransitStubTopology:
    """Generate a transit-stub topology for the given configuration."""
    rng = random.Random(config.seed)
    nodes: List[str] = []
    edges: List[PyTuple[str, str, float]] = []

    transit_by_domain: List[List[str]] = []
    for domain in range(config.transit_domains):
        domain_nodes = [
            f"t{domain}.{index}" for index in range(config.transit_nodes_per_domain)
        ]
        transit_by_domain.append(domain_nodes)
        nodes.extend(domain_nodes)
        chords = config.transit_nodes_per_domain if config.dense else max(
            config.transit_nodes_per_domain // 2, 1
        )
        for u, v in _connected_random_graph(domain_nodes, chords, rng):
            edges.append((u, v, TRANSIT_TRANSIT_LATENCY_MS))

    # Connect transit domains into a backbone ring.
    for domain in range(1, config.transit_domains):
        u = transit_by_domain[domain - 1][0]
        v = transit_by_domain[domain][0]
        edges.append((min(u, v), max(u, v), TRANSIT_TRANSIT_LATENCY_MS))

    for domain_nodes in transit_by_domain:
        for transit_node in domain_nodes:
            for stub in range(config.stubs_per_transit):
                stub_nodes = [
                    f"s{transit_node}.{stub}.{index}"
                    for index in range(config.nodes_per_stub)
                ]
                nodes.extend(stub_nodes)
                extra = config.nodes_per_stub if config.dense else max(
                    config.nodes_per_stub // 4, 1
                )
                for u, v in _connected_random_graph(stub_nodes, extra, rng):
                    edges.append((u, v, INTRA_STUB_LATENCY_MS))
                # Attach the stub to its transit router.
                gateway = rng.choice(stub_nodes)
                edges.append(
                    (min(transit_node, gateway), max(transit_node, gateway), TRANSIT_STUB_LATENCY_MS)
                )

    deduped = sorted(set(edges))
    return TransitStubTopology(config=config, nodes=sorted(set(nodes)), edges=deduped)


def topology_with_link_budget(
    directed_links: int, dense: bool = True, seed: int = 7
) -> TransitStubTopology:
    """Generate a topology whose directed-link count approximates ``directed_links``.

    Used by the scalability experiments (Figures 11 and 12), which sweep the
    total number of links in the network {100, 200, 400, 800} for dense and
    sparse variants.  The stub size is scaled until the generated topology
    reaches the requested budget (within the granularity the generator allows).
    """
    if directed_links < 20:
        raise ValueError("directed_links too small for a transit-stub topology")
    best: TransitStubTopology | None = None
    for nodes_per_stub in range(2, 40):
        config = TransitStubConfig(
            transit_domains=1,
            transit_nodes_per_domain=4,
            stubs_per_transit=3,
            nodes_per_stub=nodes_per_stub,
            dense=dense,
            seed=seed,
        )
        candidate = generate_topology(config)
        if best is None or abs(candidate.directed_link_count - directed_links) < abs(
            best.directed_link_count - directed_links
        ):
            best = candidate
        if candidate.directed_link_count >= directed_links:
            break
    assert best is not None
    return best
