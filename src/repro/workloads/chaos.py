"""The combined chaos workload: power-law graphs with skew and deletion storms.

The transit-stub topologies are benign: degree is bounded, ownership spreads
evenly, deletions are a modest sample.  The chaos plane wants the opposite —
a **power-law** (Barabási–Albert preferential attachment) link graph whose
hubs concentrate base ownership, join probes and provenance fan-in on a few
unlucky partitions, applied in three adversarial phases:

1. ``insert`` — the bulk of the graph goes in and converges;
2. ``skew`` — late attachments pile onto the hubs *while* a seeded sample of
   early edges is deleted in the same mixed phase;
3. ``deletion-storm`` — a large seeded fraction of the surviving edges is
   torn down at once, the provenance-maintenance worst case.

Everything is deterministic in ``seed`` (generation, direction coins, storm
samples), so a chaos run and its fault-free parity reference see the exact
same update stream.  Scaled by ``links``, this is the 10–100x-topology-scale
workload the ROADMAP's chaos-composition item calls for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.queries.reachability import link


@dataclass(frozen=True)
class PowerLawGraph:
    """A generated preferential-attachment digraph."""

    #: Vertex names, ``v0 .. vN`` in attachment order.
    vertices: PyTuple[str, ...]
    #: Directed (src, dst) pairs in generation order.
    pairs: PyTuple[PyTuple[str, str], ...]

    def degrees(self) -> Dict[str, int]:
        """Total (in+out) degree per vertex."""
        counts: Dict[str, int] = {vertex: 0 for vertex in self.vertices}
        for src, dst in self.pairs:
            counts[src] += 1
            counts[dst] += 1
        return counts

    def hubs(self, count: int = 3) -> PyTuple[str, ...]:
        """The ``count`` highest-degree vertices (ties broken by name)."""
        degrees = self.degrees()
        return tuple(
            sorted(degrees, key=lambda vertex: (-degrees[vertex], vertex))[:count]
        )

    def link_tuples(self) -> List[Tuple]:
        """The whole graph as ``link(src, dst)`` base tuples."""
        return [link(src, dst) for src, dst in self.pairs]


def generate_power_law(
    vertices: int = 48, attach: int = 2, seed: int = 11
) -> PowerLawGraph:
    """Barabási–Albert preferential attachment, pure Python and seeded.

    Starts from a directed cycle over the first ``attach + 1`` vertices; each
    later vertex attaches to ``attach`` *distinct* existing vertices sampled
    from the endpoint list (every prior edge endpoint appears once per
    incidence, which is exactly degree-proportional sampling).  Edge
    directions are seeded coins, so hubs accumulate both fan-in and fan-out.
    """
    if attach < 1:
        raise ValueError("attach must be at least 1")
    if vertices < attach + 2:
        raise ValueError(f"need at least {attach + 2} vertices for attach={attach}")
    rng = random.Random(seed)
    names = tuple(f"v{index}" for index in range(vertices))
    pairs: List[PyTuple[str, str]] = []
    seen = set()
    endpoints: List[str] = []

    def emit(src: str, dst: str) -> None:
        if src != dst and (src, dst) not in seen:
            seen.add((src, dst))
            pairs.append((src, dst))
            endpoints.append(src)
            endpoints.append(dst)

    core = attach + 1
    for index in range(core):
        emit(names[index], names[(index + 1) % core])
    for index in range(core, vertices):
        newcomer = names[index]
        targets: List[str] = []
        while len(targets) < attach:
            candidate = endpoints[rng.randrange(len(endpoints))]
            if candidate != newcomer and candidate not in targets:
                targets.append(candidate)
        for target in targets:
            if rng.random() < 0.5:
                emit(newcomer, target)
            else:
                emit(target, newcomer)
    return PowerLawGraph(vertices=names, pairs=tuple(pairs))


@dataclass(frozen=True)
class ChaosWorkload:
    """The three-phase adversarial update stream over one power-law graph."""

    graph: PowerLawGraph
    base_pairs: PyTuple[PyTuple[str, str], ...]
    skew_insert_pairs: PyTuple[PyTuple[str, str], ...]
    skew_delete_pairs: PyTuple[PyTuple[str, str], ...]
    storm_delete_pairs: PyTuple[PyTuple[str, str], ...]

    def phases(self) -> List[PyTuple[str, List[Tuple], List[Tuple]]]:
        """``(label, edge_inserts, edge_deletes)`` per phase, as link tuples."""
        as_links = lambda pairs: [link(src, dst) for src, dst in pairs]  # noqa: E731
        return [
            ("insert", as_links(self.base_pairs), []),
            ("skew", as_links(self.skew_insert_pairs), as_links(self.skew_delete_pairs)),
            ("deletion-storm", [], as_links(self.storm_delete_pairs)),
        ]

    def final_pairs(self) -> List[PyTuple[str, str]]:
        """The edges still live after all three phases (ground truth input)."""
        live = dict.fromkeys(self.base_pairs)
        for pair in self.skew_insert_pairs:
            live[pair] = None
        for pair in self.skew_delete_pairs + self.storm_delete_pairs:
            live.pop(pair, None)
        return list(live)

    @property
    def total_links(self) -> int:
        return len(self.graph.pairs)

    def __repr__(self) -> str:
        return (
            f"ChaosWorkload({self.total_links} links over "
            f"{len(self.graph.vertices)} vertices: {len(self.base_pairs)} base, "
            f"+{len(self.skew_insert_pairs)}/-{len(self.skew_delete_pairs)} skew, "
            f"-{len(self.storm_delete_pairs)} storm)"
        )


def generate_chaos_workload(
    links: int = 120,
    seed: int = 11,
    attach: int = 2,
    base_fraction: float = 0.7,
    skew_delete_fraction: float = 0.1,
    storm_fraction: float = 0.3,
) -> ChaosWorkload:
    """Build the three-phase workload with roughly ``links`` total edges.

    Phase boundaries follow attachment order: the base phase is the early
    graph, the skew phase's insertions are the late attachments (which, by
    preferential attachment, mostly pile onto the established hubs) plus a
    seeded deletion sample of early edges, and the storm deletes a seeded
    ``storm_fraction`` of everything still standing.
    """
    if links < 12:
        raise ValueError("need at least 12 links for a meaningful chaos workload")
    vertices = max(links // attach + 1, attach + 2)
    graph = generate_power_law(vertices=vertices, attach=attach, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    split = max(int(len(graph.pairs) * base_fraction), 1)
    base = graph.pairs[:split]
    skew_inserts = graph.pairs[split:]
    skew_deletes = tuple(
        sorted(
            rng.sample(base, max(int(len(base) * skew_delete_fraction), 1))
        )
    )
    surviving = [
        pair
        for pair in base + skew_inserts
        if pair not in set(skew_deletes)
    ]
    storm_deletes = tuple(
        sorted(
            rng.sample(surviving, max(int(len(surviving) * storm_fraction), 1))
        )
    )
    return ChaosWorkload(
        graph=graph,
        base_pairs=base,
        skew_insert_pairs=skew_inserts,
        skew_delete_pairs=skew_deletes,
        storm_delete_pairs=storm_deletes,
    )
