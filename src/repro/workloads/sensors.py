"""Simulated sensor fields and trigger workloads (the region query's input).

The paper's second workload (Section 7.1) is a simulated 100 m x 100 m grid of
sensors reporting to their local query processor.  Five "seed" groups are
initialised with one reference device each; the recursive view adds every
triggered sensor within ``k`` metres (default 20 m) of a sensor already in a
region — and removes sensors that are no longer triggered.

:class:`SensorField` places the sensors and knows the proximity relation;
:class:`SensorWorkload` turns *trigger* / *untrigger* events into the base-
relation deltas the distributed engine consumes:

* a triggered sensor contributes directed ``proximity(src, dst)`` edges from
  itself to every sensor within ``k`` metres (the edge means "src is triggered
  and dst is nearby", matching the rule's ``isTriggered(x)`` subgoal), and
* a triggered *seed* sensor contributes an ``activeRegion`` seed tuple.

Untriggering a sensor deletes exactly those tuples, so region maintenance is
exercised through the same insert/delete machinery as the networking workload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.queries.regions import active_region, proximity


@dataclass(frozen=True)
class Sensor:
    """One sensor with an id and a position in metres."""

    sensor_id: str
    x: float
    y: float

    def distance_to(self, other: "Sensor") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass
class SensorField:
    """A set of sensors on a square field, with seed-group assignments."""

    sensors: List[Sensor]
    seed_sensors: Dict[str, str]  # sensor id -> region id
    proximity_radius: float

    @staticmethod
    def grid(
        side_metres: float = 100.0,
        spacing_metres: float = 10.0,
        proximity_radius: float = 20.0,
        seed_groups: int = 5,
        rng_seed: int = 11,
    ) -> "SensorField":
        """A regular grid of sensors with ``seed_groups`` spread-out reference sensors."""
        sensors: List[Sensor] = []
        per_side = int(side_metres // spacing_metres) + 1
        for row in range(per_side):
            for column in range(per_side):
                sensors.append(
                    Sensor(f"s{row}_{column}", column * spacing_metres, row * spacing_metres)
                )
        rng = random.Random(rng_seed)
        chosen = rng.sample(sensors, min(seed_groups, len(sensors)))
        seeds = {sensor.sensor_id: f"region{index}" for index, sensor in enumerate(chosen)}
        return SensorField(sensors=sensors, seed_sensors=seeds, proximity_radius=proximity_radius)

    def __post_init__(self) -> None:
        self._by_id = {sensor.sensor_id: sensor for sensor in self.sensors}
        self._neighbors: Dict[str, List[str]] = {}
        for sensor in self.sensors:
            nearby = [
                other.sensor_id
                for other in self.sensors
                if other.sensor_id != sensor.sensor_id
                and sensor.distance_to(other) < self.proximity_radius
            ]
            self._neighbors[sensor.sensor_id] = nearby

    @property
    def sensor_ids(self) -> List[str]:
        """All sensor ids."""
        return [sensor.sensor_id for sensor in self.sensors]

    def neighbors_of(self, sensor_id: str) -> List[str]:
        """Sensors within the proximity radius of ``sensor_id``."""
        return self._neighbors[sensor_id]

    def is_seed(self, sensor_id: str) -> bool:
        """True when the sensor is one of the reference (seed) sensors."""
        return sensor_id in self.seed_sensors

    def region_of_seed(self, sensor_id: str) -> Optional[str]:
        """Region id of a seed sensor (None for ordinary sensors)."""
        return self.seed_sensors.get(sensor_id)


@dataclass
class BaseDelta:
    """Base-relation changes produced by one trigger/untrigger event."""

    proximity_inserts: List[Tuple] = field(default_factory=list)
    proximity_deletes: List[Tuple] = field(default_factory=list)
    seed_inserts: List[Tuple] = field(default_factory=list)
    seed_deletes: List[Tuple] = field(default_factory=list)

    def merge(self, other: "BaseDelta") -> "BaseDelta":
        """Concatenate two deltas (batching several events into one phase)."""
        return BaseDelta(
            proximity_inserts=self.proximity_inserts + other.proximity_inserts,
            proximity_deletes=self.proximity_deletes + other.proximity_deletes,
            seed_inserts=self.seed_inserts + other.seed_inserts,
            seed_deletes=self.seed_deletes + other.seed_deletes,
        )

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not (
            self.proximity_inserts
            or self.proximity_deletes
            or self.seed_inserts
            or self.seed_deletes
        )


class SensorWorkload:
    """Tracks trigger state and derives base-relation deltas for the region query."""

    def __init__(self, sensor_field: SensorField) -> None:
        self.field = sensor_field
        self.triggered: Set[str] = set()

    # -- event -> base-relation delta -----------------------------------------------
    def trigger(self, sensor_id: str) -> BaseDelta:
        """Mark ``sensor_id`` as triggered; return the base tuples to insert."""
        if sensor_id in self.triggered:
            return BaseDelta()
        self.triggered.add(sensor_id)
        delta = BaseDelta()
        for neighbor in self.field.neighbors_of(sensor_id):
            delta.proximity_inserts.append(proximity(sensor_id, neighbor))
        region = self.field.region_of_seed(sensor_id)
        if region is not None:
            delta.seed_inserts.append(active_region(sensor_id, region))
        return delta

    def untrigger(self, sensor_id: str) -> BaseDelta:
        """Mark ``sensor_id`` as no longer triggered; return the base tuples to delete."""
        if sensor_id not in self.triggered:
            return BaseDelta()
        self.triggered.discard(sensor_id)
        delta = BaseDelta()
        for neighbor in self.field.neighbors_of(sensor_id):
            delta.proximity_deletes.append(proximity(sensor_id, neighbor))
        region = self.field.region_of_seed(sensor_id)
        if region is not None:
            delta.seed_deletes.append(active_region(sensor_id, region))
        return delta

    def trigger_many(self, sensor_ids: Iterable[str]) -> BaseDelta:
        """Trigger a batch of sensors, merging their deltas."""
        delta = BaseDelta()
        for sensor_id in sensor_ids:
            delta = delta.merge(self.trigger(sensor_id))
        return delta

    def untrigger_many(self, sensor_ids: Iterable[str]) -> BaseDelta:
        """Untrigger a batch of sensors, merging their deltas."""
        delta = BaseDelta()
        for sensor_id in sensor_ids:
            delta = delta.merge(self.untrigger(sensor_id))
        return delta

    # -- ground truth -------------------------------------------------------------------
    def live_proximity_pairs(self) -> Set[PyTuple[str, str]]:
        """Current directed proximity edges (src triggered, dst within radius)."""
        pairs: Set[PyTuple[str, str]] = set()
        for sensor_id in self.triggered:
            for neighbor in self.field.neighbors_of(sensor_id):
                pairs.add((sensor_id, neighbor))
        return pairs

    def live_seeds(self) -> Dict[str, str]:
        """Currently triggered seed sensors mapped to their region ids."""
        return {
            sensor_id: region
            for sensor_id, region in self.field.seed_sensors.items()
            if sensor_id in self.triggered
        }

    def expected_regions(self) -> Dict[str, Set[str]]:
        """Ground-truth region membership from the current trigger state.

        A sensor belongs to a region when it is the region's triggered seed or
        reachable from it over proximity edges whose sources are triggered —
        matching Query 3's semantics (a region can temporarily include the
        untriggered fringe of triggered sensors, exactly as the recursive rule
        derives it).
        """
        from repro.baselines.networkx_ref import connected_regions

        return connected_regions(self.live_seeds(), self.live_proximity_pairs())
