"""Ground truth computed with networkx.

These functions answer the same questions as the distributed recursive views
— which pairs are reachable, what the cheapest/shortest paths cost, which
sensors belong to which contiguous region — directly from the *current* base
data.  Integration tests compare the engine's maintained views against these
answers after every workload phase, under every maintenance strategy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Set, Tuple as PyTuple

import networkx as nx


def _digraph(edges: Iterable[PyTuple[Any, Any]]) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    return graph


def reachable_pairs(edges: Iterable[PyTuple[Any, Any]]) -> Set[PyTuple[Any, Any]]:
    """All ordered pairs (x, y) with a directed path of >= 1 edge from x to y.

    Matches the semantics of Query 1: ``reachable`` contains (x, x) only when
    x lies on a directed cycle.
    """
    graph = _digraph(edges)
    pairs: Set[PyTuple[Any, Any]] = set()
    for source in graph.nodes:
        for target in nx.descendants(graph, source):
            pairs.add((source, target))
        # nx.descendants excludes the source itself; include it when the
        # source can return to itself through a cycle.
        for successor in graph.successors(source):
            if successor == source or nx.has_path(graph, successor, source):
                pairs.add((source, source))
                break
    return pairs


def cheapest_path_costs(
    weighted_edges: Iterable[PyTuple[Any, Any, float]]
) -> Dict[PyTuple[Any, Any], float]:
    """Minimum path cost for every reachable ordered pair (paths of >= 1 edge)."""
    graph = nx.DiGraph()
    for src, dst, cost in weighted_edges:
        if graph.has_edge(src, dst):
            graph[src][dst]["weight"] = min(graph[src][dst]["weight"], cost)
        else:
            graph.add_edge(src, dst, weight=cost)
    costs: Dict[PyTuple[Any, Any], float] = {}
    for source in graph.nodes:
        lengths = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
        for target, cost in lengths.items():
            if target == source:
                continue
            costs[(source, target)] = cost
    # Self-pairs through cycles: cheapest cycle through the node.
    for source in graph.nodes:
        best = None
        for successor in graph.successors(source):
            if successor == source:
                candidate = graph[source][source]["weight"]
            else:
                try:
                    back = nx.dijkstra_path_length(graph, successor, source, weight="weight")
                except nx.NetworkXNoPath:
                    continue
                candidate = graph[source][successor]["weight"] + back
            if best is None or candidate < best:
                best = candidate
        if best is not None:
            costs[(source, source)] = best
    return costs


def fewest_hop_counts(
    edges: Iterable[PyTuple[Any, Any]]
) -> Dict[PyTuple[Any, Any], int]:
    """Minimum hop count for every reachable ordered pair (paths of >= 1 edge)."""
    unit_edges = [(src, dst, 1.0) for src, dst in edges]
    return {pair: int(cost) for pair, cost in cheapest_path_costs(unit_edges).items()}


def connected_regions(
    seeds: Mapping[Any, Any],
    proximity_edges: Iterable[PyTuple[Any, Any]],
) -> Dict[Any, Set[Any]]:
    """Region membership: sensors reachable from each region's seed sensors.

    ``seeds`` maps a seed sensor to its region id; ``proximity_edges`` are the
    directed "triggered and within k" edges.  A sensor belongs to a region
    when it is a (triggered) seed of that region or reachable from one through
    proximity edges — the semantics of Query 3.
    """
    graph = _digraph(proximity_edges)
    members: Dict[Any, Set[Any]] = {}
    for sensor, region in seeds.items():
        region_members = members.setdefault(region, set())
        region_members.add(sensor)
        if sensor in graph:
            region_members.update(nx.descendants(graph, sensor))
    return members


def region_sizes_reference(
    seeds: Mapping[Any, Any],
    proximity_edges: Iterable[PyTuple[Any, Any]],
) -> Dict[Any, int]:
    """Reference ``regionSizes``: number of member sensors per region."""
    return {
        region: len(sensors)
        for region, sensors in connected_regions(seeds, proximity_edges).items()
    }
