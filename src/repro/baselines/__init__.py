"""Ground-truth baselines used to validate the distributed engine.

* :mod:`repro.baselines.networkx_ref` — reachability, shortest paths and
  connected regions computed directly with networkx over the live base data;
* :mod:`repro.baselines.centralized` — a centralized semi-naive recomputation
  of the same recursive views (no distribution, no incrementality), used both
  as a correctness oracle and as the "recompute from scratch" cost reference.
"""

from repro.baselines.centralized import CentralizedRecursiveEvaluator
from repro.baselines.networkx_ref import (
    cheapest_path_costs,
    connected_regions,
    fewest_hop_counts,
    reachable_pairs,
    region_sizes_reference,
)

__all__ = [
    "reachable_pairs",
    "cheapest_path_costs",
    "fewest_hop_counts",
    "connected_regions",
    "region_sizes_reference",
    "CentralizedRecursiveEvaluator",
]
