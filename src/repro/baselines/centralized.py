"""Centralized semi-naive evaluation of a recursive view plan.

This is the classical, non-distributed, non-incremental way to obtain the
view: run the base case over all edges (plus seeds), then repeat the recursive
rule over the delta until nothing new is derived.  It serves two purposes:

* a correctness oracle — the distributed, incrementally maintained view must
  equal this recomputation over the live base data after every phase;
* the "recompute from scratch" cost reference that DRed's deletion handling
  degenerates to (Section 3.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set

from repro.data.tuples import Tuple
from repro.engine.plan import RecursiveViewPlan


class CentralizedRecursiveEvaluator:
    """Evaluates a :class:`RecursiveViewPlan` to fixpoint in one process."""

    def __init__(self, plan: RecursiveViewPlan) -> None:
        self.plan = plan
        #: Number of semi-naive iterations taken by the last evaluation.
        self.iterations = 0
        #: Number of rule firings attempted by the last evaluation.
        self.derivations_tried = 0

    def evaluate(
        self, edges: Iterable[Tuple], seeds: Iterable[Tuple] = ()
    ) -> Set[Tuple]:
        """Compute the full view contents for the given base data."""
        plan = self.plan
        edges = list(edges)
        edge_index: Dict[object, List[Tuple]] = defaultdict(list)
        for edge in edges:
            edge_index[plan.edge_join_value(edge)].append(edge)

        view: Set[Tuple] = set()
        delta: Set[Tuple] = set()

        for seed in seeds:
            if seed not in view:
                view.add(seed)
                delta.add(seed)
        if plan.make_base is not None:
            for edge in edges:
                base = plan.base_tuple_for(edge)
                if base is not None and base not in view:
                    view.add(base)
                    delta.add(base)

        self.iterations = 0
        self.derivations_tried = 0
        while delta:
            self.iterations += 1
            new_delta: Set[Tuple] = set()
            for view_tuple in delta:
                join_value = view_tuple[plan.result_join_attribute]
                for edge in edge_index.get(join_value, []):
                    self.derivations_tried += 1
                    derived = plan.combine(edge, view_tuple)
                    if derived is not None and derived not in view:
                        view.add(derived)
                        new_delta.add(derived)
            delta = new_delta
        return view

    def evaluate_values(self, edges: Iterable[Tuple], seeds: Iterable[Tuple] = ()) -> Set[tuple]:
        """The view as raw value tuples (convenient for comparisons)."""
        return {tuple_.values for tuple_ in self.evaluate(edges, seeds)}
