"""Common operator machinery.

Every stateful operator in the plan:

* consumes :class:`~repro.data.update.Update` objects through ``process`` and
  returns the updates it emits downstream;
* consumes whole *delta batches* through ``process_batch`` — the default
  implementation loops over ``process``, and the hot operators (join,
  fixpoint, ship, aggsel) override it to merge same-tuple annotations with a
  single disjoin chain per key and emit one consolidated update per key
  instead of one per input tuple;
* can be told that a set of *base tuples* has been deleted
  (``purge_base``), which is how broadcast deletions reach provenance state
  (Section 4's "zero out the variable everywhere" step) — the key list is
  processed in one restriction pass, so a coalesced purge batch costs one
  traversal per stored annotation rather than one per deleted tuple;
* reports the size of the state it maintains (``state_bytes``) — the
  "state within operators" metric of Section 7.

The batch contract: ``process_batch(batch)`` must leave the operator in the
same state as processing the batch update-at-a-time, and the per-(type,
tuple) *disjunction* of its outputs must equal the disjunction of the
update-at-a-time outputs.  (Individual output updates may be consolidated —
that is the point — but nothing downstream can distinguish the two because
every consumer disjoin-accumulates and conjunction distributes over
disjunction.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Sequence

from repro.data.update import Update
from repro.provenance.tracker import ProvenanceStore


@dataclass
class OperatorStats:
    """Counters every operator keeps about its own activity."""

    updates_processed: int = 0
    updates_emitted: int = 0
    insertions_seen: int = 0
    deletions_seen: int = 0
    suppressed: int = 0
    batches_processed: int = 0

    def record_input(self, update: Update) -> None:
        """Count one consumed update."""
        self.updates_processed += 1
        if update.is_insert:
            self.insertions_seen += 1
        else:
            self.deletions_seen += 1

    def record_outputs(self, outputs: Sequence[Update]) -> None:
        """Count emitted updates."""
        self.updates_emitted += len(outputs)


class Operator(abc.ABC):
    """Base class for streaming operators."""

    def __init__(self, name: str, store: ProvenanceStore) -> None:
        self.name = name
        self.store = store
        self.stats = OperatorStats()

    @abc.abstractmethod
    def process(self, update: Update) -> List[Update]:
        """Consume one update and return the updates to emit downstream."""

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Consume a whole delta batch and return the updates to emit.

        The default loops over :meth:`process`; batch-aware operators
        override it to amortise annotation work across the batch.  State and
        consolidated outputs are identical either way (see the module
        docstring for the exact contract).
        """
        outputs: List[Update] = []
        for update in updates:
            outputs.extend(self.process(update))
        self.stats.batches_processed += 1
        return outputs

    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        """React to a broadcast deletion of base tuples.

        The default implementation does nothing; provenance-holding operators
        override it to zero out the deleted variables in their state and emit
        any resulting updates (for example MinShip releasing buffered
        alternative derivations).
        """
        return []

    def flush(self) -> List[Update]:
        """Emit any buffered state (end-of-stream / batch boundary)."""
        return []

    @abc.abstractmethod
    def state_bytes(self) -> int:
        """Approximate bytes of operator-held state (Section 7 metric)."""

    def _record(self, update: Update, outputs: List[Update]) -> List[Update]:
        """Bookkeeping helper used by subclasses before returning outputs."""
        self.stats.record_input(update)
        self.stats.record_outputs(outputs)
        if not outputs:
            self.stats.suppressed += 1
        return outputs

    def _record_batch(self, updates: Sequence[Update], outputs: List[Update]) -> List[Update]:
        """Bookkeeping helper for batch entry points (bulk counter updates)."""
        stats = self.stats
        total = len(updates)
        insertions = 0
        for update in updates:
            if update.is_insert:
                insertions += 1
        stats.updates_processed += total
        stats.insertions_seen += insertions
        stats.deletions_seen += total - insertions
        stats.updates_emitted += len(outputs)
        if total and not outputs:
            stats.suppressed += total
        stats.batches_processed += 1
        return outputs

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def annotation_state_bytes(store: ProvenanceStore, annotations: Iterable) -> int:
    """Total encoded size of a collection of annotations."""
    return sum(store.size_bytes(annotation) for annotation in annotations)
