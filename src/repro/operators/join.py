"""The provenance-aware pipelined (symmetric) hash join — Algorithm 2.

Each side of the join keeps two hash tables: one from join-key to tuples
(``hR`` / ``hS``) and one from tuple to its absorbed provenance (``pR`` /
``pS``).  Processing an update on one side probes the other side and emits
joined results whose provenance is the conjunction ``u.pv AND pv(other)``;
deletions either carry provenance (provenance strategies) or cascade in set
semantics (DRed).

The combiner that builds the output tuple is pluggable (``combine``) so the
same operator implements the recursive rules of all three use cases:

* ``reachable(x, y) :- link(x, z), reachable(z, y)``
* ``path(x, y, p, c, l) :- link(x, z, c0), path(z, y, p1, c1, l1), ...``
* ``activeRegion(r, y) :- proximity(x, y), activeRegion(r, x), ...``

``combine`` may return ``None`` to reject a pairing (for example to cut off
cyclic paths or enforce a hop bound), which plays the role of the rule's extra
selection predicates.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.data.batch import group_by_tuple, split_runs
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.data.window import SlidingWindow
from repro.operators.base import Operator, annotation_state_bytes
from repro.provenance.tracker import ProvenanceStore

#: Builds the joined output tuple from (edge-side tuple, recursive-side tuple);
#: returns None when the pairing is rejected.
Combiner = Callable[[Tuple, Tuple], Optional[Tuple]]


_TUPLE_ORDER = attrgetter("key")

_NO_MATCHES: PyTuple[Tuple, ...] = ()


class _JoinSide:
    """State for one input of the symmetric hash join.

    Each ``h`` bucket is kept *sorted* by the tuples' identity key, so probes
    iterate matches in deterministic order with no per-probe sort.
    """

    __slots__ = ("key_fn", "by_key", "provenance", "window")

    def __init__(self, key_fn: Callable[[Tuple], Any], window: Optional[SlidingWindow]) -> None:
        self.key_fn = key_fn
        #: ``h``: join-key -> list of tuples with that key, sorted by identity.
        self.by_key: Dict[Any, List[Tuple]] = {}
        #: ``p``: tuple -> provenance annotation.
        self.provenance: Dict[Tuple, object] = {}
        self.window = window

    def add(self, tuple_: Tuple) -> None:
        key = self.key_fn(tuple_)
        bucket = self.by_key.get(key)
        if bucket is None:
            self.by_key[key] = [tuple_]
        else:
            insort(bucket, tuple_, key=_TUPLE_ORDER)

    def remove(self, tuple_: Tuple) -> None:
        key = self.key_fn(tuple_)
        bucket = self.by_key.get(key)
        if bucket is not None:
            try:
                bucket.remove(tuple_)
            except ValueError:
                pass
            if not bucket:
                del self.by_key[key]

    def matches(self, key: Any) -> Sequence[Tuple]:
        """Tuples stored under ``key``, sorted by identity key."""
        return self.by_key.get(key, _NO_MATCHES)

    def state_bytes(self, store: ProvenanceStore) -> int:
        total = sum(t.size_bytes() for t in self.provenance)
        total += annotation_state_bytes(store, self.provenance.values())
        if self.window is not None:
            total += self.window.state_bytes()
        return total


class PipelinedHashJoin(Operator):
    """Symmetric hash join over two update streams ("left" and "right")."""

    LEFT = "left"
    RIGHT = "right"

    def __init__(
        self,
        name: str,
        store: ProvenanceStore,
        left_key: Callable[[Tuple], Any],
        right_key: Callable[[Tuple], Any],
        combine: Combiner,
        left_window: Optional[SlidingWindow] = None,
        right_window: Optional[SlidingWindow] = None,
    ) -> None:
        super().__init__(name, store)
        self._left = _JoinSide(left_key, left_window)
        self._right = _JoinSide(right_key, right_window)
        self._combine = combine

    # -- public entry points ----------------------------------------------------
    def process(self, update: Update) -> List[Update]:
        """Updates default to the left input; use process_left/right explicitly."""
        return self.process_left(update)

    def process_left(self, update: Update) -> List[Update]:
        """Consume an update on the left (edge) input."""
        outputs = self._process_side(update, self._left, self._right, left_is_update=True)
        return self._record(update, outputs)

    def process_right(self, update: Update) -> List[Update]:
        """Consume an update on the right (recursive) input."""
        outputs = self._process_side(update, self._right, self._left, left_is_update=False)
        return self._record(update, outputs)

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Batches default to the left input, mirroring :meth:`process`."""
        return self.process_left_batch(updates)

    def process_left_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Consume a delta batch on the left (edge) input."""
        outputs = self._process_side_batch(updates, self._left, self._right, left_is_update=True)
        return self._record_batch(updates, outputs)

    def process_right_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Consume a delta batch on the right (recursive) input."""
        outputs = self._process_side_batch(updates, self._right, self._left, left_is_update=False)
        return self._record_batch(updates, outputs)

    def _process_side_batch(
        self,
        updates: Sequence[Update],
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        """Batch-wise HalfPipeIns/HalfPipeDel: one probe per changed key.

        Same-tuple updates within a type run merge their contributing
        annotations and probe the opposite side once with the disjunction,
        so a key that would have probed (and conjoined against every match)
        k times probes exactly once.  Updates of distinct tuples within a run
        never interact — each only mutates its own hash-table entry and reads
        the *other* side — so grouping is order-safe; the INS/DEL run
        boundaries, which do carry meaning, are preserved.

        Windowed sides fall back to update-at-a-time processing: window
        expirations are driven per arrival timestamp and must interleave with
        the updates exactly as they would have tuple-at-a-time.
        """
        if mine.window is not None:
            outputs: List[Update] = []
            for update in updates:
                outputs.extend(self._process_side(update, mine, other, left_is_update))
            return outputs
        outputs = []
        for is_insert, run in split_runs(updates):
            for tuple_, items in group_by_tuple(run).items():
                if is_insert:
                    outputs.extend(
                        self._ins_group(tuple_, items, mine, other, left_is_update)
                    )
                else:
                    outputs.extend(
                        self._del_group(tuple_, items, mine, other, left_is_update)
                    )
        return outputs

    def _ins_group(
        self,
        tuple_: Tuple,
        items: List[Update],
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        """Merge a same-tuple insertion group into ``h``/``p``, probe once.

        Each annotation is disjoined into the stored one with the same
        per-update absorption check as the sequential path (so the state —
        and which annotations count as *contributing* — is bit-identical);
        the probe then runs once with the disjunction of the contributing
        annotations, whose conjunction with each match equals the
        disjunction of the sequential per-update probe outputs.
        """
        contributing: List[object] = []
        existing = mine.provenance.get(tuple_)
        for item in items:
            annotation = item.provenance if item.provenance is not None else self.store.one()
            if existing is None:
                existing = annotation
                contributing.append(annotation)
            else:
                merged = self.store.disjoin(existing, annotation)
                if not self.store.equals(merged, existing):
                    contributing.append(annotation)
                    existing = merged
        was_present = tuple_ in mine.provenance
        mine.provenance[tuple_] = existing
        if not was_present:
            mine.add(tuple_)
        if not contributing:
            return []
        delta = self.store.disjoin_many(contributing)
        return self._probe_key(
            tuple_, UpdateType.INS, delta, items[-1].timestamp, mine, other, left_is_update
        )

    def _del_group(
        self,
        tuple_: Tuple,
        items: List[Update],
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        """Apply a same-tuple deletion group update-at-a-time.

        Deletion groups are almost always singletons, and a deletion can
        remove the stored entry mid-group, changing what its siblings would
        do — so the sequential semantics are kept verbatim.
        """
        outputs: List[Update] = []
        for item in items:
            outputs.extend(self._half_pipe_del(item, mine, other, left_is_update))
        return outputs

    # -- core HalfPipeIns / HalfPipeDel logic ------------------------------------------
    def _process_side(
        self,
        update: Update,
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        outputs: List[Update] = []
        if update.is_insert:
            outputs.extend(self._half_pipe_ins(update, mine, other, left_is_update))
        else:
            outputs.extend(self._half_pipe_del(update, mine, other, left_is_update))
        outputs.extend(self._apply_window(update, mine, other, left_is_update))
        return outputs

    def _half_pipe_ins(
        self, update: Update, mine: _JoinSide, other: _JoinSide, left_is_update: bool
    ) -> List[Update]:
        annotation = update.provenance if update.provenance is not None else self.store.one()
        existing = mine.provenance.get(update.tuple)
        if existing is None:
            mine.provenance[update.tuple] = annotation
            mine.add(update.tuple)
            changed = True
            delta = annotation
        else:
            merged = self.store.disjoin(existing, annotation)
            changed = not self.store.equals(merged, existing)
            mine.provenance[update.tuple] = merged
            delta = annotation
        if not changed:
            return []
        return self._probe(update, UpdateType.INS, delta, mine, other, left_is_update)

    def _half_pipe_del(
        self, update: Update, mine: _JoinSide, other: _JoinSide, left_is_update: bool
    ) -> List[Update]:
        existing = mine.provenance.get(update.tuple)
        if existing is None:
            return []
        if self.store.supports_deletion and update.provenance is not None:
            remaining = self.store.conjoin(
                existing, self.store.difference(self.store.one(), update.provenance)
            )
            changed = not self.store.equals(remaining, existing)
            if self.store.is_zero(remaining):
                del mine.provenance[update.tuple]
                mine.remove(update.tuple)
            else:
                mine.provenance[update.tuple] = remaining
            delta = update.provenance
        else:
            # Set semantics: remove the tuple outright and cascade the deletion.
            del mine.provenance[update.tuple]
            mine.remove(update.tuple)
            changed = True
            delta = self.store.one()
        if not changed:
            return []
        return self._probe(update, UpdateType.DEL, delta, mine, other, left_is_update)

    def _probe(
        self,
        update: Update,
        out_type: UpdateType,
        delta: object,
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        return self._probe_key(
            update.tuple, out_type, delta, update.timestamp, mine, other, left_is_update
        )

    def _probe_key(
        self,
        tuple_: Tuple,
        out_type: UpdateType,
        delta: object,
        timestamp: float,
        mine: _JoinSide,
        other: _JoinSide,
        left_is_update: bool,
    ) -> List[Update]:
        outputs: List[Update] = []
        key = mine.key_fn(tuple_)
        for match in other.matches(key):
            if left_is_update:
                joined = self._combine(tuple_, match)
            else:
                joined = self._combine(match, tuple_)
            if joined is None:
                continue
            other_annotation = other.provenance.get(match, self.store.one())
            annotation = self.store.conjoin(delta, other_annotation)
            if self.store.is_zero(annotation):
                continue
            outputs.append(
                Update(out_type, joined, provenance=annotation, timestamp=timestamp)
            )
        return outputs

    # -- windows (tuple expirations, Section 4.3.3) -----------------------------------------
    def _apply_window(
        self, update: Update, mine: _JoinSide, other: _JoinSide, left_is_update: bool
    ) -> List[Update]:
        if mine.window is None:
            return []
        outputs: List[Update] = []
        for expiration in mine.window.observe(update):
            expired = Update(
                UpdateType.DEL,
                expiration.tuple,
                provenance=mine.provenance.get(expiration.tuple),
                timestamp=expiration.expired_at,
            )
            outputs.extend(self._half_pipe_del(expired, mine, other, left_is_update))
        return outputs

    # -- broadcast deletions --------------------------------------------------------------------
    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        """Zero out deleted base tuples in both sides' provenance tables."""
        if not self.store.supports_deletion:
            return []
        restrict = self.store.base_restrictor(base_keys)
        for side in (self._left, self._right):
            dead: List[Tuple] = []
            for tuple_, annotation in side.provenance.items():
                restricted = restrict(annotation)
                if self.store.equals(restricted, annotation):
                    continue
                if self.store.is_zero(restricted):
                    dead.append(tuple_)
                else:
                    side.provenance[tuple_] = restricted
            for tuple_ in dead:
                del side.provenance[tuple_]
                side.remove(tuple_)
        return []

    # -- DRed support ------------------------------------------------------------------------------
    def clear_left(self) -> None:
        """Drop the left-side (edge) state.

        Used by the DRed coordinator before its re-derivation phase: the live
        edges are re-scanned and re-shipped, so they must probe the surviving
        view tuples again rather than be suppressed as duplicates.
        """
        self._left.by_key.clear()
        self._left.provenance.clear()

    # -- elasticity (live partition migration support) ----------------------------------------------
    def extract_side(self, side: str, should_move) -> Dict[Tuple, object]:
        """Remove and return one side's entries selected by ``should_move``.

        ``side`` is :attr:`LEFT` or :attr:`RIGHT`.  The key index is kept
        consistent; the new owner re-indexes on :meth:`absorb_side`.  Used by
        :mod:`repro.placement` when a join key changes owner.
        """
        state = self._left if side == self.LEFT else self._right
        moved: Dict[Tuple, object] = {}
        for tuple_ in [t for t in state.provenance if should_move(t)]:
            moved[tuple_] = state.provenance.pop(tuple_)
            state.remove(tuple_)
        return moved

    def absorb_side(self, side: str, entries: Dict[Tuple, object]) -> None:
        """Merge migrated entries into one side (disjoin on overlap), re-indexing."""
        state = self._left if side == self.LEFT else self._right
        for tuple_, annotation in entries.items():
            existing = state.provenance.get(tuple_)
            if existing is None:
                state.provenance[tuple_] = annotation
                state.add(tuple_)
            else:
                state.provenance[tuple_] = self.store.disjoin(existing, annotation)

    # -- durability (checkpoint / recovery support) -------------------------------------------------
    def export_state(self, encode) -> Dict[str, object]:
        """Capture both sides' provenance tables (``hR``/``hS`` are rebuilt on import).

        Windowed joins buffer expiration schedules keyed on virtual time;
        snapshotting them is not supported (no current plan uses windows).
        """
        if self._left.window is not None or self._right.window is not None:
            raise NotImplementedError("snapshot of windowed join state is not supported")
        return {
            "left": {t: encode(pv) for t, pv in self._left.provenance.items()},
            "right": {t: encode(pv) for t, pv in self._right.provenance.items()},
        }

    def import_state(self, state: Dict[str, object], decode) -> None:
        """Restore both sides; the key-index tables are rebuilt from the tuples."""
        for side, captured in ((self._left, state["left"]), (self._right, state["right"])):
            side.provenance = {t: decode(pv) for t, pv in captured.items()}
            side.by_key.clear()
            for tuple_ in side.provenance:
                side.add(tuple_)

    # -- introspection -----------------------------------------------------------------------------
    def left_tuples(self) -> List[Tuple]:
        """Tuples currently stored on the left side."""
        return list(self._left.provenance)

    def right_tuples(self) -> List[Tuple]:
        """Tuples currently stored on the right side."""
        return list(self._right.provenance)

    def state_bytes(self) -> int:
        """Both hash tables plus their provenance annotations."""
        return self._left.state_bytes(self.store) + self._right.state_bytes(self.store)
