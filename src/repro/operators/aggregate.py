"""Windowed group-by aggregation (MIN / MAX / COUNT / SUM / AVG).

The final views of the paper's example queries are aggregations over the
recursive view: ``minCost`` and ``minHops`` over ``path``, ``regionSizes`` and
``largestRegion`` over ``activeRegion``.  :class:`GroupByAggregate` maintains
those aggregates incrementally over an update stream, supporting deletions via
per-group multisets (so a deleted MIN can be replaced by the next-best value,
mirroring Algorithm 4's recomputation step).  AVERAGE is derived from SUM and
COUNT, as the paper notes.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.data.tuples import Schema, Tuple
from repro.data.update import Update, UpdateType
from repro.operators.base import Operator
from repro.provenance.tracker import NullProvenanceStore, ProvenanceStore


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass
class _GroupState:
    """Multiset of contributing values for one group."""

    values: Counter

    def add(self, value: Any) -> None:
        self.values[value] += 1

    def remove(self, value: Any) -> bool:
        if self.values[value] <= 0:
            return False
        self.values[value] -= 1
        if self.values[value] == 0:
            del self.values[value]
        return True

    @property
    def count(self) -> int:
        return sum(self.values.values())

    def aggregate(self, function: AggregateFunction) -> Optional[Any]:
        if self.count == 0:
            return None
        if function is AggregateFunction.MIN:
            return min(self.values)
        if function is AggregateFunction.MAX:
            return max(self.values)
        if function is AggregateFunction.COUNT:
            return self.count
        total = sum(value * multiplicity for value, multiplicity in self.values.items())
        if function is AggregateFunction.SUM:
            return total
        return total / self.count  # AVG


class GroupByAggregate(Operator):
    """Incrementally maintained ``SELECT group, f(value) ... GROUP BY group``.

    ``process`` consumes updates of the input relation and emits updates of
    the *output* relation (schema ``output_schema``): whenever a group's
    aggregate value changes, the old output tuple is deleted and the new one
    inserted, which is exactly how downstream views (for example
    ``cheapestPath`` joining ``path`` with ``minCost``) stay consistent.
    """

    def __init__(
        self,
        name: str,
        output_schema: Schema,
        group_attributes: Sequence[str],
        function: AggregateFunction,
        value_attribute: Optional[str] = None,
        store: Optional[ProvenanceStore] = None,
    ) -> None:
        super().__init__(name, store or NullProvenanceStore())
        if function is not AggregateFunction.COUNT and value_attribute is None:
            raise ValueError(f"{function.value} requires a value_attribute")
        if len(output_schema.attributes) != len(group_attributes) + 1:
            raise ValueError(
                "output schema must have exactly the group attributes plus one aggregate column"
            )
        self.output_schema = output_schema
        self.group_attributes = tuple(group_attributes)
        self.function = function
        self.value_attribute = value_attribute
        self._groups: Dict[PyTuple[Any, ...], _GroupState] = {}
        self._current_output: Dict[PyTuple[Any, ...], Tuple] = {}

    # -- helpers ---------------------------------------------------------------
    def _group_key(self, tuple_: Tuple) -> PyTuple[Any, ...]:
        return tuple(tuple_[attribute] for attribute in self.group_attributes)

    def _value(self, tuple_: Tuple) -> Any:
        if self.function is AggregateFunction.COUNT and self.value_attribute is None:
            return 1
        return tuple_[self.value_attribute]

    def _output_tuple(self, group_key: PyTuple[Any, ...], value: Any) -> Tuple:
        return self.output_schema.tuple(*(group_key + (value,)))

    # -- processing -----------------------------------------------------------------
    def process(self, update: Update) -> List[Update]:
        group_key = self._group_key(update.tuple)
        state = self._groups.setdefault(group_key, _GroupState(values=Counter()))
        value = self._value(update.tuple)
        if update.is_insert:
            state.add(value)
        else:
            if not state.remove(value):
                return self._record(update, [])
        outputs = self._emit_group_change(group_key, state)
        return self._record(update, outputs)

    def _emit_group_change(self, group_key: PyTuple[Any, ...], state: _GroupState) -> List[Update]:
        new_value = state.aggregate(self.function)
        old_output = self._current_output.get(group_key)
        outputs: List[Update] = []
        if new_value is None:
            if old_output is not None:
                outputs.append(Update(UpdateType.DEL, old_output))
                del self._current_output[group_key]
                del self._groups[group_key]
            return outputs
        new_output = self._output_tuple(group_key, new_value)
        if old_output == new_output:
            return outputs
        if old_output is not None:
            outputs.append(Update(UpdateType.DEL, old_output))
        outputs.append(Update(UpdateType.INS, new_output))
        self._current_output[group_key] = new_output
        return outputs

    # -- results ------------------------------------------------------------------------
    def results(self) -> List[Tuple]:
        """Current aggregate output tuples (one per non-empty group)."""
        return sorted(self._current_output.values(), key=lambda t: tuple(map(str, t.values)))

    def value_for(self, *group_values: Any) -> Optional[Any]:
        """Current aggregate value for one group (None when the group is empty)."""
        output = self._current_output.get(tuple(group_values))
        if output is None:
            return None
        return output.values[-1]

    def state_bytes(self) -> int:
        """Group multisets plus the currently materialised outputs."""
        total = 0
        for state in self._groups.values():
            total += 16 * len(state.values)
        total += sum(t.size_bytes() for t in self._current_output.values())
        return total
