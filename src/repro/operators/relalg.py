"""Relational-algebra building blocks over update streams.

Selection, projection, union and duplicate elimination with provenance
composition following Figure 6 of the paper:

* selection keeps the annotation unchanged;
* projection ORs the annotations of all input tuples collapsing onto the same
  output tuple;
* union ORs the annotations coming from either input;
* duplicate elimination is projection onto all attributes.

These are used by the centralized Datalog substrate and by the non-recursive
"final view" stages of the example queries.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from repro.data.tuples import Schema, Tuple
from repro.data.update import Update, UpdateType
from repro.operators.base import Operator, annotation_state_bytes
from repro.provenance.tracker import ProvenanceStore


class Selection(Operator):
    """``sigma_theta``: forwards updates whose tuples satisfy the predicate."""

    def __init__(self, name: str, store: ProvenanceStore, predicate: Callable[[Tuple], bool]) -> None:
        super().__init__(name, store)
        self.predicate = predicate

    def process(self, update: Update) -> List[Update]:
        outputs = [update] if self.predicate(update.tuple) else []
        return self._record(update, outputs)

    def state_bytes(self) -> int:
        return 0


class _ProvenanceMerging(Operator):
    """Shared machinery for operators that OR together alternative derivations."""

    def __init__(self, name: str, store: ProvenanceStore) -> None:
        super().__init__(name, store)
        self.provenance: Dict[Tuple, object] = {}

    def _merge_insert(self, output_tuple: Tuple, update: Update) -> List[Update]:
        annotation = update.provenance if update.provenance is not None else self.store.one()
        existing = self.provenance.get(output_tuple)
        if existing is None:
            self.provenance[output_tuple] = annotation
            return [Update(UpdateType.INS, output_tuple, provenance=annotation,
                           timestamp=update.timestamp)]
        merged = self.store.disjoin(existing, annotation)
        if self.store.equals(merged, existing):
            return []
        self.provenance[output_tuple] = merged
        delta = self.store.difference(merged, existing)
        return [Update(UpdateType.INS, output_tuple, provenance=delta,
                       timestamp=update.timestamp)]

    def _merge_delete(self, output_tuple: Tuple, update: Update) -> List[Update]:
        existing = self.provenance.get(output_tuple)
        if existing is None:
            return []
        if self.store.supports_deletion and update.provenance is not None:
            remaining = self.store.conjoin(
                existing, self.store.difference(self.store.one(), update.provenance)
            )
            if self.store.equals(remaining, existing):
                return []
            if self.store.is_zero(remaining):
                del self.provenance[output_tuple]
                return [Update(UpdateType.DEL, output_tuple, provenance=update.provenance,
                               timestamp=update.timestamp)]
            self.provenance[output_tuple] = remaining
            return []
        del self.provenance[output_tuple]
        return [Update(UpdateType.DEL, output_tuple, timestamp=update.timestamp)]

    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        if not self.store.supports_deletion:
            return []
        removed = list(base_keys)
        outputs: List[Update] = []
        dead: List[Tuple] = []
        for tuple_, annotation in self.provenance.items():
            restricted = self.store.remove_base(annotation, removed)
            if self.store.equals(restricted, annotation):
                continue
            if self.store.is_zero(restricted):
                dead.append(tuple_)
            else:
                self.provenance[tuple_] = restricted
        for tuple_ in dead:
            del self.provenance[tuple_]
            outputs.append(Update(UpdateType.DEL, tuple_, provenance=self.store.zero()))
        return outputs

    def current_tuples(self) -> List[Tuple]:
        """Output tuples currently derivable."""
        return list(self.provenance)

    def state_bytes(self) -> int:
        total = sum(t.size_bytes() for t in self.provenance)
        total += annotation_state_bytes(self.store, self.provenance.values())
        return total


class Projection(_ProvenanceMerging):
    """``Pi_A``: projects tuples onto a subset of attributes, ORing provenance."""

    def __init__(
        self,
        name: str,
        store: ProvenanceStore,
        output_schema: Schema,
        attributes: Sequence[str],
    ) -> None:
        super().__init__(name, store)
        self.output_schema = output_schema
        self.attributes = tuple(attributes)

    def process(self, update: Update) -> List[Update]:
        projected = update.tuple.project(self.output_schema, self.attributes)
        if update.is_insert:
            outputs = self._merge_insert(projected, update)
        else:
            outputs = self._merge_delete(projected, update)
        return self._record(update, outputs)


class UnionOperator(_ProvenanceMerging):
    """Set union of several input streams producing tuples of one schema."""

    def process(self, update: Update) -> List[Update]:
        if update.is_insert:
            outputs = self._merge_insert(update.tuple, update)
        else:
            outputs = self._merge_delete(update.tuple, update)
        return self._record(update, outputs)


class DuplicateElimination(UnionOperator):
    """Set-semantics duplicate elimination (union with a single input)."""
