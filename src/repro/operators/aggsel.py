"""Aggregate selection over update streams (Algorithm 4, Section 6).

Aggregate selection prunes tuples that cannot contribute to a downstream
aggregate: while computing ``minCost(src, dst, min(cost))`` there is no point
shipping (or recursing on) a ``path`` tuple whose cost is already worse than
the best known cost for its ``(src, dst)`` group.  The paper extends the
classical technique to streams of insertions *and deletions* and to multiple
simultaneous aggregates (cost and hop count at once — "Multi AggSel" in
Figure 14), and embeds the module inside stateful operators (Fixpoint,
MinShip).

This module keeps, per group key:

* ``H`` — the buffered tuples seen for that group (needed to recompute the
  best value when the current best is deleted);
* ``P`` — each tuple's provenance;
* ``B`` — the current best tuple per aggregate function.

``process`` returns the (possibly empty) list of updates that should continue
through the plan; everything else is suppressed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.data.batch import group_by_tuple, split_runs
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.provenance.tracker import ProvenanceStore


class AggregateFunctionKind(enum.Enum):
    """Which extremum the selection keeps per group."""

    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to prune on: group-by attributes, value attribute, direction."""

    group_attributes: PyTuple[str, ...]
    value_attribute: str
    kind: AggregateFunctionKind = AggregateFunctionKind.MIN

    def group_key(self, tuple_: Tuple) -> PyTuple[Any, ...]:
        """The tuple's group key under this spec."""
        return tuple(tuple_[attribute] for attribute in self.group_attributes)

    def value(self, tuple_: Tuple) -> Any:
        """The aggregated value of the tuple."""
        return tuple_[self.value_attribute]

    def better(self, candidate: Tuple, incumbent: Tuple) -> bool:
        """True when ``candidate`` strictly beats ``incumbent``."""
        if self.kind is AggregateFunctionKind.MIN:
            return self.value(candidate) < self.value(incumbent)
        return self.value(candidate) > self.value(incumbent)

    def not_worse(self, candidate: Tuple, incumbent: Tuple) -> bool:
        """True when ``candidate`` ties or beats ``incumbent``."""
        if self.kind is AggregateFunctionKind.MIN:
            return self.value(candidate) <= self.value(incumbent)
        return self.value(candidate) >= self.value(incumbent)


class AggregateSelection:
    """The AggSel module of Algorithm 4 (embeddable in Fixpoint and MinShip)."""

    def __init__(self, store: ProvenanceStore, specs: Sequence[AggregateSpec]) -> None:
        if not specs:
            raise ValueError("aggregate selection requires at least one AggregateSpec")
        group_attrs = {spec.group_attributes for spec in specs}
        if len(group_attrs) != 1:
            raise ValueError("all AggregateSpecs must share the same group-by attributes")
        self.store = store
        self.specs = tuple(specs)
        self.group_attributes = self.specs[0].group_attributes
        #: ``H``: group key -> set of buffered tuples.
        self.groups: Dict[PyTuple[Any, ...], set] = {}
        #: ``P``: tuple -> provenance annotation.
        self.provenance: Dict[Tuple, object] = {}
        #: ``B``: group key -> {spec index -> best tuple}.
        self.best: Dict[PyTuple[Any, ...], Dict[int, Tuple]] = {}
        self.suppressed_count = 0

    # -- helpers ------------------------------------------------------------------
    def _group_key(self, tuple_: Tuple) -> PyTuple[Any, ...]:
        return tuple(tuple_[attribute] for attribute in self.group_attributes)

    def best_for(self, group_key: PyTuple[Any, ...], spec_index: int = 0) -> Optional[Tuple]:
        """Current best tuple of a group under the given aggregate (None if empty)."""
        return self.best.get(group_key, {}).get(spec_index)

    # -- stream processing -----------------------------------------------------------
    def process(self, update: Update) -> List[Update]:
        """Filter one update; return the updates that survive pruning."""
        if update.is_insert:
            return self._process_insert(update)
        return self._process_delete(update)

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Filter a whole delta batch, merging same-tuple insertions first.

        Same-tuple insertions within a type run collapse to one update whose
        annotation is the disjoin chain of the group — the provenance table
        ends up identical and the best-tuple logic sees each tuple once.
        Deletions and cross-tuple ordering keep their sequential semantics
        (the best-displacement bookkeeping is order-sensitive between
        *different* tuples of a group).
        """
        outputs: List[Update] = []
        for is_insert, run in split_runs(updates):
            if not is_insert:
                for update in run:
                    outputs.extend(self._process_delete(update))
                continue
            for tuple_, items in group_by_tuple(run).items():
                if len(items) == 1:
                    outputs.extend(self._process_insert(items[0]))
                    continue
                one = self.store.one
                group_or = self.store.disjoin_many(
                    [
                        item.provenance if item.provenance is not None else one()
                        for item in items
                    ]
                )
                outputs.extend(self._process_insert(items[-1].with_provenance(group_or)))
        return outputs

    def _process_insert(self, update: Update) -> List[Update]:
        tuple_ = update.tuple
        annotation = update.provenance if update.provenance is not None else self.store.one()
        group_key = self._group_key(tuple_)
        existing = self.provenance.get(tuple_)
        if existing is None:
            self.provenance[tuple_] = annotation
            self.groups.setdefault(group_key, set()).add(tuple_)
            changed_pv = True
        else:
            merged = self.store.disjoin(existing, annotation)
            changed_pv = not self.store.equals(merged, existing)
            self.provenance[tuple_] = merged
        if not changed_pv:
            self.suppressed_count += 1
            return []

        outputs: List[Update] = []
        changed = False
        bests = self.best.setdefault(group_key, {})
        for index, spec in enumerate(self.specs):
            incumbent = bests.get(index)
            if incumbent is None:
                bests[index] = tuple_
                changed = True
            elif spec.better(tuple_, incumbent):
                outputs.append(
                    Update(
                        UpdateType.DEL,
                        incumbent,
                        provenance=self.provenance.get(incumbent, self.store.one()),
                    )
                )
                bests[index] = tuple_
                changed = True
            elif incumbent == tuple_:
                # A new derivation of the current best still matters downstream.
                changed = True
        if changed:
            outputs.append(update)
        else:
            self.suppressed_count += 1
        return outputs

    def _process_delete(self, update: Update) -> List[Update]:
        tuple_ = update.tuple
        if tuple_ not in self.provenance:
            # Deletions before insertions are not allowed by the model; ignore.
            self.suppressed_count += 1
            return []
        group_key = self._group_key(tuple_)
        if update.provenance is not None and self.store.supports_deletion:
            existing = self.provenance[tuple_]
            remaining = self.store.conjoin(
                existing, self.store.difference(self.store.one(), update.provenance)
            )
            changed_pv = not self.store.equals(remaining, existing)
            dead = self.store.is_zero(remaining)
        else:
            changed_pv = True
            dead = True
            remaining = self.store.zero()
        if not changed_pv:
            self.suppressed_count += 1
            return []
        if dead:
            del self.provenance[tuple_]
            self.groups.get(group_key, set()).discard(tuple_)
        else:
            self.provenance[tuple_] = remaining
        return self._handle_best_displacement(update, group_key, dead)

    def _handle_best_displacement(
        self, update: Update, group_key: PyTuple[Any, ...], dead: bool
    ) -> List[Update]:
        outputs: List[Update] = []
        changed = False
        bests = self.best.setdefault(group_key, {})
        for index, spec in enumerate(self.specs):
            if bests.get(index) != update.tuple or not dead:
                continue
            changed = True
            replacement = self._recompute_best(group_key, spec)
            if replacement is None:
                bests.pop(index, None)
            else:
                bests[index] = replacement
                outputs.append(
                    Update(
                        UpdateType.INS,
                        replacement,
                        provenance=self.provenance.get(replacement, self.store.one()),
                    )
                )
        if changed:
            outputs.append(update)
        else:
            self.suppressed_count += 1
        return outputs

    def _recompute_best(self, group_key: PyTuple[Any, ...], spec: AggregateSpec) -> Optional[Tuple]:
        candidates = self.groups.get(group_key, set())
        best: Optional[Tuple] = None
        for candidate in candidates:
            if best is None or spec.better(candidate, best):
                best = candidate
        return best

    # -- broadcast deletions -------------------------------------------------------------
    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        """Zero out deleted base tuples in the buffered provenance, emitting replacements."""
        if not self.store.supports_deletion:
            return []
        restrict = self.store.base_restrictor(base_keys)
        outputs: List[Update] = []
        dead: List[Tuple] = []
        for tuple_, annotation in self.provenance.items():
            restricted = restrict(annotation)
            if self.store.equals(restricted, annotation):
                continue
            if self.store.is_zero(restricted):
                dead.append(tuple_)
            else:
                self.provenance[tuple_] = restricted
        for tuple_ in dead:
            group_key = self._group_key(tuple_)
            del self.provenance[tuple_]
            self.groups.get(group_key, set()).discard(tuple_)
            outputs.extend(
                self._handle_best_displacement(
                    Update(UpdateType.DEL, tuple_, provenance=self.store.zero()),
                    group_key,
                    dead=True,
                )
            )
        return outputs

    # -- durability (checkpoint / recovery support) ----------------------------------
    def export_state(self, encode: Callable[[object], object]) -> Dict[str, object]:
        """Capture the H/P/B tables with annotations flattened through ``encode``."""
        return {
            "provenance": {t: encode(pv) for t, pv in self.provenance.items()},
            "groups": {key: set(members) for key, members in self.groups.items()},
            "best": {key: dict(bests) for key, bests in self.best.items()},
            "suppressed_count": self.suppressed_count,
        }

    def import_state(
        self, state: Dict[str, object], decode: Callable[[object], object]
    ) -> None:
        """Restore the tables captured by :meth:`export_state`."""
        self.provenance = {t: decode(pv) for t, pv in state["provenance"].items()}
        self.groups = {key: set(members) for key, members in state["groups"].items()}
        self.best = {key: dict(bests) for key, bests in state["best"].items()}
        self.suppressed_count = state["suppressed_count"]

    # -- metrics ------------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Buffered tuples, their provenance, and the per-group best table."""
        total = sum(t.size_bytes() for t in self.provenance)
        total += sum(self.store.size_bytes(pv) for pv in self.provenance.values())
        total += sum(
            best.size_bytes() for bests in self.best.values() for best in bests.values()
        )
        return total
