"""Ship and MinShip operators (Algorithm 3, Section 5).

A conventional Ship operator forwards every update it receives to a remote
node.  With provenance, that is wasteful: every *new derivation* of an
already-known tuple would cross the network even though the receiver usually
does not need it.  MinShip therefore:

* always ships the **first** derivation of a tuple immediately (the receiver
  needs to learn the tuple exists);
* **buffers** subsequent derivations, merging them into a single absorbed
  provenance expression (``Pins``);
* in **eager** mode, flushes the buffer whenever it reaches the batch size
  ``W`` (or on an explicit flush), so the receiver eventually holds the full
  provenance;
* in **lazy** mode, keeps alternate derivations local and only releases them
  when the derivation previously shipped for that tuple is invalidated by a
  deletion — the receiver then learns the surviving alternative instead of
  wrongly dropping the tuple.

The operator does not talk to sockets here; it returns the updates that must
be shipped and the engine runtime routes them to the destination node,
recording message sizes.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.data.batch import group_by_tuple, split_runs
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.operators.aggsel import AggregateSelection
from repro.operators.base import Operator, annotation_state_bytes
from repro.provenance.tracker import ProvenanceStore


class ShipMode(enum.Enum):
    """Propagation policy for buffered derivations."""

    EAGER = "eager"
    LAZY = "lazy"


class ShipOperator(Operator):
    """The conventional ship operator: forwards everything unchanged."""

    def __init__(self, name: str, store: ProvenanceStore) -> None:
        super().__init__(name, store)

    def process(self, update: Update) -> List[Update]:
        return self._record(update, [update])

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Forward the whole batch unchanged (one emission, no buffering)."""
        return self._record_batch(updates, list(updates))

    def export_state(self, encode) -> Dict[str, object]:
        """Plain Ship holds no state; snapshots are empty (but well-defined)."""
        return {}

    def import_state(self, state: Dict[str, object], decode) -> None:
        """Nothing to restore for the stateless ship."""

    def state_bytes(self) -> int:
        return 0


class MinShipOperator(Operator):
    """Provenance-buffering ship operator (Algorithm 3)."""

    def __init__(
        self,
        name: str,
        store: ProvenanceStore,
        mode: ShipMode = ShipMode.LAZY,
        batch_size: int = 50,
        aggregate_selection: Optional[AggregateSelection] = None,
    ) -> None:
        super().__init__(name, store)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.mode = mode
        self.batch_size = batch_size
        self.aggregate_selection = aggregate_selection
        #: ``Bsent``: tuple -> provenance already shipped to the consumer.
        self.sent: Dict[Tuple, object] = {}
        #: ``Pins``: tuple -> buffered (absorbed) provenance not yet shipped.
        self.pending_insertions: Dict[Tuple, object] = {}
        #: ``Pdel``: tuple -> buffered deletion provenance.
        self.pending_deletions: Dict[Tuple, object] = {}
        #: Memo: tuple -> ``Bsent[t] OR Pins[t]``, maintained on the insert
        #: path (where the absorption check computes exactly that value) so a
        #: flush can update ``Bsent`` without re-running the disjunction.
        #: Entries are dropped whenever either table changes any other way;
        #: a missing entry just means the flush recomputes.
        self._pending_merged: Dict[Tuple, object] = {}

    # -- stream processing --------------------------------------------------------
    def process(self, update: Update) -> List[Update]:
        pending = [update]
        if self.aggregate_selection is not None:
            pending = self.aggregate_selection.process(update)
        outputs: List[Update] = []
        for current in pending:
            outputs.extend(self._process_one(current))
        if self._buffered_count() >= self.batch_size:
            outputs.extend(self.flush())
        return self._record(update, outputs)

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Batch-wise Algorithm 3: merge same-tuple derivations before buffering.

        An insertion group for a tuple already in ``Bsent`` costs one disjoin
        chain plus one absorption check instead of two applies per update; a
        group for a brand-new tuple ships its first derivation immediately
        (the receiver must learn the tuple exists) and buffers the merged
        tail.  Deletions keep their sequential semantics.  The batch-size
        flush trigger fires at the same points as tuple-at-a-time processing
        because the buffered-key count only changes once per tuple group.
        """
        pending: Sequence[Update] = updates
        if self.aggregate_selection is not None:
            pending = self.aggregate_selection.process_batch(updates)
        outputs: List[Update] = []
        for is_insert, run in split_runs(pending):
            for tuple_, items in group_by_tuple(run).items():
                if is_insert and self.store.supports_deletion:
                    outputs.extend(self._insert_group(tuple_, items))
                else:
                    for item in items:
                        outputs.extend(self._process_one(item))
                if self._buffered_count() >= self.batch_size:
                    outputs.extend(self.flush())
        return self._record_batch(updates, outputs)

    def _insert_group(self, tuple_: Tuple, items: List[Update]) -> List[Update]:
        annotations = [
            item.provenance if item.provenance is not None else self.store.one()
            for item in items
        ]
        outputs: List[Update] = []
        previously_sent = self.sent.get(tuple_)
        if previously_sent is None:
            # First derivation of a brand-new tuple: ship it right away.
            first = annotations.pop(0)
            self.sent[tuple_] = first
            previously_sent = first
            outputs.append(items[0].with_provenance(first))
            if not annotations:
                return outputs
        group_or = self.store.disjoin_many(annotations)
        merged = self.store.disjoin(previously_sent, group_or)
        if self.store.equals(merged, previously_sent):
            # Fully absorbed by what the consumer already knows: suppress.
            return outputs
        self._buffer_insertion(tuple_, group_or, merged)
        return outputs

    def _buffer_insertion(self, tuple_: Tuple, annotation: object, merged: object) -> None:
        """Fold ``annotation`` into ``Pins[t]``, keeping the flush memo exact.

        ``merged`` is ``Bsent[t] OR annotation`` (the absorption check just
        computed it); the memo invariant ``_pending_merged[t] ==
        Bsent[t] OR Pins[t]`` is maintained so the eventual flush pays no
        further kernel work in the common case.
        """
        store = self.store
        buffered = self.pending_insertions.get(tuple_)
        if buffered is None:
            self.pending_insertions[tuple_] = annotation
            self._pending_merged[tuple_] = merged
            return
        self.pending_insertions[tuple_] = store.disjoin(buffered, annotation)
        memo = self._pending_merged.get(tuple_)
        if memo is not None:
            self._pending_merged[tuple_] = store.disjoin(memo, annotation)
        else:
            # The memo was invalidated (deletion/purge/import touched the
            # tables); re-establish it from the parts.
            self._pending_merged[tuple_] = store.disjoin(merged, buffered)

    def _process_one(self, update: Update) -> List[Update]:
        annotation = update.provenance if update.provenance is not None else self.store.one()
        previously_sent = self.sent.get(update.tuple)
        if previously_sent is None:
            # First time we see this tuple at all: ship right away (base case).
            if update.is_insert:
                self.sent[update.tuple] = annotation
                return [update.with_provenance(annotation)]
            # A deletion for a tuple we never shipped: nothing to suppress.
            return [update]
        if update.is_insert:
            merged = self.store.disjoin(previously_sent, annotation)
            if self.store.equals(merged, previously_sent):
                # Fully absorbed by what the consumer already knows: suppress.
                return []
            self._buffer_insertion(update.tuple, annotation, merged)
            return []  # will go out with the next batch flush
        # Deletion of a tuple we have shipped before.
        if self.store.supports_deletion and update.provenance is not None:
            return self._buffer_deletion(update)
        # Set semantics: just forward the deletion.
        self.sent.pop(update.tuple, None)
        self.pending_insertions.pop(update.tuple, None)
        self._pending_merged.pop(update.tuple, None)
        return [update]

    def _buffer_deletion(self, update: Update) -> List[Update]:
        annotation = update.provenance
        # Pins is about to change under the buffered tuples: the flush memo
        # no longer matches Bsent OR Pins, so drop it wholesale.
        self._pending_merged.clear()
        # Remove the deleted derivations from anything still buffered (Alg 3 lines 20-25).
        not_deleted = self.store.difference(self.store.one(), annotation)
        stale: List[Tuple] = []
        for tuple_, buffered in self.pending_insertions.items():
            remaining = self.store.conjoin(buffered, not_deleted)
            if self.store.is_zero(remaining):
                stale.append(tuple_)
            else:
                self.pending_insertions[tuple_] = remaining
        for tuple_ in stale:
            del self.pending_insertions[tuple_]
        existing = self.pending_deletions.get(update.tuple, self.store.zero())
        self.pending_deletions[update.tuple] = self.store.disjoin(existing, annotation)
        if self.mode is ShipMode.EAGER:
            return []
        return []

    # -- flush / batched shipping -----------------------------------------------------
    def _buffered_count(self) -> int:
        return len(self.pending_insertions) + len(self.pending_deletions)

    def flush(self) -> List[Update]:
        """Ship buffered state according to the mode (BatchShipEager / BatchShipLazy)."""
        if self.mode is ShipMode.EAGER:
            return self._flush_eager()
        return self._flush_lazy()

    def _flush_eager(self) -> List[Update]:
        outputs: List[Update] = []
        merged_pop = self._pending_merged.pop
        for tuple_, annotation in list(self.pending_insertions.items()):
            outputs.append(Update(UpdateType.INS, tuple_, provenance=annotation))
            merged = merged_pop(tuple_, None)
            if merged is None:
                merged = self.store.disjoin(
                    self.sent.get(tuple_, self.store.zero()), annotation
                )
            self.sent[tuple_] = merged
        self.pending_insertions.clear()
        self._pending_merged.clear()
        for tuple_, annotation in list(self.pending_deletions.items()):
            outputs.append(Update(UpdateType.DEL, tuple_, provenance=annotation))
        self.pending_deletions.clear()
        return outputs

    def _flush_lazy(self) -> List[Update]:
        outputs: List[Update] = []
        for tuple_, annotation in list(self.pending_deletions.items()):
            outputs.append(Update(UpdateType.DEL, tuple_, provenance=annotation))
            buffered = self.pending_insertions.pop(tuple_, None)
            merged = self._pending_merged.pop(tuple_, None)
            if buffered is not None and not self.store.is_zero(buffered):
                outputs.append(Update(UpdateType.INS, tuple_, provenance=buffered))
                if merged is None:
                    merged = self.store.disjoin(
                        self.sent.get(tuple_, self.store.zero()), buffered
                    )
                self.sent[tuple_] = merged
        self.pending_deletions.clear()
        return outputs

    # -- broadcast deletions --------------------------------------------------------------
    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        """React to deleted base tuples: release buffered alternate derivations.

        The consumer also receives the broadcast and zeroes the deleted
        variables in its own state; what it *cannot* know about are the
        alternative derivations this MinShip buffered and never shipped.  For
        every tuple whose already-shipped provenance was affected, ship the
        surviving buffered derivations so the consumer does not lose the tuple.
        """
        if not self.store.supports_deletion:
            return []
        removed = list(base_keys)
        restrict = self.store.base_restrictor(removed)
        outputs: List[Update] = []
        # Both tables are about to be restricted: the flush memo is stale.
        self._pending_merged.clear()
        # Restrict buffered insertions first.
        stale: List[Tuple] = []
        for tuple_, buffered in self.pending_insertions.items():
            restricted = restrict(buffered)
            if self.store.is_zero(restricted):
                stale.append(tuple_)
            else:
                self.pending_insertions[tuple_] = restricted
        for tuple_ in stale:
            del self.pending_insertions[tuple_]
        # For every affected shipped tuple, release surviving buffered derivations.
        for tuple_, shipped in list(self.sent.items()):
            restricted = restrict(shipped)
            if self.store.equals(restricted, shipped):
                continue
            self.sent[tuple_] = restricted
            buffered = self.pending_insertions.pop(tuple_, None)
            if buffered is not None and not self.store.is_zero(buffered):
                outputs.append(Update(UpdateType.INS, tuple_, provenance=buffered))
                self.sent[tuple_] = self.store.disjoin(self.sent[tuple_], buffered)
            if self.store.is_zero(self.sent[tuple_]) and buffered is None:
                del self.sent[tuple_]
        if self.aggregate_selection is not None:
            outputs.extend(self.aggregate_selection.purge_base(removed))
        return outputs

    # -- elasticity (live partition migration support) ---------------------------------------
    def extract_tables(self):
        """Drain and return ``(Bsent, Pins, Pdel)`` for migration off this node.

        Used when the elastic subsystem decommissions a node.  What must
        survive is the *release* obligation: the buffered alternates in
        ``Pins``/``Pdel`` (and the ``Bsent`` entries whose invalidation
        triggers their release) have to live somewhere a purge broadcast can
        still reach — so the tables move wholesale to live peers instead of
        being dropped or force-flushed.  ``Bsent``'s other job, suppressing
        re-derivations, is deliberately *not* preserved across the move: the
        nodes inheriting this producer's join state start with empty ``Bsent``
        and may re-ship derivations the consumer already absorbed, which the
        receiver's idempotent disjoin absorbs at the cost of some duplicate
        traffic (an exact per-join-key split of ``Bsent`` is impossible — an
        output tuple does not identify the join key that produced it).
        """
        sent, pins, pdel = self.sent, self.pending_insertions, self.pending_deletions
        self.sent = {}
        self.pending_insertions = {}
        self.pending_deletions = {}
        self._pending_merged = {}
        return sent, pins, pdel

    def absorb_tables(
        self,
        sent: Dict[Tuple, object],
        pending_insertions: Dict[Tuple, object],
        pending_deletions: Dict[Tuple, object],
    ) -> None:
        """Disjoin-merge migrated ``Bsent``/``Pins``/``Pdel`` entries into this ship."""
        self._pending_merged.clear()
        for table, entries in (
            (self.sent, sent),
            (self.pending_insertions, pending_insertions),
            (self.pending_deletions, pending_deletions),
        ):
            for tuple_, annotation in entries.items():
                existing = table.get(tuple_)
                if existing is None:
                    table[tuple_] = annotation
                else:
                    table[tuple_] = self.store.disjoin(existing, annotation)

    # -- durability (checkpoint / recovery support) ------------------------------------------
    def export_state(self, encode) -> Dict[str, object]:
        """Capture ``Bsent`` / ``Pins`` / ``Pdel`` with annotations flattened via ``encode``.

        Restoring this state on a rebooted node is what lets MinShip keep its
        promise after a crash: derivations buffered (and never shipped) before
        the failure can still be released when a deletion invalidates what the
        consumer holds.
        """
        state: Dict[str, object] = {
            "sent": {t: encode(pv) for t, pv in self.sent.items()},
            "pending_insertions": {
                t: encode(pv) for t, pv in self.pending_insertions.items()
            },
            "pending_deletions": {
                t: encode(pv) for t, pv in self.pending_deletions.items()
            },
        }
        if self.aggregate_selection is not None:
            state["aggsel"] = self.aggregate_selection.export_state(encode)
        return state

    def import_state(self, state: Dict[str, object], decode) -> None:
        """Restore the buffer tables captured by :meth:`export_state`."""
        self._pending_merged = {}
        self.sent = {t: decode(pv) for t, pv in state["sent"].items()}
        self.pending_insertions = {
            t: decode(pv) for t, pv in state["pending_insertions"].items()
        }
        self.pending_deletions = {
            t: decode(pv) for t, pv in state["pending_deletions"].items()
        }
        if self.aggregate_selection is not None and "aggsel" in state:
            self.aggregate_selection.import_state(state["aggsel"], decode)

    # -- metrics -----------------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Sent, buffered-insert and buffered-delete provenance tables."""
        total = 0
        for table in (self.sent, self.pending_insertions, self.pending_deletions):
            total += sum(t.size_bytes() for t in table)
            total += annotation_state_bytes(self.store, table.values())
        if self.aggregate_selection is not None:
            total += self.aggregate_selection.state_bytes()
        return total
