"""Provenance-aware streaming operators (Sections 4-6 of the paper).

* :class:`~repro.operators.fixpoint.FixpointOperator` — Algorithm 1: pipelined
  semi-naive recursion with absorption-provenance bookkeeping;
* :class:`~repro.operators.join.PipelinedHashJoin` — Algorithm 2: symmetric
  hash join over update streams with per-tuple provenance;
* :class:`~repro.operators.ship.MinShipOperator` / ``ShipOperator`` —
  Algorithm 3: provenance-buffering ship operator with eager and lazy modes;
* :class:`~repro.operators.aggsel.AggregateSelection` — Algorithm 4: aggregate
  selection over update streams (MIN/MAX/COUNT/SUM), multi-aggregate capable;
* :class:`~repro.operators.aggregate.GroupByAggregate` — windowed group-by
  aggregation used for the final view definitions (minCost, regionSizes, ...);
* :mod:`repro.operators.relalg` — selection / projection / union /
  duplicate-elimination building blocks;
* :class:`~repro.operators.scan.DistributedScan` — routes base-relation
  updates to the operators that consume them (Figure 4's table scans).
"""

from repro.operators.aggregate import AggregateFunction, GroupByAggregate
from repro.operators.aggsel import AggregateSelection, AggregateSpec
from repro.operators.base import Operator, OperatorStats
from repro.operators.fixpoint import FixpointOperator
from repro.operators.join import PipelinedHashJoin
from repro.operators.relalg import DuplicateElimination, Projection, Selection, UnionOperator
from repro.operators.scan import DistributedScan, RoutedUpdate
from repro.operators.ship import MinShipOperator, ShipMode, ShipOperator

__all__ = [
    "Operator",
    "OperatorStats",
    "FixpointOperator",
    "PipelinedHashJoin",
    "MinShipOperator",
    "ShipOperator",
    "ShipMode",
    "AggregateSelection",
    "AggregateSpec",
    "AggregateFunction",
    "GroupByAggregate",
    "Selection",
    "Projection",
    "UnionOperator",
    "DuplicateElimination",
    "DistributedScan",
    "RoutedUpdate",
]
