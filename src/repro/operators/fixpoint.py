"""The Fixpoint operator (Algorithm 1).

The Fixpoint operator is the anchor of a recursive view: it receives updates
from the *base* stream (the non-recursive branch of the view definition) and
from the *recursive* stream (results of joining the view with edge tuples),
maintains the hash map ``P : tuple -> provenance``, and propagates an update
downstream only when the tuple's absorbed provenance actually changed.

Unlike classical semi-naive evaluation it never blocks on rounds: updates are
processed in arrival order (pipelined semi-naive evaluation), which is what
makes it usable in an asynchronous distributed setting.

Deletion handling depends on the provenance store:

* with **absorption / relative provenance** a broadcast base-tuple deletion
  reaches :meth:`FixpointOperator.purge_base`, which zeroes the deleted
  variables in every stored annotation and removes tuples whose annotation
  became unsatisfiable — no over-deletion, no re-derivation;
* with **no provenance** (DRed / set semantics) an explicit DEL update on the
  input stream removes the tuple if present and is propagated so that the
  over-deletion phase can cascade; re-derivation is orchestrated by the
  engine-level DRed coordinator.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.data.batch import group_by_tuple, split_runs
from repro.data.tuples import Tuple
from repro.data.update import Update, UpdateType
from repro.obs.metrics import Histogram
from repro.operators.aggsel import AggregateSelection
from repro.operators.base import Operator, annotation_state_bytes
from repro.provenance.tracker import ProvenanceStore


class FixpointOperator(Operator):
    """Maintains one partition of the recursive view with provenance annotations."""

    def __init__(
        self,
        name: str,
        store: ProvenanceStore,
        aggregate_selection: Optional[AggregateSelection] = None,
    ) -> None:
        super().__init__(name, store)
        #: ``P`` of Algorithm 1: tuple -> absorbed provenance of all known derivations.
        self.provenance: Dict[Tuple, object] = {}
        #: Optional aggregate-selection module "pushed into" the fixpoint (Section 6).
        self.aggregate_selection = aggregate_selection
        #: Distribution of per-round emitted-delta sizes (how much each
        #: fixpoint round actually changed the view) — a live probe the
        #: metrics registry rolls up cluster-wide.  Power-of-two buckets:
        #: one ``bit_length`` + dict update per processed batch.
        self.delta_histogram = Histogram("round_delta_size")

    # -- view access -----------------------------------------------------------
    def view_tuples(self) -> List[Tuple]:
        """Current contents of this partition of the recursive view."""
        return list(self.provenance)

    def __contains__(self, tuple_: Tuple) -> bool:
        return tuple_ in self.provenance

    def annotation_of(self, tuple_: Tuple):
        """Provenance annotation currently associated with ``tuple_`` (or None)."""
        return self.provenance.get(tuple_)

    # -- stream processing --------------------------------------------------------
    def process(self, update: Update) -> List[Update]:
        """Algorithm 1: merge an update into the view, emit only real changes."""
        pending = [update]
        if self.aggregate_selection is not None:
            pending = self.aggregate_selection.process(update)
        outputs: List[Update] = []
        for current in pending:
            if current.is_insert:
                outputs.extend(self._process_insert(current))
            else:
                outputs.extend(self._process_delete(current))
        return self._record(update, outputs)

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Batch-wise Algorithm 1: one merged delta per changed view tuple.

        Same-tuple insertions within a type run are merged with a single
        disjoin chain, so the operator performs one ``disjoin`` into the
        stored annotation and one ``difference`` per *key* instead of one per
        *update*, and emits one consolidated delta downstream.  The emitted
        delta equals the disjunction of the per-update deltas (the telescoping
        ``(P | a1 | a2) & ~P  ==  ((P|a1) & ~P) | ((P|a1|a2) & ~(P|a1))``), so
        downstream disjoin-accumulated state is bit-identical to
        tuple-at-a-time execution.
        """
        pending: Sequence[Update] = updates
        if self.aggregate_selection is not None:
            pending = self.aggregate_selection.process_batch(updates)
        outputs: List[Update] = []
        for is_insert, run in split_runs(pending):
            for tuple_, items in group_by_tuple(run).items():
                if is_insert:
                    outputs.extend(self._insert_group(tuple_, items))
                else:
                    outputs.extend(self._delete_group(tuple_, items))
        self.delta_histogram.observe(len(outputs))
        return self._record_batch(updates, outputs)

    def _insert_group(self, tuple_: Tuple, items: List[Update]) -> List[Update]:
        """Merge a same-tuple insertion group into ``P`` and emit one delta."""
        if len(items) == 1:
            group_or = items[0].provenance
            if group_or is None:
                group_or = self.store.one()
        else:
            one = self.store.one
            group_or = self.store.disjoin_many(
                [item.provenance if item.provenance is not None else one() for item in items]
            )
        existing = self.provenance.get(tuple_)
        if existing is None:
            self.provenance[tuple_] = group_or
            return [items[-1].with_provenance(group_or)]
        merged = self.store.disjoin(existing, group_or)
        if self.store.equals(merged, existing):
            return []
        self.provenance[tuple_] = merged
        delta = self.store.difference(merged, existing)
        return [items[-1].with_provenance(delta)]

    def _delete_group(self, tuple_: Tuple, items: List[Update]) -> List[Update]:
        """Apply a same-tuple deletion group.

        Deletion groups almost always hold a single update (MinShip's
        ``Pdel`` and AggSel's displacement stream are keyed by tuple), and a
        provenance-carrying DEL is not safely mergeable with its siblings —
        the first one can kill the stored annotation, changing what the later
        ones would have emitted — so the group is applied update-at-a-time.
        """
        outputs: List[Update] = []
        for item in items:
            outputs.extend(self._process_delete(item))
        return outputs

    def _process_insert(self, update: Update) -> List[Update]:
        annotation = update.provenance
        if annotation is None:
            annotation = self.store.one()
        existing = self.provenance.get(update.tuple)
        if existing is None:
            # First derivation of a brand-new view tuple: store and propagate.
            self.provenance[update.tuple] = annotation
            return [update.with_provenance(annotation)]
        merged = self.store.disjoin(existing, annotation)
        if self.store.equals(merged, existing):
            # The new derivation is absorbed by what we already know: suppress.
            return []
        self.provenance[update.tuple] = merged
        delta = self.store.difference(merged, existing)
        return [update.with_provenance(delta)]

    def _process_delete(self, update: Update) -> List[Update]:
        if not self.store.supports_deletion or update.provenance is None:
            # Set-semantics (DRed) deletion: remove if present and cascade.
            if update.tuple in self.provenance:
                del self.provenance[update.tuple]
                return [update]
            return []
        # Provenance-carrying DEL on the input stream (e.g. produced by a
        # set-oriented upstream operator): treat it like a purge of the
        # specific derivation it names.
        existing = self.provenance.get(update.tuple)
        if existing is None:
            return []
        remaining = self.store.conjoin(existing, self.store.difference(self.store.one(), update.provenance))
        if self.store.equals(remaining, existing):
            return []
        if self.store.is_zero(remaining):
            del self.provenance[update.tuple]
            return [update]
        self.provenance[update.tuple] = remaining
        return []

    # -- broadcast deletions ---------------------------------------------------------
    def purge_base(self, base_keys: Iterable[Hashable]) -> List[Update]:
        """Zero out deleted base tuples in every stored annotation (Algorithm 1, lines 27-35)."""
        if not self.store.supports_deletion:
            return []
        removed_keys = list(base_keys)
        restrict = self.store.base_restrictor(removed_keys)
        outputs: List[Update] = []
        dead: List[Tuple] = []
        for tuple_, annotation in self.provenance.items():
            restricted = restrict(annotation)
            if self.store.equals(restricted, annotation):
                continue
            if self.store.is_zero(restricted):
                dead.append(tuple_)
            else:
                self.provenance[tuple_] = restricted
        for tuple_ in dead:
            del self.provenance[tuple_]
            outputs.append(Update(UpdateType.DEL, tuple_, provenance=self.store.zero()))
        if self.aggregate_selection is not None:
            outputs.extend(self.aggregate_selection.purge_base(removed_keys))
        return outputs

    # -- elasticity (live partition migration support) ---------------------------------
    def extract_partition(self, should_move) -> Dict[Tuple, object]:
        """Remove and return the ``P`` entries selected by ``should_move``.

        Used by :mod:`repro.placement` when a view partition changes owner:
        the returned tuple -> annotation mapping is encoded through the same
        codec as checkpoints and replayed into the new owner via
        :meth:`absorb_partition`.
        """
        moved: Dict[Tuple, object] = {}
        for tuple_ in [t for t in self.provenance if should_move(t)]:
            moved[tuple_] = self.provenance.pop(tuple_)
        return moved

    def absorb_partition(self, entries: Dict[Tuple, object]) -> None:
        """Merge migrated ``P`` entries into this partition (disjoin on overlap)."""
        for tuple_, annotation in entries.items():
            existing = self.provenance.get(tuple_)
            if existing is None:
                self.provenance[tuple_] = annotation
            else:
                self.provenance[tuple_] = self.store.disjoin(existing, annotation)

    # -- durability (checkpoint / recovery support) ------------------------------------
    def export_state(self, encode) -> Dict[str, object]:
        """Capture ``P`` (and any embedded AggSel state) via ``encode``."""
        state: Dict[str, object] = {
            "provenance": {t: encode(pv) for t, pv in self.provenance.items()}
        }
        if self.aggregate_selection is not None:
            state["aggsel"] = self.aggregate_selection.export_state(encode)
        return state

    def import_state(self, state: Dict[str, object], decode) -> None:
        """Restore the view partition captured by :meth:`export_state`."""
        self.provenance = {t: decode(pv) for t, pv in state["provenance"].items()}
        if self.aggregate_selection is not None and "aggsel" in state:
            self.aggregate_selection.import_state(state["aggsel"], decode)

    # -- metrics ----------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Tuples plus their provenance annotations, plus any embedded AggSel state."""
        total = sum(t.size_bytes() for t in self.provenance)
        total += annotation_state_bytes(self.store, self.provenance.values())
        if self.aggregate_selection is not None:
            total += self.aggregate_selection.state_bytes()
        return total
