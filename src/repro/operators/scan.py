"""DistributedScan: routing of base-relation updates into the plan.

In Figure 4 of the paper, the ``link`` table is scanned twice: once to feed
the base case of the recursive view (local to the node that owns the tuple)
and once re-partitioned on ``link.dst`` so it can join with ``reachable``
tuples stored at other nodes.  :class:`DistributedScan` captures that routing
decision: given a base update arriving at its owner node, it produces a set of
:class:`RoutedUpdate` directives saying which node/port each (possibly
transformed) copy of the update must be sent to.  The engine runtime performs
the actual sends and the byte accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.data.tuples import Tuple
from repro.data.update import Update
from repro.net.partition import HashPartitioner
from repro.operators.base import Operator
from repro.provenance.tracker import ProvenanceStore


@dataclass(frozen=True)
class RoutedUpdate:
    """One copy of an update addressed to a node-local operator port."""

    node: int
    port: str
    update: Update


#: Transforms the base tuple into the tuple fed to a port (identity by default)
#: and may return None to skip the route for this tuple.
RouteTransform = Callable[[Tuple], Optional[Tuple]]


@dataclass(frozen=True)
class ScanRoute:
    """Routing rule: where copies of the base update go.

    ``partition_attribute`` names the attribute whose value determines the
    destination node (via the partitioner); ``transform`` optionally rewrites
    the tuple before it is delivered (for example turning ``link(x, y)`` into
    the base-case tuple ``reachable(x, y)``).
    """

    port: str
    partition_attribute: str
    transform: Optional[RouteTransform] = None


class DistributedScan(Operator):
    """Routes updates of one base relation to the operators that consume them."""

    def __init__(
        self,
        name: str,
        store: ProvenanceStore,
        partitioner: HashPartitioner,
        routes: Sequence[ScanRoute],
    ) -> None:
        super().__init__(name, store)
        if not routes:
            raise ValueError("DistributedScan needs at least one route")
        self.partitioner = partitioner
        self.routes = tuple(routes)

    def route(self, update: Update) -> List[RoutedUpdate]:
        """Compute the destinations of ``update`` without performing the sends."""
        routed: List[RoutedUpdate] = []
        for rule in self.routes:
            tuple_ = update.tuple
            if rule.transform is not None:
                transformed = rule.transform(tuple_)
                if transformed is None:
                    continue
                tuple_ = transformed
            destination = self.partitioner.node_for(update.tuple[rule.partition_attribute])
            routed.append(
                RoutedUpdate(
                    node=destination,
                    port=rule.port,
                    update=Update(
                        update.type,
                        tuple_,
                        provenance=update.provenance,
                        timestamp=update.timestamp,
                        origin_node=update.origin_node,
                    ),
                )
            )
        return routed

    def route_batch(
        self, updates: Sequence[Update]
    ) -> Dict[PyTuple[int, str], List[Update]]:
        """Route a whole delta batch, grouped by ``(node, port)`` destination.

        Each destination's list preserves the batch order of its updates, so
        the caller can ship one message per destination instead of one per
        update without perturbing per-channel FIFO semantics.
        """
        grouped: Dict[PyTuple[int, str], List[Update]] = {}
        for update in updates:
            for routed in self.route(update):
                grouped.setdefault((routed.node, routed.port), []).append(routed.update)
        return grouped

    def process(self, update: Update) -> List[Update]:
        """Operator-style entry point returning the updates (destinations dropped)."""
        routed = self.route(update)
        return self._record(update, [item.update for item in routed])

    def process_batch(self, updates: Sequence[Update]) -> List[Update]:
        """Batch entry point: the flattened routed updates, destinations dropped."""
        outputs = [
            update for batch in self.route_batch(updates).values() for update in batch
        ]
        return self._record_batch(updates, outputs)

    def state_bytes(self) -> int:
        return 0
