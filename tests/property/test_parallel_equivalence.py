"""Property tests: the process backend equals the simulator on any workload.

For arbitrary insert/delete mixes cut into arbitrary phases, running the
engine across real worker processes — at any worker count — must yield
*bit-identical* results to the single-process simulator: the same view, the
same canonical per-tuple absorbed provenance, the same event/message counts
and the same virtual-clock convergence.  Worker counts 1, 2 and 4 cover the
degenerate pool, the split-cluster case and more-workers-than-busy-nodes.

Process pools are expensive to spawn, so the example budget is small; the
deterministic ``@example`` cases pin the regressions that matter (a pure
insert phase, a full insert-then-delete cycle, interleaved phases).
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.queries import build_executor, link, reachability_plan

NODES = ["n0", "n1", "n2", "n3"]
ALL_LINKS = [(a, b) for a in NODES for b in NODES if a != b]

WORKER_COUNTS = (1, 2, 4)


def _phases():
    operation = st.tuples(st.sampled_from(["ins", "del"]), st.sampled_from(ALL_LINKS))
    return st.lists(st.lists(operation, min_size=1, max_size=6), min_size=1, max_size=3)


def _normalise(phases):
    """Set-semantics cleanup: drop deletes of dead tuples and duplicate inserts."""
    live = set()
    result = []
    for phase in phases:
        inserts, deletes = [], []
        for action, pair in phase:
            if action == "ins" and pair not in live and pair not in inserts:
                inserts.append(pair)
            elif action == "del" and (pair in live or pair in inserts):
                if pair in inserts:
                    inserts.remove(pair)
                elif pair not in deletes:
                    deletes.append(pair)
        live.update(inserts)
        live.difference_update(deletes)
        result.append((inserts, deletes))
    return result


def _fingerprint(phases, scheme, backend, workers=None):
    executor = build_executor(
        reachability_plan(), scheme, node_count=4, backend=backend, workers=workers
    )
    try:
        messages = shipped = 0
        convergence = []
        for inserts, deletes in phases:
            phase = executor.apply_mixed(
                edge_inserts=[link(a, b) for a, b in inserts],
                edge_deletes=[link(a, b) for a, b in deletes],
            )
            messages += phase.messages
            shipped += phase.updates_shipped
            convergence.append(phase.convergence_time_s)
        return {
            "view": executor.view(),
            "annotations": executor.view_annotations(),
            "events": executor.network.events_processed,
            "messages": messages,
            "shipped": shipped,
            "convergence": convergence,
        }
    finally:
        executor.close()


@pytest.mark.parametrize("scheme", ["Absorption Eager", "DRed"])
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(phases=_phases())
@example(phases=[[("ins", ("n0", "n1")), ("ins", ("n1", "n2")), ("ins", ("n2", "n3"))]])
@example(
    phases=[
        [("ins", ("n0", "n1")), ("ins", ("n1", "n2")), ("ins", ("n1", "n3"))],
        [("del", ("n1", "n2")), ("ins", ("n3", "n2"))],
    ]
)
def test_process_backend_equals_simulator(scheme, phases):
    normalised = _normalise(phases)
    reference = _fingerprint(normalised, scheme, "sim")
    for workers in WORKER_COUNTS:
        assert _fingerprint(normalised, scheme, "process", workers=workers) == reference
