"""Property tests: the batch-first pipeline is equivalent to tuple-at-a-time.

The batch refactor's contract: for any workload cut into arbitrary batch
boundaries — including phases that mix insertions with interleaved deletions —
running with batching enabled yields exactly the views (and, for the
provenance strategies, exactly the per-tuple absorbed annotations) of the
historical one-update-per-message pipeline, under every execution strategy.

``BatchPolicy.tuple_at_a_time()`` *is* the historical pipeline: singleton
injected messages and per-update port handling.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import reachable_pairs
from repro.bdd.expr import BoolExpr
from repro.bdd.manager import BDD
from repro.data.batch import BatchPolicy
from repro.engine.runtime import PORT_PURGE, PORT_VIEW
from repro.queries import build_executor, link, reachability_plan

NODES = ["n0", "n1", "n2", "n3", "n4"]

#: A small universe of possible directed links over five nodes.
ALL_LINKS = [(a, b) for a in NODES for b in NODES if a != b]

link_strategy = st.sampled_from(ALL_LINKS)

#: The four execution strategies of the acceptance criteria.
STRATEGIES = ["DRed", "Absorption Eager", "Absorption Lazy", "Relative Lazy"]


def _phases():
    """Random batch boundaries: a list of phases of interleaved ins/del ops."""
    operation = st.tuples(st.sampled_from(["ins", "del"]), link_strategy)
    return st.lists(
        st.lists(operation, min_size=1, max_size=8), min_size=1, max_size=5
    )


def _normalise(phases):
    """Turn raw op phases into (inserts, deletes) batches against a live set.

    Deletions of never-inserted tuples and duplicate insertions are dropped
    (the executor's workload API assumes set semantics on the base relation),
    but insert/delete interleavings *within* a phase are preserved as a mixed
    batch.
    """
    live = set()
    result = []
    for phase in phases:
        inserts, deletes = [], []
        for action, pair in phase:
            if action == "ins" and pair not in live and pair not in inserts:
                inserts.append(pair)
            elif action == "del" and (pair in live or pair in inserts):
                if pair in inserts:
                    inserts.remove(pair)
                else:
                    if pair not in deletes:
                        deletes.append(pair)
        live.update(inserts)
        live.difference_update(deletes)
        result.append((inserts, deletes))
    return result, live


def _run(phases, scheme, policy):
    executor = build_executor(
        reachability_plan(), scheme, node_count=4, batch_policy=policy
    )
    for inserts, deletes in phases:
        executor.apply_mixed(
            edge_inserts=[link(a, b) for a, b in inserts],
            edge_deletes=[link(a, b) for a, b in deletes],
        )
    return executor


def _canonical(annotation):
    """A manager-independent canonical form of an annotation.

    The two executors under comparison own *different* provenance stores (and
    BDD managers), so absorption annotations are compared by their minimal
    witness products — the canonical form of a monotone Boolean function —
    rather than by node identity.  Every other store's annotations are plain
    values already.
    """
    if isinstance(annotation, BDD):
        return BoolExpr.from_products(set(annotation.iter_products()))
    return annotation


def _implies(weaker: BoolExpr, stronger: BoolExpr) -> bool:
    """Monotone implication: every product of ``weaker`` subsumes one of ``stronger``."""
    return all(
        any(product >= other for other in stronger.products)
        for product in weaker.products
    )


def _true_products(live, view_tuple):
    """Ground-truth witness link-key-sets for a reachable tuple (simple paths)."""
    src, dst = view_tuple["src"], view_tuple["dst"]
    witnesses = set()

    def walk(node, used):
        if node == dst and used:
            witnesses.add(frozenset(("link",) + pair for pair in used))
            return
        for pair in live:
            if pair[0] == node and pair not in used:
                walk(pair[1], used | {pair})

    walk(src, frozenset())
    return witnesses


def _annotations(executor):
    """Per-node fixpoint annotations, the provenance state the paper maintains."""
    captured = {}
    for node in executor.nodes:
        for tuple_ in node.fixpoint.view_tuples():
            captured[(node.node_id, tuple_)] = _canonical(
                node.fixpoint.annotation_of(tuple_)
            )
    return captured


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_phases(), st.sampled_from(STRATEGIES), st.integers(min_value=2, max_value=8))
def test_batched_views_and_provenance_match_tuple_at_a_time(
    raw_phases, scheme, max_batch
):
    phases, live = _normalise(raw_phases)
    batched = _run(phases, scheme, BatchPolicy(max_batch=max_batch))
    sequential = _run(phases, scheme, BatchPolicy.tuple_at_a_time())

    assert batched.view_values() == sequential.view_values()
    assert batched.view_values() == reachable_pairs(live)

    batched_pv = _annotations(batched)
    sequential_pv = _annotations(sequential)
    assert set(batched_pv) == set(sequential_pv)
    lazy = "Lazy" in scheme
    for key, annotation in batched_pv.items():
        expected = sequential_pv[key]
        if not lazy:
            # Eager shipping flushes every buffered derivation at quiescence,
            # so the consumer-side absorbed provenance must be bit-identical.
            assert annotation == expected, (
                f"annotation diverged for {key} under {scheme}"
            )
        elif isinstance(annotation, BoolExpr):
            # Lazy shipping intentionally keeps alternate derivations at the
            # producer; a batched delivery can carry several derivations in
            # its *first* shipment, so the batched consumer may know MORE --
            # never less, and never anything untrue.
            assert _implies(expected, annotation), (
                f"batched consumer lost derivations for {key} under {scheme}"
            )
            node_id, view_tuple = key
            truth = _true_products(live, view_tuple)
            held = {
                # Variable names are (tuple-key, incarnation); only the live
                # incarnations survive purging, so project the version away.
                frozenset(name for name, _version in product)
                for product in annotation.products
            }
            assert all(
                any(product >= witness for witness in truth) for product in held
            ), f"batched consumer holds an underivable product for {key}"


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_phases(), st.sampled_from(["Absorption Lazy", "Absorption Eager"]))
def test_per_port_batching_flags_preserve_views(raw_phases, scheme):
    """Restricting batching to a port subset is still equivalent."""
    phases, live = _normalise(raw_phases)
    partial = _run(
        phases,
        scheme,
        BatchPolicy(max_batch=6, ports=frozenset({PORT_VIEW, PORT_PURGE})),
    )
    sequential = _run(phases, scheme, BatchPolicy.tuple_at_a_time())
    assert partial.view_values() == sequential.view_values()
    assert partial.view_values() == reachable_pairs(live)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(link_strategy, min_size=2, max_size=12, unique=True))
def test_batched_deletion_of_everything_empties_the_view(links):
    """Inserting a batch then deleting it all in one batch converges to empty."""
    for scheme in STRATEGIES:
        executor = build_executor(
            reachability_plan(), scheme, node_count=4, batch_policy=BatchPolicy()
        )
        executor.insert_edges([link(a, b) for a, b in links])
        assert executor.view_values() == reachable_pairs(links)
        executor.delete_edges([link(a, b) for a, b in links])
        assert executor.view_values() == set()
