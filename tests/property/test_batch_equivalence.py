"""Property tests: the batch-first pipeline is equivalent to tuple-at-a-time.

The batch refactor's contract: for any workload cut into arbitrary batch
boundaries — including phases that mix insertions with interleaved deletions —
running with batching enabled yields exactly the views (and, for the
provenance strategies, exactly the per-tuple absorbed annotations) of the
historical one-update-per-message pipeline, under every execution strategy.

``BatchPolicy.tuple_at_a_time()`` *is* the historical pipeline: singleton
injected messages and per-update port handling.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.baselines import reachable_pairs
from repro.bdd.expr import BoolExpr
from repro.bdd.manager import BDD
from repro.data.batch import BatchPolicy, UpdateBatch
from repro.data.update import Update, UpdateType
from repro.engine.runtime import PORT_BASE, PORT_PURGE, PORT_VIEW
from repro.queries import build_executor, link, reachability_plan

NODES = ["n0", "n1", "n2", "n3", "n4"]

#: A small universe of possible directed links over five nodes.
ALL_LINKS = [(a, b) for a in NODES for b in NODES if a != b]

link_strategy = st.sampled_from(ALL_LINKS)

#: The four execution strategies of the acceptance criteria.
STRATEGIES = ["DRed", "Absorption Eager", "Absorption Lazy", "Relative Lazy"]


def _phases():
    """Random batch boundaries: a list of phases of interleaved ins/del ops."""
    operation = st.tuples(st.sampled_from(["ins", "del"]), link_strategy)
    return st.lists(
        st.lists(operation, min_size=1, max_size=8), min_size=1, max_size=5
    )


def _normalise(phases):
    """Turn raw op phases into (inserts, deletes) batches against a live set.

    Deletions of never-inserted tuples and duplicate insertions are dropped
    (the executor's workload API assumes set semantics on the base relation),
    but insert/delete interleavings *within* a phase are preserved as a mixed
    batch.
    """
    live = set()
    result = []
    for phase in phases:
        inserts, deletes = [], []
        for action, pair in phase:
            if action == "ins" and pair not in live and pair not in inserts:
                inserts.append(pair)
            elif action == "del" and (pair in live or pair in inserts):
                if pair in inserts:
                    inserts.remove(pair)
                else:
                    if pair not in deletes:
                        deletes.append(pair)
        live.update(inserts)
        live.difference_update(deletes)
        result.append((inserts, deletes))
    return result, live


def _run(phases, scheme, policy):
    executor = build_executor(
        reachability_plan(), scheme, node_count=4, batch_policy=policy
    )
    for inserts, deletes in phases:
        executor.apply_mixed(
            edge_inserts=[link(a, b) for a, b in inserts],
            edge_deletes=[link(a, b) for a, b in deletes],
        )
    return executor


def _canonical(annotation):
    """A manager-independent canonical form of an annotation.

    The two executors under comparison own *different* provenance stores (and
    BDD managers), so absorption annotations are compared by their minimal
    witness products — the canonical form of a monotone Boolean function —
    rather than by node identity.  Every other store's annotations are plain
    values already.
    """
    if isinstance(annotation, BDD):
        return BoolExpr.from_products(set(annotation.iter_products()))
    return annotation


def _true_products(live, view_tuple):
    """Ground-truth witness link-key-sets for a reachable tuple (simple paths)."""
    src, dst = view_tuple["src"], view_tuple["dst"]
    witnesses = set()

    def walk(node, used):
        if node == dst and used:
            witnesses.add(frozenset(("link",) + pair for pair in used))
            return
        for pair in live:
            if pair[0] == node and pair not in used:
                walk(pair[1], used | {pair})

    walk(src, frozenset())
    return witnesses


def _annotations(executor):
    """Per-node fixpoint annotations, the provenance state the paper maintains."""
    captured = {}
    for node in executor.nodes:
        for tuple_ in node.fixpoint.view_tuples():
            captured[(node.node_id, tuple_)] = _canonical(
                node.fixpoint.annotation_of(tuple_)
            )
    return captured


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_phases(), st.sampled_from(STRATEGIES), st.integers(min_value=2, max_value=8))
# A pinned case where the batched and sequential lazy consumers end up with
# *incomparable* (both sound) derivation sets for reachable('n1','n1'): the
# sequential pipeline ships the four-link cycle first, the batched join emits
# the three-link cycle first.
@example(
    raw_phases=[
        [
            ("ins", ("n1", "n0")),
            ("ins", ("n4", "n3")),
            ("ins", ("n0", "n4")),
            ("ins", ("n0", "n3")),
            ("ins", ("n3", "n1")),
        ]
    ],
    scheme="Absorption Lazy",
    max_batch=3,
)
def test_batched_views_and_provenance_match_tuple_at_a_time(
    raw_phases, scheme, max_batch
):
    phases, live = _normalise(raw_phases)
    batched = _run(phases, scheme, BatchPolicy(max_batch=max_batch))
    sequential = _run(phases, scheme, BatchPolicy.tuple_at_a_time())

    assert batched.view_values() == sequential.view_values()
    assert batched.view_values() == reachable_pairs(live)

    batched_pv = _annotations(batched)
    sequential_pv = _annotations(sequential)
    assert set(batched_pv) == set(sequential_pv)
    lazy = "Lazy" in scheme
    for key, annotation in batched_pv.items():
        expected = sequential_pv[key]
        if not lazy:
            # Eager shipping flushes every buffered derivation at quiescence,
            # so the consumer-side absorbed provenance must be bit-identical.
            assert annotation == expected, (
                f"annotation diverged for {key} under {scheme}"
            )
        elif isinstance(annotation, BoolExpr):
            # Lazy shipping intentionally keeps alternate derivations at the
            # producer and ships whichever derivation materialises first.
            # Batch boundaries legitimately reorder derivation discovery (a
            # batched join can emit a short cycle before the longer one the
            # sequential pipeline found first — see the pinned @example), so
            # the two consumers may hold *incomparable* non-empty subsets of
            # the true derivations.  The invariant lazy shipping guarantees:
            # each consumer holds at least one derivation, and nothing it
            # holds is underivable.
            node_id, view_tuple = key
            truth = _true_products(live, view_tuple)
            for side, held_expr in (("batched", annotation), ("sequential", expected)):
                held = {
                    # Variable names are (tuple-key, incarnation); only the
                    # live incarnations survive purging, so project the
                    # version away.
                    frozenset(name for name, _version in product)
                    for product in held_expr.products
                }
                assert held, f"{side} consumer holds no derivation for {key}"
                assert all(
                    any(product >= witness for witness in truth) for product in held
                ), f"{side} consumer holds an underivable product for {key}"


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_phases(), st.sampled_from(["Absorption Lazy", "Absorption Eager"]))
def test_per_port_batching_flags_preserve_views(raw_phases, scheme):
    """Restricting batching to a port subset is still equivalent."""
    phases, live = _normalise(raw_phases)
    partial = _run(
        phases,
        scheme,
        BatchPolicy(max_batch=6, ports=frozenset({PORT_VIEW, PORT_PURGE})),
    )
    sequential = _run(phases, scheme, BatchPolicy.tuple_at_a_time())
    assert partial.view_values() == sequential.view_values()
    assert partial.view_values() == reachable_pairs(live)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(link_strategy, min_size=2, max_size=12, unique=True))
def test_batched_deletion_of_everything_empties_the_view(links):
    """Inserting a batch then deleting it all in one batch converges to empty."""
    for scheme in STRATEGIES:
        executor = build_executor(
            reachability_plan(), scheme, node_count=4, batch_policy=BatchPolicy()
        )
        executor.insert_edges([link(a, b) for a, b in links])
        assert executor.view_values() == reachable_pairs(links)
        executor.delete_edges([link(a, b) for a, b in links])
        assert executor.view_values() == set()


def _inject_base(executor, update_type, pairs, copies_of):
    """Inject base updates at their owners, ``copies_of[pair]`` copies each.

    Bypasses the executor's workload API (which normalises to set semantics)
    so a single injected batch can genuinely carry same-tuple duplicates, the
    way a raw upstream feed would.
    """
    network = executor.network
    now = network.now
    by_owner = {}
    for pair in pairs:
        edge = link(*pair)
        owner = executor.partitioner.node_for(edge.partition_value)
        by_owner.setdefault(owner, []).extend(
            Update(update_type, edge, timestamp=now) for _ in range(copies_of[pair])
        )
    for owner, updates in by_owner.items():
        network.inject(owner, PORT_BASE, updates, now)
    executor._run_to_quiescence()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(link_strategy, min_size=2, max_size=8, unique=True),
    st.data(),
)
def test_duplicate_annotationless_updates_are_set_semantics(links, data):
    """DRed duplicates within one batch leave every node's view bit-identical.

    The coalescing layer collapses annotation-less same-tuple duplicates to a
    single update (``UpdateBatch.coalesced``); this is sound because every
    consumer is idempotent under set semantics — a repeated INS of a present
    tuple changes nothing, a repeated DEL with ``provenance=None`` finds the
    tuple already gone.  Verified here end to end: a run whose injected
    batches carry duplicates must produce exactly the per-node views of a
    run fed single copies.
    """
    copies_of = {pair: data.draw(st.integers(min_value=2, max_value=3)) for pair in links}
    deleted = data.draw(
        st.lists(st.sampled_from(links), min_size=1, max_size=len(links), unique=True)
    )

    def run(with_duplicates):
        executor = build_executor(
            reachability_plan(), "DRed", node_count=4, batch_policy=BatchPolicy()
        )
        counts = copies_of if with_duplicates else {pair: 1 for pair in links}
        _inject_base(executor, UpdateType.INS, links, counts)
        _inject_base(executor, UpdateType.DEL, deleted, counts)
        return executor

    duplicated = run(with_duplicates=True)
    single = run(with_duplicates=False)
    assert duplicated.view_values() == single.view_values()
    for node_id in range(4):
        assert duplicated.view_at(node_id) == single.view_at(node_id)


def test_coalesced_collapses_annotationless_duplicates_to_one_update():
    edge = link("a", "b")
    batch = UpdateBatch(
        [Update(UpdateType.INS, edge), Update(UpdateType.INS, edge)]
    )
    merged = list(batch.coalesced(store=None))  # no store call on the None path
    assert len(merged) == 1
    assert merged[0].provenance is None


def test_coalesced_mixed_group_collapses_to_annotationless():
    """None reads as the absorbing ``one()`` annotation, so a mixed group
    must merge to None — not to an arbitrary member's narrower annotation."""
    edge = link("a", "b")
    batch = UpdateBatch(
        [
            Update(UpdateType.INS, edge, provenance="x"),
            Update(UpdateType.INS, edge, provenance=None),
        ]
    )
    merged = list(batch.coalesced(store=None))
    assert len(merged) == 1
    assert merged[0].provenance is None
