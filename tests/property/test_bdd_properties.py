"""Property-based tests: the BDD manager against an independent Boolean oracle.

Random Boolean expressions are generated as syntax trees, then evaluated both
through the BDD manager and through direct Python evaluation over every
assignment of their (small) variable set.  Canonicity means two expressions
are semantically equal iff their BDD nodes coincide.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.bdd.expr import BoolExpr
from repro.bdd.serialize import bdd_from_bytes, bdd_to_bytes, deserialize_bdd, serialize_bdd

VARIABLES = ["p1", "p2", "p3", "p4"]


# -- random expression trees --------------------------------------------------------

def _expressions():
    leaves = st.sampled_from(VARIABLES).map(lambda name: ("var", name)) | st.sampled_from(
        [("const", True), ("const", False)]
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def _to_bdd(tree, manager: BDDManager):
    kind = tree[0]
    if kind == "var":
        return manager.variable(tree[1])
    if kind == "const":
        return manager.true if tree[1] else manager.false
    if kind == "not":
        return ~_to_bdd(tree[1], manager)
    left = _to_bdd(tree[1], manager)
    right = _to_bdd(tree[2], manager)
    return (left & right) if kind == "and" else (left | right)


def _evaluate(tree, assignment):
    kind = tree[0]
    if kind == "var":
        return assignment[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "not":
        return not _evaluate(tree[1], assignment)
    left = _evaluate(tree[1], assignment)
    right = _evaluate(tree[2], assignment)
    return (left and right) if kind == "and" else (left or right)


def _all_assignments():
    for values in itertools.product([False, True], repeat=len(VARIABLES)):
        yield dict(zip(VARIABLES, values))


@settings(max_examples=120, deadline=None)
@given(_expressions())
def test_bdd_agrees_with_direct_evaluation(tree):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    for assignment in _all_assignments():
        assert bdd.evaluate(assignment) == _evaluate(tree, assignment)


@settings(max_examples=120, deadline=None)
@given(_expressions(), _expressions())
def test_canonicity_equivalence_iff_same_node(left_tree, right_tree):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    left = _to_bdd(left_tree, manager)
    right = _to_bdd(right_tree, manager)
    semantically_equal = all(
        _evaluate(left_tree, assignment) == _evaluate(right_tree, assignment)
        for assignment in _all_assignments()
    )
    assert (left.node == right.node) == semantically_equal


@settings(max_examples=120, deadline=None)
@given(_expressions(), st.sampled_from(VARIABLES), st.booleans())
def test_restrict_matches_semantics(tree, variable, value):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    restricted = bdd.restrict({variable: value})
    for assignment in _all_assignments():
        forced = dict(assignment)
        forced[variable] = value
        assert restricted.evaluate(assignment) == _evaluate(tree, forced)


@settings(max_examples=100, deadline=None)
@given(_expressions())
def test_negation_involution_and_complement(tree):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    assert ~~bdd == bdd
    assert (bdd | ~bdd).is_true()
    assert (bdd & ~bdd).is_false()


@settings(max_examples=100, deadline=None)
@given(_expressions())
def test_sat_count_matches_enumeration(tree):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    expected = sum(1 for assignment in _all_assignments() if _evaluate(tree, assignment))
    assert bdd.sat_count() == expected


# -- serialization: round-trips preserve semantics ------------------------------------

@settings(max_examples=120, deadline=None)
@given(_expressions())
def test_serialize_round_trip_same_manager_is_identity(tree):
    """Within one manager, deserialize(serialize(f)) is the very same node."""
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    assert deserialize_bdd(serialize_bdd(bdd), manager) == bdd
    assert bdd_from_bytes(bdd_to_bytes(bdd), manager) == bdd


@settings(max_examples=120, deadline=None)
@given(_expressions(), st.permutations(VARIABLES))
def test_serialize_round_trip_fresh_manager_preserves_semantics(tree, declared_order):
    """Across managers — even with a different variable order — the decoded
    function is semantically equal to the original (checkpoint/restore safety)."""
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = _to_bdd(tree, manager)
    fresh = BDDManager()
    fresh.variables(*declared_order)
    restored = bdd_from_bytes(bdd_to_bytes(bdd), fresh)
    for assignment in _all_assignments():
        expected = _evaluate(tree, assignment)
        if restored.node <= 1:
            assert restored.is_true() == expected
        else:
            assert restored.evaluate(assignment) == expected


@settings(max_examples=100, deadline=None)
@given(_expressions(), _expressions())
def test_serialized_equivalence_matches_canonical_equality(left_tree, right_tree):
    """Serialize→deserialize keeps canonicity: equal functions re-intern to the
    same node of the target manager, unequal functions to different nodes."""
    source = BDDManager()
    source.variables(*VARIABLES)
    left = _to_bdd(left_tree, source)
    right = _to_bdd(right_tree, source)
    target = BDDManager()
    target.variables(*VARIABLES)
    left_restored = deserialize_bdd(serialize_bdd(left), target)
    right_restored = deserialize_bdd(serialize_bdd(right), target)
    assert (left_restored == right_restored) == (left == right)


# -- monotone expressions: BDD vs the sum-of-products oracle --------------------------

def _products():
    return st.lists(
        st.lists(st.sampled_from(VARIABLES), min_size=1, max_size=3).map(frozenset),
        min_size=0,
        max_size=5,
    )


@settings(max_examples=150, deadline=None)
@given(_products())
def test_monotone_bdd_matches_boolexpr(products):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = manager.from_products(products)
    expr = BoolExpr.from_products(products)
    for assignment in _all_assignments():
        assert bdd.evaluate(assignment) == expr.evaluate(assignment)


@settings(max_examples=150, deadline=None)
@given(_products(), st.sets(st.sampled_from(VARIABLES)))
def test_deleting_base_tuples_commutes_with_encoding(products, deleted):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    bdd = manager.from_products(products).without(deleted)
    expr = BoolExpr.from_products(products).without(deleted)
    assert bdd.is_false() == expr.is_false()
    for assignment in _all_assignments():
        assert bdd.evaluate(assignment) == expr.evaluate(assignment)


@settings(max_examples=150, deadline=None)
@given(_products(), _products())
def test_absorption_idempotent_algebra(left_products, right_products):
    manager = BDDManager()
    manager.variables(*VARIABLES)
    left = manager.from_products(left_products)
    right = manager.from_products(right_products)
    assert (left | (left & right)) == left
    assert (left & (left | right)) == left
