"""Property tests for the partitioners backing the elastic placement subsystem.

The load-bearing property of consistent hashing — and the reason the elastic
subsystem is built on a ring rather than the modulo hash — is *minimal
disruption*: growing an N-node ring by one node remaps only the keys the new
node steals (≈ 1/(N+1) of a large sample), and never shuffles a key between
two pre-existing nodes.
"""

from hypothesis import given, settings, strategies as st

from repro.net.partition import HashPartitioner
from repro.placement import ConsistentHashRing


def _keys(seed: int, count: int = 600):
    return [f"key-{seed}-{index}" for index in range(count)]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    node_count=st.integers(min_value=4, max_value=12),
)
def test_ring_growth_remaps_about_one_over_n(seed, node_count):
    keys = _keys(seed)
    ring = ConsistentHashRing(range(node_count))
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node(node_count)
    remapped = 0
    for key, owner in before.items():
        after = ring.node_for(key)
        if after != owner:
            # Consistency: every remapped key lands on the *new* node.
            assert after == node_count
            remapped += 1
    expected = len(keys) / (node_count + 1)
    # The exact fraction wobbles with the virtual-node layout; 2.5x the
    # expectation is still an order of magnitude below modulo hashing's
    # near-total reshuffle.
    assert remapped <= 2.5 * expected
    assert remapped >= 1  # the new node must own something from a big sample


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    node_count=st.integers(min_value=3, max_value=12),
    victim_offset=st.integers(min_value=0, max_value=11),
)
def test_ring_shrink_only_rehomes_the_victims_keys(seed, node_count, victim_offset):
    keys = _keys(seed, count=300)
    ring = ConsistentHashRing(range(node_count))
    victim = victim_offset % node_count
    before = {key: ring.node_for(key) for key in keys}
    ring.remove_node(victim)
    for key, owner in before.items():
        after = ring.node_for(key)
        if owner == victim:
            assert after != victim
        else:
            assert after == owner


@settings(max_examples=50, deadline=None)
@given(
    key=st.one_of(
        st.text(max_size=20),
        st.integers(),
        st.tuples(st.text(max_size=5), st.integers()),
    ),
    node_count=st.integers(min_value=1, max_value=32),
)
def test_partitioners_always_return_a_member(key, node_count):
    modulo = HashPartitioner(node_count)
    ring = ConsistentHashRing(range(node_count), virtual_nodes=16)
    assert 0 <= modulo.node_for(key) < node_count
    assert ring.node_for(key) in ring.nodes
    # Determinism across instances (the property experiment runs depend on).
    assert ConsistentHashRing(range(node_count), virtual_nodes=16).node_for(
        key
    ) == ring.node_for(key)
