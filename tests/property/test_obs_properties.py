"""Property-based tests for the tracer's span discipline.

For any interleaving of begin/end/instant/kernel-slice operations (across
multiple tracks, including unbalanced sequences), the tracer must
(1) keep accurate open-span accounting, (2) close everything on ``finish``,
and (3) emit an event list whose complete events nest as a proper tree on
every (pid, tid) track — the invariant :func:`validate_span_nesting` checks
and CI enforces on real traces.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.export import trace_summary, validate_span_nesting
from repro.obs.trace import Tracer

#: One scripted tracer operation:
#:   kind 0 = begin, 1 = end (most recent open span, if any), 2 = instant,
#:   3 = kernel_slice, 4 = flow start/finish pair.
_STEPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=3),  # pid (node id)
        st.sampled_from(["net", "routing", "operator", "fault"]),
    ),
    min_size=1,
    max_size=60,
)


def _run_script(steps):
    tracer = Tracer()
    open_spans = []
    flows = []
    for kind, pid, cat in steps:
        if kind == 0:
            open_spans.append(tracer.begin(pid, f"span-{cat}", cat, sim_ts=0.1))
        elif kind == 1 and open_spans:
            tracer.end(open_spans.pop())
        elif kind == 2:
            tracer.instant(pid, "mark", cat)
        elif kind == 3:
            tracer.kernel_slice(pid, 1e-6)
        elif kind == 4:
            flows.append(tracer.flow_start(pid))
    for flow_id in flows:
        tracer.flow_finish(flow_id, 0)
    return tracer, open_spans


@settings(max_examples=60, deadline=None)
@given(_STEPS)
def test_open_span_accounting(steps):
    tracer, still_open = _run_script(steps)
    assert tracer.open_span_count() == len(still_open)


@settings(max_examples=60, deadline=None)
@given(_STEPS)
def test_finish_closes_everything_and_nesting_holds(steps):
    tracer, _ = _run_script(steps)
    tracer.finish()
    assert tracer.open_span_count() == 0
    events = tracer.chrome_events()
    assert all(e["dur"] >= 0 for e in events if e.get("ph") == "X")
    assert validate_span_nesting(events) == []


@settings(max_examples=60, deadline=None)
@given(_STEPS)
def test_flow_events_balance(steps):
    tracer, _ = _run_script(steps)
    tracer.finish()
    summary = trace_summary(tracer.events)
    assert summary["flow_starts"] == summary["flow_finishes"]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-7, max_value=1e-3, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_kernel_slices_on_one_lane_never_overlap(durations):
    """Sequential kernel slices on a node's kernel lane form disjoint spans.

    The engine emits one slice per delivery with ``seconds`` bounded by the
    wall time since the previous slice, so successive slices cannot overlap;
    here the bound holds trivially (each slice is emitted after the previous
    call returned and is shorter than the elapsed gap cannot shrink below).
    """
    tracer = Tracer()
    for seconds in durations:
        start = tracer._now_us()
        # Burn wall clock until the slice we are about to emit fits entirely
        # after the previous one (mirrors the engine's seconds <= elapsed
        # guarantee).
        while tracer._now_us() - start < seconds * 1e6:
            pass
        tracer.kernel_slice(0, seconds)
    assert validate_span_nesting(tracer.events) == []
    spans = sorted(
        (e for e in tracer.events if e.get("ph") == "X"), key=lambda e: e["ts"]
    )
    for earlier, later in zip(spans, spans[1:]):
        assert later["ts"] >= earlier["ts"] + earlier["dur"] - 0.5
