"""Property tests: bounded seeded chaos never moves the converged result.

For *arbitrary* seeds and bounded fault intensities, a chaos run's final view
— and, for eager provenance, its canonical annotations — must be bit-identical
to the fault-free reference.  This is satellite (d) of the chaos plane: the
parity-by-masking argument holds for the whole seeded schedule space, not just
the named profiles, across strategies and both backends.

Chaos runs are expensive (each example runs a reference plus one run per
scheme), so the example budget is small and the workload deliberately tiny;
the deterministic ``@example`` cases pin the named-profile seeds CI gates on.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.chaos import (
    ChaosPlan,
    CrashStormSpec,
    LinkChaosSpec,
    RecoveryFaultSpec,
    WorkerKillSpec,
)
from repro.chaos.parity import assert_parity, verify_process_parity, verify_sim_parity
from repro.queries import reachability_plan
from repro.workloads.chaos import generate_chaos_workload

NODE_COUNT = 4
WORKLOAD = generate_chaos_workload(links=20, seed=11)
SCHEMES = ("Absorption Eager", "Absorption Lazy")


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    drop=st.floats(min_value=0.0, max_value=0.15),
    dup=st.floats(min_value=0.0, max_value=0.1),
    delay=st.floats(min_value=0.0, max_value=0.3),
)
@example(seed=11, drop=0.08, dup=0.06, delay=0.2)  # the "link" profile
def test_any_bounded_link_chaos_preserves_parity(seed, drop, dup, delay):
    plan = ChaosPlan(
        seed=seed,
        name="prop-link",
        link=LinkChaosSpec(drop_prob=drop, dup_prob=dup, delay_prob=delay),
    )
    for scheme in SCHEMES:
        report = assert_parity(
            verify_sim_parity(
                reachability_plan(), scheme, plan, WORKLOAD, node_count=NODE_COUNT
            )
        )
        # Eager provenance is canonical under chaos; lazy is view-gated only.
        assert report.annotations_compared == (scheme == "Absorption Eager")


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    cycles=st.integers(min_value=1, max_value=2),
    downtime=st.floats(min_value=0.1, max_value=0.3),
    doom=st.integers(min_value=0, max_value=2),
)
@example(seed=11, cycles=2, downtime=0.25, doom=2)
def test_any_bounded_storm_with_doomed_recoveries_preserves_parity(
    seed, cycles, downtime, doom
):
    """Crash storms with recovery attempts doomed within the retry budget."""
    plan = ChaosPlan(
        seed=seed,
        name="prop-storm",
        storm=CrashStormSpec(cycles=cycles, downtime=downtime),
        recovery=RecoveryFaultSpec(failure_prob=0.8, max_failures=doom)
        if doom
        else None,
    )
    report = assert_parity(
        verify_sim_parity(
            reachability_plan(),
            "Absorption Eager",
            plan,
            WORKLOAD,
            node_count=NODE_COUNT,
        )
    )
    assert report.chaos["supervised_exhausted"] == 0
    assert report.chaos["degraded_nodes"] == 0


@pytest.mark.parametrize("scheme", SCHEMES)
@settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(min_value=0, max_value=1000))
@example(seed=11)
def test_any_seeded_kill_schedule_preserves_process_parity(scheme, seed, tmp_path_factory):
    """Real worker SIGKILLs at seeded virtual-time points, both schemes."""
    plan = ChaosPlan(
        seed=seed,
        name="prop-kill",
        link=LinkChaosSpec(drop_prob=0.04, dup_prob=0.03, delay_prob=0.1),
        kills=WorkerKillSpec(kills=1),
    )
    wal_dir = tmp_path_factory.mktemp(f"chaos-prop-{scheme.replace(' ', '-')}-{seed}")
    report = assert_parity(
        verify_process_parity(
            reachability_plan(),
            scheme,
            plan,
            WORKLOAD,
            wal_dir=wal_dir,
            node_count=NODE_COUNT,
            workers=2,
        )
    )
    assert report.chaos["worker_kills"] >= 1
    assert report.chaos["worker_respawns"] >= 1
