"""Property-based tests of the maintenance invariants.

The central invariant of the paper: after any interleaving of base insertions
and deletions, the incrementally maintained view equals the view recomputed
from scratch over the live base data — under every maintenance strategy, and
the absorption-provenance annotation of a tuple is satisfiable exactly when
the tuple is derivable.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import CentralizedRecursiveEvaluator, reachable_pairs
from repro.bdd.expr import BoolExpr
from repro.datalog import SemiNaiveEvaluator, parse_program
from repro.engine.strategy import ExecutionStrategy
from repro.fault import fault_tolerant_executor
from repro.operators.aggsel import AggregateFunctionKind, AggregateSelection, AggregateSpec
from repro.operators.fixpoint import FixpointOperator
from repro.provenance import AbsorptionProvenanceStore
from repro.provenance.semiring import BooleanSemiring
from repro.queries import build_executor, link, reachability_plan
from repro.data.tuples import make_schema
from repro.data.update import insert

NODES = ["n0", "n1", "n2", "n3", "n4"]

#: A small universe of possible directed links over five nodes.
ALL_LINKS = [(a, b) for a in NODES for b in NODES if a != b]

link_strategy = st.sampled_from(ALL_LINKS)


def _script():
    """A random interleaving of insert/delete operations over the link universe."""
    return st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), link_strategy), min_size=1, max_size=14
    )


def _apply_script(script):
    """The live link set after applying the script sequentially."""
    live = set()
    for action, pair in script:
        if action == "ins":
            live.add(pair)
        else:
            live.discard(pair)
    return live


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_script(), st.sampled_from(["DRed", "Absorption Lazy", "Absorption Eager"]))
def test_view_equals_recomputation_after_any_script(script, scheme):
    executor = build_executor(
        reachability_plan(), ExecutionStrategy.by_name(scheme), node_count=4
    )
    live = set()
    for action, (src, dst) in script:
        if action == "ins":
            if (src, dst) not in live:
                executor.insert_edges([link(src, dst)])
                live.add((src, dst))
        else:
            if (src, dst) in live:
                executor.delete_edges([link(src, dst)])
                live.discard((src, dst))
    assert executor.view_values() == reachable_pairs(live)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(_script())
def test_eager_and_lazy_agree_on_final_state(script):
    lazy = build_executor(reachability_plan(), "Absorption Lazy", node_count=4)
    eager = build_executor(reachability_plan(), "Absorption Eager", node_count=4)
    live = set()
    for action, (src, dst) in script:
        if action == "ins" and (src, dst) not in live:
            lazy.insert_edges([link(src, dst)])
            eager.insert_edges([link(src, dst)])
            live.add((src, dst))
        elif action == "del" and (src, dst) in live:
            lazy.delete_edges([link(src, dst)])
            eager.delete_edges([link(src, dst)])
            live.discard((src, dst))
    assert lazy.view_values() == eager.view_values()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(link_strategy, min_size=1, max_size=10, unique=True))
def test_provenance_annotation_satisfiable_iff_derivable(links):
    """Every stored annotation must be satisfiable, and its restriction to the
    live base tuples must evaluate to true (the tuple is actually derivable)."""
    executor = build_executor(reachability_plan(), "Absorption Eager", node_count=3)
    executor.insert_edges([link(src, dst) for src, dst in links])
    live_variables = {(link(src, dst).key, 0) for src, dst in links}
    for node in executor.nodes:
        for view_tuple in node.fixpoint.view_tuples():
            annotation = node.fixpoint.annotation_of(view_tuple)
            assert annotation.is_satisfiable()
            assignment = {name: name in live_variables for name in annotation.support_names()}
            assert annotation.evaluate(assignment)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(link_strategy, min_size=1, max_size=12, unique=True))
def test_distributed_provenance_matches_datalog_semiring(links):
    """The distributed engine's absorption provenance agrees with the PosBool
    semiring evaluation of the same Datalog program (same minimal products)."""
    program = parse_program(
        "reachable(x, y) :- link(x, y). reachable(x, y) :- link(x, z), reachable(z, y)."
    )
    annotations = SemiNaiveEvaluator(program).evaluate_with_provenance(
        {"link": set(links)}, BooleanSemiring
    )
    executor = build_executor(reachability_plan(), "Absorption Eager", node_count=3)
    executor.insert_edges([link(src, dst) for src, dst in links])
    for node in executor.nodes:
        for view_tuple in node.fixpoint.view_tuples():
            pair = (view_tuple["src"], view_tuple["dst"])
            expected = annotations["reachable"][pair]
            actual = node.fixpoint.annotation_of(view_tuple)
            actual_products = {
                frozenset(("link",) + key[0][1:] for key in product)
                for product in actual.iter_products()
            }
            expected_minimal = expected.products
            # Same minimal witness sets (absorption on both sides).
            assert BoolExpr.from_products(actual_products) == BoolExpr(expected_minimal)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(link_strategy, min_size=2, max_size=12, unique=True),
    st.sampled_from(["checkpoint-replay", "provenance-purge"]),
    st.integers(0, 3),
    st.floats(0.05, 0.85),
    st.floats(0.05, 0.6),
)
def test_crash_and_recover_mid_run_matches_uninterrupted_run(
    links, policy, victim, crash_fraction, downtime_fraction
):
    """A node crashed at an arbitrary point of the insertion stream and later
    recovered — under either policy — yields exactly the view of an
    uninterrupted run (which itself equals the recomputed ground truth)."""
    tuples = [link(src, dst) for src, dst in links]
    uninterrupted = fault_tolerant_executor(
        reachability_plan(), "Absorption Lazy", node_count=4
    )
    horizon = uninterrupted.insert_edges(tuples).convergence_time_s

    faulty = fault_tolerant_executor(
        reachability_plan(),
        "Absorption Lazy",
        recovery_policy=policy,
        checkpoint_interval=5,
        node_count=4,
    )
    crash_at = horizon * crash_fraction
    faulty.schedule_crash(victim, at_time=crash_at)
    faulty.schedule_recovery(victim, at_time=crash_at + horizon * downtime_fraction)
    faulty.insert_edges(tuples)

    assert faulty.view_values() == uninterrupted.view_values()
    assert faulty.view_values() == reachable_pairs(links)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 30), st.integers(1, 6)),
        min_size=1,
        max_size=25,
    )
)
def test_aggregate_selection_never_suppresses_the_minimum(entries):
    """Whatever the arrival order, the best-so-far tuple always gets through AggSel."""
    schema = make_schema("path", ["src", "dst", "cost", "length"])
    store = AbsorptionProvenanceStore()
    aggsel = AggregateSelection(
        store, [AggregateSpec(("src", "dst"), "cost", AggregateFunctionKind.MIN)]
    )
    emitted_costs = {}
    best = {}
    for index, (dst, cost, length) in enumerate(entries):
        tuple_ = schema.tuple("s", dst, cost, length)
        outputs = aggsel.process(
            insert(tuple_, provenance=store.base_annotation(f"p{index}"))
        )
        for update in outputs:
            if update.is_insert:
                emitted_costs.setdefault(("s", update.tuple["dst"]), []).append(
                    update.tuple["cost"]
                )
        key = ("s", dst)
        best[key] = min(best.get(key, cost), cost)
    for key, minimum in best.items():
        assert minimum in emitted_costs.get(key, []), "the minimum must never be pruned"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(0, 5)), max_size=30))
def test_fixpoint_is_idempotent_under_redundant_insertions(pairs):
    """Re-inserting identical derivations never changes the view or its provenance."""
    schema = make_schema("reachable", ["src", "dst"])
    store = AbsorptionProvenanceStore()
    fixpoint = FixpointOperator("fp", store)
    for src, index in pairs:
        tuple_ = schema.tuple(src, f"d{index}")
        annotation = store.base_annotation((src, index))
        fixpoint.process(insert(tuple_, provenance=annotation))
        snapshot = dict(fixpoint.provenance)
        outputs = fixpoint.process(insert(tuple_, provenance=annotation))
        assert outputs == []
        assert fixpoint.provenance == snapshot
