"""Property tests of the explain engine (the ISSUE-9 acceptance property).

For any edge set, every derivation product an explanation reports for
``reachable(a, b)`` must consist of base edges that were actually inserted AND
that, by themselves, connect ``a`` to ``b`` — i.e. the products are real
supports, not artifacts of BDD variable order or antichain reduction.  And the
explanation must be identical (as JSON) across every product-enumerating
scheme, because ``canonical_annotation`` is the backend-independent form.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.strategy import ExecutionStrategy
from repro.queries import build_executor, reachability_plan

NODES = ["a", "b", "c", "d", "e"]
ALL_LINKS = sorted({(s, d) for s in NODES for d in NODES if s != d})

edge_sets = st.sets(st.sampled_from(ALL_LINKS), min_size=1, max_size=10)


def _reaches(edges, src, dst):
    """BFS over exactly ``edges``: does ``src`` reach ``dst`` (non-trivially)?"""
    frontier = [src]
    seen = set()
    while frontier:
        node = frontier.pop()
        for s, d in edges:
            if s == node and d not in seen:
                if d == dst:
                    return True
                seen.add(d)
                frontier.append(d)
    return False


def _explained_executor(edges, scheme):
    plan = reachability_plan()
    executor = build_executor(
        plan, ExecutionStrategy.by_name(scheme), node_count=3
    )
    executor.insert_edges([plan.edge_schema.tuple(s, d) for s, d in sorted(edges)])
    return executor


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_sets)
def test_every_product_is_a_real_support(edges):
    executor = _explained_executor(edges, "Absorption Lazy")
    view = sorted(executor.view(), key=lambda t: t.key)
    for target in view:
        src, dst = target.values
        explanation = executor.explain(target)
        assert explanation.found
        assert explanation.products, f"no products for {target}"
        for product in explanation.products:
            product_edges = {tuple(ref["values"]) for ref in product}
            # Only inserted base edges, fresh versions, and they form a path.
            assert product_edges <= edges
            assert all(ref["version"] == 0 for ref in product)
            assert all(ref["relation"] == "link" for ref in product)
            assert _reaches(product_edges, src, dst), (
                f"product {sorted(product_edges)} does not connect {src}->{dst}"
            )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_sets)
def test_absent_tuples_explain_as_not_found(edges):
    executor = _explained_executor(edges, "Absorption Lazy")
    view_values = {t.values for t in executor.view()}
    plan = executor.plan
    for src in NODES:
        for dst in NODES:
            if src == dst or (src, dst) in view_values:
                continue
            explanation = executor.explain(plan.result_schema.tuple(src, dst))
            assert not explanation.found
            return  # one absent tuple per example keeps the test fast


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edge_sets)
def test_product_schemes_explain_identically(edges):
    """Absorption and relative provenance canonicalise to the same explanation."""
    lazy = _explained_executor(edges, "Absorption Lazy")
    relative = _explained_executor(edges, "Relative Lazy")
    targets = sorted(lazy.view(), key=lambda t: t.key)[:5]
    for target in targets:
        left = lazy.explain(target).as_json()
        right = relative.explain(target).as_json()
        left.pop("scheme"), right.pop("scheme")  # the label is the only legal diff
        assert left == right
