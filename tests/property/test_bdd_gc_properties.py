"""Property-based tests for the BDD kernel's compacting garbage collector.

Two managers execute the *same* random operation sequence; one of them is
additionally interrupted by ``collect()`` calls (including forced
compactions, which renumber every node id) at random points.  Because
handles are renumbered in place and the serialized form is name-based and
canonical, the GC run must be observationally identical to the GC-free run:
same evaluation results, bit-identical ``bdd_to_bytes`` output, and
hash-consing (``make`` canonicity) must keep holding after every compaction.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.bdd.serialize import bdd_to_bytes

VARIABLES = ["p1", "p2", "p3", "p4", "p5"]

#: One step of a random op sequence: (op, operand index/name payloads).
_OPS = ("and", "or", "xor", "not", "diff", "restrict", "without", "disjoin_many")


def _op_steps():
    return st.lists(
        st.tuples(
            st.sampled_from(_OPS),
            st.integers(min_value=0, max_value=999),
            st.integers(min_value=0, max_value=999),
            st.sampled_from(VARIABLES),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    )


def _run_sequence(manager, steps, collect_points=()):
    """Apply ``steps`` over a growing pool of functions; return the pool.

    ``collect_points`` is a set of step indices after which ``collect`` runs
    (forced on every other occurrence, so both the skip path and the
    compaction/renumbering path are exercised).
    """
    pool = list(manager.variables(*VARIABLES)) + [manager.true, manager.false]
    forced = True
    for index, (op, i, j, name, value) in enumerate(steps):
        left = pool[i % len(pool)]
        right = pool[j % len(pool)]
        if op == "and":
            pool.append(left & right)
        elif op == "or":
            pool.append(left | right)
        elif op == "xor":
            pool.append(left ^ right)
        elif op == "not":
            pool.append(~left)
        elif op == "diff":
            pool.append(manager.diff(left, right))
        elif op == "restrict":
            pool.append(left.restrict({name: value}))
        elif op == "without":
            pool.append(left.without([name]))
        else:  # disjoin_many over a slice of the pool
            lo, hi = sorted((i % len(pool), j % len(pool)))
            pool.append(manager.disjoin_many(pool[lo : hi + 1]))
        if index in collect_points:
            manager.collect(force=forced)
            forced = not forced
    return pool


def _all_assignments():
    for values in itertools.product([False, True], repeat=len(VARIABLES)):
        yield dict(zip(VARIABLES, values))


@settings(max_examples=50, deadline=None)
@given(_op_steps(), st.sets(st.integers(min_value=0, max_value=39)))
def test_interleaved_collect_preserves_functions_bit_identically(steps, points):
    plain = BDDManager(gc_threshold=0.0)  # never collects
    collected = BDDManager(gc_threshold=0.0)
    pool_plain = _run_sequence(plain, steps)
    pool_gc = _run_sequence(collected, steps, collect_points=points)
    assert len(pool_plain) == len(pool_gc)
    for reference, survivor in zip(pool_plain, pool_gc):
        # Name-based canonical serialization must agree bit for bit (and,
        # being canonical, bit-identical bytes mean identical functions).
        assert bdd_to_bytes(reference) == bdd_to_bytes(survivor)
    # Spot-check semantics on the final (most-derived) entry as well.
    reference, survivor = pool_plain[-1], pool_gc[-1]
    if reference.node > 1:
        for assignment in _all_assignments():
            assert reference.evaluate(assignment) == survivor.evaluate(assignment)


@settings(max_examples=50, deadline=None)
@given(_op_steps(), st.sets(st.integers(min_value=0, max_value=39)))
def test_automatic_gc_matches_gc_free_run(steps, points):
    """A tiny trigger size forces frequent automatic collections mid-sequence."""
    plain = BDDManager(gc_threshold=0.0)
    auto = BDDManager(gc_threshold=0.25, gc_min_table=8)
    pool_plain = _run_sequence(plain, steps)
    pool_auto = _run_sequence(auto, steps, collect_points=points)
    for reference, survivor in zip(pool_plain, pool_auto):
        assert bdd_to_bytes(reference) == bdd_to_bytes(survivor)


@settings(max_examples=50, deadline=None)
@given(_op_steps())
def test_canonicity_holds_after_compaction(steps):
    """``make`` dedup: the rebuilt unique table still hash-conses every node."""
    manager = BDDManager(gc_threshold=0.0)
    pool = _run_sequence(manager, steps)
    manager.collect(force=True)
    # Re-making every surviving triple must dedup onto the existing id and
    # allocate nothing new.
    table = manager._table
    size_before = len(table)
    for node in range(2, size_before):
        assert table.make(table.var_of(node), table.low_of(node), table.high_of(node)) == node
    assert len(table) == size_before
    # Re-deriving a surviving function through fresh applies re-interns to
    # the very same (renumbered) node id.
    for handle in pool:
        assert (handle | handle.manager.false).node == handle.node
        assert (handle & handle.manager.true).node == handle.node
